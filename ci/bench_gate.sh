#!/usr/bin/env bash
# The CI perf-regression gate, runnable locally too:
#
#   ci/bench_gate.sh             # bench, write BENCH_<sha>.json, compare
#   ci/bench_gate.sh --update    # same, but rewrite BENCH_baseline.json
#
# Runs the feasibility + search + substrate criterion benches with `--save-baseline`
# (the vendored criterion shim writes each binary's medians JSON under
# target/criterion/current/), then lets the `bench_gate` binary merge them into
# BENCH_<sha>.json and fail if any median regressed more than the tolerance
# against the checked-in BENCH_baseline.json.  A --max-ratio guard additionally
# pins the telemetry-enabled session bench within 5% of its disabled twin, so
# the always-compiled telemetry sink can never quietly tax the hot path.
set -euo pipefail
cd "$(dirname "$0")/.."

sha=$(git rev-parse --short=12 HEAD 2>/dev/null || echo local)
tolerance="${BENCH_GATE_TOLERANCE_PCT:-20}"
# The criterion shim honours CARGO_TARGET_DIR; mirror it here.
medians_dir="${CARGO_TARGET_DIR:-target}/criterion/current"

extra=()
if [[ "${1:-}" == "--update" ]]; then
    extra+=(--update-baseline)
fi

rm -rf "$medians_dir"
cargo bench -p counterpoint-bench \
    --bench batch_feasibility \
    --bench session_pipeline \
    --bench lattice_search \
    --bench enumerated_family \
    --bench feasibility \
    --bench substrate \
    -- --save-baseline current

summary_file="${CARGO_TARGET_DIR:-target}/criterion/bench_gate_summary.md"

# ${extra[@]+...}: expand only when non-empty (bash 3.2's set -u chokes on
# plain "${extra[@]}" for an empty array).
status=0
cargo run --release -q -p counterpoint-bench --bin bench_gate -- \
    --current-dir "$medians_dir" \
    --baseline BENCH_baseline.json \
    --out "BENCH_${sha}.json" \
    --tolerance-pct "$tolerance" \
    --summary "$summary_file" \
    --max-ratio "session_pipeline/inquiry_report_telemetry:session_pipeline/inquiry_report:1.05" \
    ${extra[@]+"${extra[@]}"} || status=$?

# Surface the comparison on the PR's checks page (pass or fail) when running
# under GitHub Actions; harmless locally.
if [[ -n "${GITHUB_STEP_SUMMARY:-}" && -f "$summary_file" ]]; then
    cat "$summary_file" >> "$GITHUB_STEP_SUMMARY"
fi
exit "$status"
