#!/usr/bin/env bash
# The determinism & soundness static-analysis gate, runnable locally too:
#
#   ci/lint.sh            # lint crates/, tests/, examples/; fail on findings
#
# Runs `counterpoint-lint` (rules D1-D5, see README "Static invariant
# checking") over the workspace with the checked-in allowlist
# ci/lint_allow.toml, writing the machine-readable report to
# target/lint_report.json (uploaded as a CI artifact).  Exits nonzero on any
# unallowlisted finding or stale allowlist entry.  The lint walks crates/
# including crates/lint itself, so the lint crate is self-linted.
set -euo pipefail
cd "$(dirname "$0")/.."

report="${CARGO_TARGET_DIR:-target}/lint_report.json"
cargo run -q -p counterpoint-lint -- --out "$report"
echo "lint report written to $report"
