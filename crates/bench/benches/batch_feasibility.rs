//! Batched vs. per-observation feasibility on the Table 3 campaign.
//!
//! This is the benchmark behind the CI perf-regression gate
//! (`ci/bench_gate.sh`): the `per_observation_*` entries re-run the historical
//! one-LP-per-observation path, the `batched_*` entries run the warm-started
//! [`BatchFeasibility`] engine on the same data, and the `_exact` variants use
//! point observations (shared coordinate axes), where the (cone, axes)
//! coefficient cache and bounds-only warm restarts pay off most.

use counterpoint::lp::{LinearProgram, Relation};
use counterpoint::{check_models, BatchFeasibility, FeasibilityChecker, ModelCone, Observation};
use counterpoint_bench::{experiment_observations, table3_model};
use criterion::{criterion_group, criterion_main, Criterion};

/// The per-observation reference: one cold LP per observation through the
/// current checker (which itself shares the revised dual-simplex core).
fn count_infeasible_per_observation(
    checker: &FeasibilityChecker<'_>,
    observations: &[Observation],
) -> usize {
    observations
        .iter()
        .filter(|o| !checker.is_feasible(o))
        .count()
}

/// The historical per-observation baseline: the exact formulation
/// `FeasibilityChecker::is_feasible` shipped before the batched engine — a
/// dense `axis · generator` matmul per observation feeding a cold two-phase
/// primal simplex through `LinearProgram`.
fn count_infeasible_historical(cone: &ModelCone, observations: &[Observation]) -> usize {
    let generators: Vec<Vec<f64>> = cone
        .generator_cone()
        .generators()
        .iter()
        .map(|g| g.to_f64_vec())
        .collect();
    let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
    observations
        .iter()
        .filter(|o| {
            let region = o.region();
            let scale = region
                .center()
                .iter()
                .fold(1.0f64, |acc, v| acc.max(v.abs()));
            let mut lp = LinearProgram::new(generators.len());
            for (axis, width) in region.axes().iter().zip(region.half_widths()) {
                let coeffs: Vec<f64> = generators.iter().map(|g| dot(axis, g)).collect();
                let centre_proj = dot(axis, region.center());
                lp.add_constraint(&coeffs, Relation::Ge, (centre_proj - width) / scale);
                lp.add_constraint(&coeffs, Relation::Le, (centre_proj + width) / scale);
            }
            !lp.is_feasible()
        })
        .count()
}

fn bench_batch_feasibility(c: &mut Criterion) {
    // A scaled-down Table 3 campaign: the full workload suite over all three
    // page sizes with the default noisy PMU, so every observation carries its
    // own correlated confidence region (distinct principal axes), exactly like
    // the experiment binary's table3 run.
    let observations = experiment_observations(6_000);
    // Point observations at the campaign means: all share the coordinate axes.
    let exact: Vec<Observation> = observations
        .iter()
        .map(|o| Observation::exact(o.name(), o.mean()))
        .collect();

    let mut group = c.benchmark_group("batch_feasibility");
    for name in ["m0", "m4"] {
        let cone = table3_model(name);
        let checker = FeasibilityChecker::new(&cone);
        // Sanity: both paths must agree before we time them.
        let mut batch = BatchFeasibility::new(&cone);
        assert_eq!(
            batch.count_infeasible(&observations),
            count_infeasible_per_observation(&checker, &observations),
            "batched and per-observation verdicts diverged on {name}"
        );

        group.bench_function(format!("per_observation_{name}"), |b| {
            b.iter(|| count_infeasible_historical(&cone, &observations))
        });
        group.bench_function(format!("checker_{name}"), |b| {
            b.iter(|| count_infeasible_per_observation(&checker, &observations))
        });
        group.bench_function(format!("batched_{name}"), |b| {
            b.iter(|| BatchFeasibility::new(&cone).count_infeasible(&observations))
        });
        group.bench_function(format!("per_observation_{name}_exact"), |b| {
            b.iter(|| count_infeasible_per_observation(&checker, &exact))
        });
        group.bench_function(format!("batched_{name}_exact"), |b| {
            b.iter(|| BatchFeasibility::new(&cone).count_infeasible(&exact))
        });
    }

    // The full Table 3 campaign: the whole m0–m11 model family against the
    // observation set, exactly what the experiments binary's `table3` run
    // evaluates.  The baseline is the historical sequential per-observation
    // sweep; the batched run uses the campaign fan-out (`check_models`) at one
    // worker so the number is comparable across hosts with any core count
    // (extra workers only help further).
    let family: Vec<ModelCone> = (0..12).map(|i| table3_model(&format!("m{i}"))).collect();
    let family_refs: Vec<&ModelCone> = family.iter().collect();
    group.bench_function("table3_family_per_observation", |b| {
        b.iter(|| {
            family
                .iter()
                .map(|cone| count_infeasible_historical(cone, &observations))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("table3_family_batched", |b| {
        b.iter(|| check_models(&family_refs, &observations, 1))
    });
    // The family sweep on point observations — the workload shape of the
    // exact-observation lattice search, decided one observation at a time
    // with no cross-observation state: a fresh engine per observation, so
    // every verdict is one cold two-tier solve (tier-1 factorized f64 first,
    // exact recertification only on thin margins).  This is the entry the
    // bench gate watches for the fast-path solver core.
    group.bench_function("table3_family_per_observation_exact", |b| {
        b.iter(|| {
            family
                .iter()
                .map(|cone| {
                    exact
                        .iter()
                        .filter(|o| !BatchFeasibility::new(cone).is_feasible(o))
                        .count()
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batch_feasibility);
criterion_main!(benches);
