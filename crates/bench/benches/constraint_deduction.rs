//! Figure 9b: constraint-deduction (conic hull) time as a function of the counter
//! groups in the model.  The growth is expected to be super-linear — the paper
//! reports exponential scaling.

use counterpoint::deduce_constraints;
use counterpoint_bench::projected_model;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_constraint_deduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraint_deduction_by_counter_group");
    group.sample_size(10);
    // Groups 1..=3 (4, 10, 22 counters).  The fourth group is exercised by the
    // `experiments fig9` binary, which reports a single timed run rather than a
    // Criterion distribution, because a single hull at that size already takes
    // seconds.
    for groups in 1..=3usize {
        let m0 = projected_model("m0", groups);
        group.bench_with_input(BenchmarkId::new("m0", groups), &groups, |b, _| {
            b.iter(|| deduce_constraints(&m0));
        });
        let m4 = projected_model("m4", groups);
        group.bench_with_input(BenchmarkId::new("m4", groups), &groups, |b, _| {
            b.iter(|| deduce_constraints(&m4));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_constraint_deduction);
criterion_main!(benches);
