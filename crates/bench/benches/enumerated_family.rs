//! Grammar enumeration and the enumerated-family search stage.
//!
//! Two entries behind the CI perf-regression gate (`ci/bench_gate.sh`):
//!
//! * `enumerate_case_study` — the pure grammar pipeline: iterate the full
//!   case-study grammar to depth 2 (12k+ raw candidates), canonicalize,
//!   dedupe, and build the capped
//!   [`ModelFamily`](counterpoint::models::enumo::ModelFamily) of model
//!   cones.  No LP work; this times term expansion, signature
//!   canonicalization and μDD assembly.
//! * `enumerated_family_search` — the session stage the `enumerate`
//!   experiment runs: one certificate-pool-sharing [`LatticeSearch`] per
//!   assumption group over the case-study campaign observations, all groups
//!   drawing on the same cross-family certificate pool.
//!
//! The sanity block pins the scale the gate is protecting: a four-digit raw
//! candidate count collapsing into the capped family, and a search stage that
//! walks dozens of lattice models across the groups.

use counterpoint::core::CertificatePool;
use counterpoint::models::enumo::{enumerate, EnumOptions, ModelGrammar};
use counterpoint::LatticeSearch;
use counterpoint_bench::experiment_observations;
use criterion::{criterion_group, criterion_main, Criterion};

fn options() -> EnumOptions {
    EnumOptions {
        max_models: 512,
        ..EnumOptions::default()
    }
}

fn bench_enumerated_family(c: &mut Criterion) {
    let observations = experiment_observations(6_000);
    let family = enumerate(&ModelGrammar::case_study(), &options());

    // Sanity: the enumeration must be at the scale the gate protects, and
    // the search stage must do real lattice work across the groups.
    assert!(family.raw_candidates >= 1_000, "grammar scale regressed");
    assert!(!family.groups.is_empty());
    let searched: usize = {
        let pool = CertificatePool::new();
        family
            .groups
            .iter()
            .map(|group| {
                let mut search = LatticeSearch::new(group.generator(), &group.universe_names());
                search.set_shared_pool(&pool, &group.signature);
                search.run(&group.initial(), &observations).steps.len()
            })
            .sum()
    };
    assert!(searched >= 48, "search stage shrank to {searched} models");

    let mut group = c.benchmark_group("enumerated_family");
    group.sample_size(10);
    group.bench_function("enumerate_case_study", |b| {
        b.iter(|| enumerate(&ModelGrammar::case_study(), &options()))
    });
    group.bench_function("enumerated_family_search", |b| {
        b.iter(|| {
            let pool = CertificatePool::new();
            family
                .groups
                .iter()
                .map(|g| {
                    let mut search = LatticeSearch::new(g.generator(), &g.universe_names());
                    search.set_shared_pool(&pool, &g.signature);
                    search.run(&g.initial(), &observations).steps.len()
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enumerated_family);
criterion_main!(benches);
