//! Figure 9a: feasibility-testing time as a function of the counter groups in the
//! model (and of the model's μpath count).

use counterpoint::{FeasibilityChecker, Observation};
use counterpoint_bench::projected_model;
use counterpoint_haswell::hec::cumulative_group_space;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn synthetic_observation(dim: usize) -> Observation {
    // A plausible per-interval profile: retirement counters dominate, walk counters
    // are a few percent, references a little above walks.
    let values: Vec<f64> = (0..dim)
        .map(|i| match i % 5 {
            0 => 100_000.0,
            1 => 2_000.0,
            2 => 1_500.0,
            3 => 900.0,
            _ => 400.0,
        })
        .collect();
    Observation::exact("synthetic", &values)
}

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("feasibility_by_counter_group");
    for groups in 1..=4usize {
        let cone = projected_model("m4", groups);
        let dim = cumulative_group_space(groups).len();
        let checker = FeasibilityChecker::new(&cone);
        let obs = synthetic_observation(dim);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{groups}groups_{dim}counters")),
            &groups,
            |b, _| {
                b.iter(|| checker.is_feasible(&obs));
            },
        );
    }
    group.finish();

    let mut models = c.benchmark_group("feasibility_by_model");
    for name in ["m0", "m2", "m4"] {
        let cone = counterpoint_bench::table3_model(name);
        let checker = FeasibilityChecker::new(&cone);
        let obs = synthetic_observation(26);
        models.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| checker.is_feasible(&obs));
        });
    }
    models.finish();
}

criterion_group!(benches, bench_feasibility);
criterion_main!(benches);
