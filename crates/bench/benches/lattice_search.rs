//! Sequential cold-start search vs. the certificate-pruned lattice engine on
//! the m0–m11-scale Haswell feature lattice.
//!
//! This is the benchmark behind the CI perf-regression gate for the search
//! layer (`ci/bench_gate.sh`): the `guided_reference*` entries run the
//! sequential `GuidedSearch` baseline (`reference_search` — the legacy inner
//! loop, one cold `FeasibilityChecker` solve per candidate model and
//! observation, no state carried between solves), and the `lattice_engine*`
//! entries run [`LatticeSearch`] on the same inputs, which must produce the
//! identical `SearchGraph` while settling most of the work from the
//! per-(cone, axes) coefficient caches, the warm dual-simplex bases and the
//! cross-model certificate/witness pool.
//!
//! The `_exact` pair is the headline: a full discovery + elimination
//! trajectory over exact steady-state means collected at six access budgets
//! and three page sizes (324 observations, 17 candidate models) — the
//! acceptance target is a ≥5× median speedup for `lattice_engine_exact` over
//! `guided_reference_exact`.  The plain pair sweeps the noisy single-campaign
//! observations (one correlated confidence region per observation, distinct
//! principal axes), where the engine's win is structurally smaller: tight
//! noisy regions force per-observation tableau rebinds on both sides.

use counterpoint::haswell::mem::PageSize;
use counterpoint::models::family::build_feature_model;
use counterpoint::models::harness::{case_study_campaign, HarnessConfig};
use counterpoint::models::Feature;
use counterpoint::{reference_search, FeatureSet, LatticeSearch, Observation};
use counterpoint_bench::experiment_observations;
use criterion::{criterion_group, criterion_main, Criterion};

fn generator(features: &FeatureSet) -> counterpoint::ModelCone {
    build_feature_model("candidate", features)
}

/// Exact steady-state means at several access budgets (distinct operating
/// points of the simulated machine), noiseless PMU, all three page sizes —
/// the repeated-measurement shape a production refinement campaign sweeps.
fn exact_observations() -> Vec<Observation> {
    let mut observations = Vec::new();
    for budget in [10_000usize, 15_000, 20_000, 25_000, 30_000, 40_000] {
        let mut config = HarnessConfig::quick();
        config.accesses_per_workload = budget;
        config.page_sizes = vec![PageSize::Size4K, PageSize::Size2M, PageSize::Size1G];
        for o in case_study_campaign(&config).run_sim(&config.mmu, &config.pmu) {
            observations.push(Observation::exact(
                &format!("{budget}-{}", o.name()),
                o.mean(),
            ));
        }
    }
    observations
}

fn bench_lattice_search(c: &mut Criterion) {
    let noisy = experiment_observations(6_000);
    let exact = exact_observations();
    let feature_names: Vec<&str> = Feature::ALL.iter().map(|f| f.name()).collect();
    let initial = FeatureSet::new();

    // Sanity: the engine must walk the identical graph before we time it —
    // and the exact trajectory must be the full discovery + elimination walk
    // the headline number is about.
    let search = LatticeSearch::new(generator, &feature_names);
    for obs in [&noisy, &exact] {
        assert_eq!(
            search.run(&initial, obs),
            reference_search(&generator, &feature_names, 256, &initial, obs),
            "lattice engine diverged from the sequential reference"
        );
    }
    let exact_graph = search.run(&initial, &exact);
    assert!(
        exact_graph.steps.iter().any(|s| s.feasible),
        "the exact trajectory must reach a feasible model"
    );
    assert!(
        !exact_graph.minimal_feasible.is_empty(),
        "the exact trajectory must run elimination"
    );

    let mut group = c.benchmark_group("lattice_search");
    group.sample_size(10);
    group.bench_function("guided_reference", |b| {
        b.iter(|| reference_search(&generator, &feature_names, 256, &initial, &noisy))
    });
    group.bench_function("lattice_engine", |b| {
        b.iter(|| LatticeSearch::new(generator, &feature_names).run(&initial, &noisy))
    });
    group.bench_function("guided_reference_exact", |b| {
        b.iter(|| reference_search(&generator, &feature_names, 256, &initial, &exact))
    });
    group.bench_function("lattice_engine_exact", |b| {
        b.iter(|| LatticeSearch::new(generator, &feature_names).run(&initial, &exact))
    });
    group.finish();
}

criterion_group!(benches, bench_lattice_search);
criterion_main!(benches);
