//! Session-layer overhead over the raw batched engine.
//!
//! The `Inquiry` pipeline wraps `check_models` with verdict extraction
//! (witness points, Farkas certificates) and report assembly; the contract is
//! that the wrapper adds <5% overhead over calling `check_models` directly on
//! the same (model family × observation) matrix.  `check_models_direct` is
//! the raw engine, `inquiry_report` the full session (observations pre-built,
//! so both time exactly the evaluation stage).  The sanity assertion below
//! uses a deliberately loose 1.5× bound so scheduler jitter on shared CI
//! runners cannot flake the gate; the medians recorded in
//! `BENCH_baseline.json` track the real margin.

use counterpoint::models::family::{build_feature_model, feature_sets_table3};
use counterpoint::{check_models, ExplorationModel, Inquiry, ModelCone, Observation};
use counterpoint_bench::experiment_observations;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn family() -> Vec<ExplorationModel> {
    feature_sets_table3()
        .into_iter()
        .map(|(name, features)| {
            let cone = build_feature_model(&name, &features);
            ExplorationModel::new(&name, features, cone)
        })
        .collect()
}

fn run_inquiry(models: &[ExplorationModel], observations: &[Observation]) -> usize {
    let report = Inquiry::new()
        .observations(observations.to_vec())
        .models(models.to_vec())
        .run()
        .expect("pre-built observations cannot fail");
    report.models.iter().map(|m| m.infeasible_count).sum()
}

fn run_inquiry_telemetry(models: &[ExplorationModel], observations: &[Observation]) -> usize {
    let report = Inquiry::new()
        .observations(observations.to_vec())
        .models(models.to_vec())
        .telemetry(true)
        .run()
        .expect("pre-built observations cannot fail");
    assert!(
        report.telemetry.is_some(),
        "the bench process owns the telemetry sink"
    );
    report.models.iter().map(|m| m.infeasible_count).sum()
}

fn run_direct(cones: &[&ModelCone], observations: &[Observation]) -> usize {
    check_models(cones, observations, 1)
        .iter()
        .map(|row| row.iter().filter(|ok| !**ok).count())
        .sum()
}

/// Median wall-clock of `runs` executions of `f`.
fn median_time(runs: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn bench_session_pipeline(c: &mut Criterion) {
    // A scaled-down Table 3 campaign with the default noisy PMU, like the
    // batch_feasibility bench.
    let observations = experiment_observations(4_000);
    let models = family();
    let cones: Vec<&ModelCone> = models.iter().map(|m| &m.cone).collect();

    // Both paths must reach the same refutation counts before being timed.
    assert_eq!(
        run_inquiry(&models, &observations),
        run_direct(&cones, &observations),
        "session and direct verdicts diverged"
    );

    // Coarse overhead gate (CI-jitter-proof); the criterion medians below
    // record the precise ratio against the checked-in baseline.
    let direct = median_time(5, || {
        std::hint::black_box(run_direct(&cones, &observations));
    });
    let session = median_time(5, || {
        std::hint::black_box(run_inquiry(&models, &observations));
    });
    let ratio = session.as_secs_f64() / direct.as_secs_f64().max(1e-12);
    println!("session/direct wall-clock ratio: {ratio:.3} (target < 1.05, gate < 1.5)");
    assert!(
        ratio < 1.5,
        "the session layer must stay within 1.5x of check_models (measured {ratio:.3}x)"
    );

    let mut group = c.benchmark_group("session_pipeline");
    group.bench_function("check_models_direct", |b| {
        b.iter(|| run_direct(&cones, &observations))
    });
    group.bench_function("inquiry_report", |b| {
        b.iter(|| run_inquiry(&models, &observations))
    });
    // Same session with a live telemetry recording per iteration: the
    // `bench_gate --max-ratio` guard holds this within 5% of `inquiry_report`,
    // pinning the cost of the metrics/span sink on the hot path.
    group.bench_function("inquiry_report_telemetry", |b| {
        b.iter(|| run_inquiry_telemetry(&models, &observations))
    });
    group.finish();
}

criterion_group!(benches, bench_session_pipeline);
criterion_main!(benches);
