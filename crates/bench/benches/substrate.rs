//! Substrate benchmarks: μpath enumeration, MMU simulation throughput, PMU
//! sampling and the LP solver — the building blocks whose costs determine the
//! end-to-end numbers of Figure 9.

use counterpoint::models::family::{build_feature_model, feature_sets_table3};
use counterpoint::workloads::{LinearAccess, RandomAccess, Workload};
use counterpoint_haswell::full_counter_space;
use counterpoint_haswell::mem::PageSize;
use counterpoint_haswell::mmu::{HaswellMmu, MmuConfig};
use counterpoint_haswell::pmu::{MultiplexingPmu, PmuConfig};
use counterpoint_lp::{LinearProgram, Relation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_mudd_enumeration(c: &mut Criterion) {
    let specs = feature_sets_table3();
    let mut group = c.benchmark_group("model_cone_construction");
    group.sample_size(20);
    for name in ["m0", "m4"] {
        let (_, features) = specs.iter().find(|(n, _)| n == name).unwrap().clone();
        group.bench_with_input(BenchmarkId::from_parameter(name), &features, |b, f| {
            b.iter(|| build_feature_model(name, f));
        });
    }
    group.finish();
}

fn bench_mmu_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mmu_simulation");
    let n = 50_000usize;
    group.throughput(Throughput::Elements(n as u64));
    let linear = LinearAccess {
        footprint: 16 << 20,
        stride: 64,
        store_ratio: 0.1,
    }
    .generate(n);
    let random = RandomAccess {
        footprint: 1 << 30,
        store_ratio: 0.2,
        seed: 1,
    }
    .generate(n);
    group.bench_function("linear_64B_stride", |b| {
        b.iter(|| {
            let mut mmu = HaswellMmu::new(MmuConfig::haswell());
            mmu.run(linear.iter().copied(), PageSize::Size4K);
            mmu.counts().get("load.ret")
        });
    });
    group.bench_function("random_1GiB_footprint", |b| {
        b.iter(|| {
            let mut mmu = HaswellMmu::new(MmuConfig::haswell());
            mmu.run(random.iter().copied(), PageSize::Size4K);
            mmu.counts().get("load.ret")
        });
    });
    group.finish();
}

fn bench_pmu_sampling(c: &mut Criterion) {
    let space = full_counter_space();
    let truth: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![1000.0 + i as f64; space.len()])
        .collect();
    let pmu = MultiplexingPmu::new(PmuConfig::default());
    c.bench_function("pmu_multiplexing_100_intervals_26_events", |b| {
        b.iter(|| pmu.sample_intervals(&truth, space.len()));
    });
}

fn bench_lp_solver(c: &mut Criterion) {
    // A feasibility problem of the same shape as the Appendix A LP: ~200 flow
    // variables and 52 box constraints.
    let vars = 200usize;
    let mut lp = LinearProgram::new(vars);
    for k in 0..26 {
        let coeffs: Vec<f64> = (0..vars).map(|p| ((p + k) % 4) as f64).collect();
        lp.add_constraint(&coeffs, Relation::Ge, 50.0);
        lp.add_constraint(&coeffs, Relation::Le, 5_000.0);
    }
    c.bench_function("lp_feasibility_200vars_52constraints", |b| {
        b.iter(|| lp.is_feasible());
    });
}

criterion_group!(
    benches,
    bench_mudd_enumeration,
    bench_mmu_simulation,
    bench_pmu_sampling,
    bench_lp_solver
);
criterion_main!(benches);
