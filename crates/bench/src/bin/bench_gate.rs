//! The CI perf-regression gate.
//!
//! Consumes the per-binary median JSONs that the vendored `criterion` shim
//! writes under `target/criterion/<name>/` when `cargo bench --
//! --save-baseline <name>` runs, merges them into a single `BENCH_<sha>.json`
//! (benchmark name → median ns), and fails — exit code 1 — if any benchmark's
//! median regressed more than the tolerance against the repository's
//! checked-in `BENCH_baseline.json`.
//!
//! Normally invoked through `ci/bench_gate.sh` (locally and in the CI `bench`
//! job), but usable standalone:
//!
//! ```text
//! bench_gate --current-dir target/criterion/current \
//!            --baseline BENCH_baseline.json \
//!            --out BENCH_abc123.json \
//!            [--tolerance-pct 20] [--min-gate-ns 20000] [--update-baseline] \
//!            [--summary <file>] \
//!            [--max-ratio <numerator>:<denominator>:<limit>]...
//! ```
//!
//! `--update-baseline` rewrites the baseline file with the current medians
//! instead of comparing (used after an intentional performance change; see
//! `EXPERIMENTS.md`).
//!
//! `--summary <file>` additionally writes the comparison as a markdown table
//! (benchmark, baseline, current, delta %) — `ci/bench_gate.sh` appends it to
//! `$GITHUB_STEP_SUMMARY` so perf deltas are visible on the PR without
//! downloading artifacts.
//!
//! `--max-ratio` (repeatable) pins the ratio of two *current* medians — e.g.
//! the telemetry-enabled session bench against its disabled twin — and fails
//! the gate when `numerator / denominator` exceeds `limit`.  Ratios are
//! checked in `--update-baseline` runs too: they guard invariants of the
//! current tree, not regressions against history.
//!
//! A baseline entry that emits no median in the current run (renamed or
//! deleted bench) is a hard failure outside `--update-baseline`: a silently
//! vanished benchmark would otherwise exempt itself from the gate forever.

use serde_json::JsonValue;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    current_dir: PathBuf,
    baseline: PathBuf,
    out: PathBuf,
    tolerance_pct: f64,
    /// Benchmarks whose baseline median is below this many nanoseconds are
    /// reported but never fail the gate: at that scale scheduler jitter on a
    /// shared CI runner dwarfs any plausible regression.
    min_gate_ns: f64,
    update_baseline: bool,
    /// Markdown summary destination from `--summary`, if requested.
    summary: Option<PathBuf>,
    /// `(numerator, denominator, limit)` triples from `--max-ratio`.
    max_ratios: Vec<(String, String, f64)>,
}

fn parse_args() -> Args {
    let mut current_dir = None;
    let mut baseline = None;
    let mut out = None;
    let mut tolerance_pct = 20.0;
    let mut min_gate_ns = 20_000.0;
    let mut update_baseline = false;
    let mut summary = None;
    let mut max_ratios = Vec::new();
    let fail = |msg: &str| -> ! {
        eprintln!("bench_gate: {msg}");
        eprintln!(
            "usage: bench_gate --current-dir <dir> --baseline <file> --out <file> \
             [--tolerance-pct <pct>] [--min-gate-ns <ns>] [--update-baseline] \
             [--summary <file>] [--max-ratio <num>:<den>:<limit>]..."
        );
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--current-dir" => current_dir = Some(PathBuf::from(value("--current-dir"))),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline"))),
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--tolerance-pct" => {
                tolerance_pct = value("--tolerance-pct")
                    .parse()
                    .unwrap_or_else(|_| fail("invalid --tolerance-pct"));
            }
            "--min-gate-ns" => {
                min_gate_ns = value("--min-gate-ns")
                    .parse()
                    .unwrap_or_else(|_| fail("invalid --min-gate-ns"));
            }
            "--update-baseline" => update_baseline = true,
            "--summary" => summary = Some(PathBuf::from(value("--summary"))),
            "--max-ratio" => {
                let spec = value("--max-ratio");
                let parts: Vec<&str> = spec.split(':').collect();
                let [num, den, limit] = parts.as_slice() else {
                    fail("--max-ratio expects <numerator>:<denominator>:<limit>");
                };
                let limit: f64 = limit
                    .parse()
                    .unwrap_or_else(|_| fail("invalid --max-ratio limit"));
                max_ratios.push((num.to_string(), den.to_string(), limit));
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    Args {
        current_dir: current_dir.unwrap_or_else(|| fail("--current-dir is required")),
        baseline: baseline.unwrap_or_else(|| fail("--baseline is required")),
        out: out.unwrap_or_else(|| fail("--out is required")),
        tolerance_pct,
        min_gate_ns,
        update_baseline,
        summary,
        max_ratios,
    }
}

/// Reads a flat `{"bench name": median_ns}` JSON object.
fn read_medians(path: &PathBuf) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let value: JsonValue = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
    let JsonValue::Object(map) = value else {
        panic!("{} is not a JSON object", path.display());
    };
    map.into_iter()
        .map(|(k, v)| match v.as_f64() {
            Some(n) => (k, n),
            None => panic!("{}: `{k}` is not a number", path.display()),
        })
        .collect()
}

/// Serialises medians as the canonical flat JSON object (sorted keys).
fn render_medians(medians: &BTreeMap<String, f64>) -> String {
    let mut body = String::from("{\n");
    for (i, (name, median)) in medians.iter().enumerate() {
        let comma = if i + 1 == medians.len() { "" } else { "," };
        body.push_str(&format!("  \"{name}\": {median:.1}{comma}\n"));
    }
    body.push_str("}\n");
    body
}

fn main() -> ExitCode {
    let args = parse_args();

    // Merge every per-binary medians file the criterion shim wrote.
    let mut current: BTreeMap<String, f64> = BTreeMap::new();
    let entries = std::fs::read_dir(&args.current_dir).unwrap_or_else(|e| {
        panic!(
            "cannot read {} (did `cargo bench -- --save-baseline` run?): {e}",
            args.current_dir.display()
        )
    });
    let mut sources = 0;
    for entry in entries {
        let path = entry.expect("readable directory entry").path();
        if path.extension().is_some_and(|e| e == "json") {
            current.extend(read_medians(&path));
            sources += 1;
        }
    }
    assert!(
        sources > 0,
        "no medians found under {}",
        args.current_dir.display()
    );
    println!(
        "bench_gate: {} benchmarks from {sources} bench binaries",
        current.len()
    );

    std::fs::write(&args.out, render_medians(&current))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out.display()));
    println!("bench_gate: wrote {}", args.out.display());

    // Ratio guards hold in every mode (including `--update-baseline`): they
    // pin invariants of the current tree, not regressions against history.
    let mut ratio_failures = Vec::new();
    for (num, den, limit) in &args.max_ratios {
        let lookup = |name: &String| {
            *current
                .get(name)
                .unwrap_or_else(|| panic!("--max-ratio names unknown benchmark `{name}`"))
        };
        let ratio = lookup(num) / lookup(den).max(1e-9);
        let over = ratio > *limit;
        println!(
            "bench_gate: ratio {num} / {den} = {ratio:.3} (limit {limit:.3}){}",
            if over { "  <- OVER LIMIT" } else { "" }
        );
        if over {
            ratio_failures.push(format!("{num} / {den} = {ratio:.3} > {limit:.3}"));
        }
    }
    if !ratio_failures.is_empty() {
        eprintln!(
            "bench_gate: {} ratio guard(s) failed:",
            ratio_failures.len()
        );
        for failure in &ratio_failures {
            eprintln!("  {failure}");
        }
        return ExitCode::FAILURE;
    }

    // The baseline may legitimately not exist yet when establishing one.
    let baseline = if args.baseline.exists() {
        read_medians(&args.baseline)
    } else if args.update_baseline {
        BTreeMap::new()
    } else {
        panic!(
            "baseline {} does not exist (establish one with --update-baseline)",
            args.baseline.display()
        );
    };

    let mut regressions = Vec::new();
    println!(
        "{:<55} {:>14} {:>14} {:>9}",
        "benchmark", "baseline ns", "current ns", "delta"
    );
    for (name, &now) in &current {
        match baseline.get(name) {
            Some(&was) if was > 0.0 => {
                let delta_pct = (now - was) / was * 100.0;
                let flag = if delta_pct > args.tolerance_pct && was >= args.min_gate_ns {
                    regressions.push((name.clone(), was, now, delta_pct));
                    "  <- REGRESSION"
                } else if delta_pct > args.tolerance_pct {
                    "  (under the gate floor, not enforced)"
                } else {
                    ""
                };
                println!("{name:<55} {was:>14.0} {now:>14.0} {delta_pct:>+8.1}%{flag}");
            }
            _ => println!("{name:<55} {:>14} {now:>14.0} {:>9}", "(new)", "-"),
        }
    }
    // Baseline benches that emitted no median this run: a renamed or deleted
    // bench must not silently exempt itself from the gate.
    let missing: Vec<&String> = baseline
        .keys()
        .filter(|n| !current.contains_key(*n))
        .collect();
    for name in &missing {
        println!("{name:<55} {:>14} {:>14} {:>9}", "(missing)", "-", "-");
    }

    if let Some(path) = &args.summary {
        let summary = render_summary(&current, &baseline, &regressions, &missing, &args);
        std::fs::write(path, summary)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("bench_gate: wrote summary {}", path.display());
    }

    if args.update_baseline {
        std::fs::write(&args.baseline, render_medians(&current))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.baseline.display()));
        println!("bench_gate: baseline {} updated", args.baseline.display());
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    if !missing.is_empty() {
        failed = true;
        eprintln!(
            "bench_gate: {} baseline benchmark(s) emitted no median this run:",
            missing.len()
        );
        for name in &missing {
            eprintln!("  {name}");
        }
        eprintln!(
            "bench_gate: if a bench was renamed or removed intentionally, re-baseline with \
             `ci/bench_gate.sh --update` and commit the refreshed BENCH_baseline.json"
        );
    }
    if !regressions.is_empty() {
        failed = true;
        eprintln!(
            "bench_gate: {} benchmark(s) regressed more than {:.0}%:",
            regressions.len(),
            args.tolerance_pct
        );
        for (name, was, now, delta) in &regressions {
            eprintln!("  {name}: {was:.0} ns -> {now:.0} ns ({delta:+.1}%)");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "bench_gate: OK — no median regressed more than {:.0}%",
            args.tolerance_pct
        );
        ExitCode::SUCCESS
    }
}

/// Renders the baseline-vs-current comparison as a markdown table plus a
/// one-line verdict, for `$GITHUB_STEP_SUMMARY`.
fn render_summary(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    regressions: &[(String, f64, f64, f64)],
    missing: &[&String],
    args: &Args,
) -> String {
    let mut md = String::from("## Bench gate\n\n");
    md.push_str("| benchmark | baseline (ns) | current (ns) | delta |\n");
    md.push_str("|---|---:|---:|---:|\n");
    for (name, &now) in current {
        match baseline.get(name) {
            Some(&was) if was > 0.0 => {
                let delta_pct = (now - was) / was * 100.0;
                let mark = if regressions.iter().any(|(n, ..)| n == name) {
                    " ⚠️"
                } else {
                    ""
                };
                md.push_str(&format!(
                    "| `{name}` | {was:.0} | {now:.0} | {delta_pct:+.1}%{mark} |\n"
                ));
            }
            _ => md.push_str(&format!("| `{name}` | — (new) | {now:.0} | — |\n")),
        }
    }
    for name in missing {
        md.push_str(&format!(
            "| `{name}` | {:.0} | — (missing) | — |\n",
            baseline[*name]
        ));
    }
    md.push('\n');
    if args.update_baseline {
        md.push_str("Baseline re-established from this run.\n");
    } else if regressions.is_empty() && missing.is_empty() {
        md.push_str(&format!(
            "**OK** — no median regressed more than {:.0}% (floor {:.0} ns).\n",
            args.tolerance_pct, args.min_gate_ns
        ));
    } else {
        md.push_str(&format!(
            "**FAILED** — {} regression(s) over {:.0}%, {} missing baseline bench(es).\n",
            regressions.len(),
            args.tolerance_pct,
            missing.len()
        ));
    }
    md
}
