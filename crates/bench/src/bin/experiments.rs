//! Regenerates the tables and figures of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p counterpoint-bench --bin experiments -- \
//!     <which> [--quick] [--seed <u64>] [--threads <n>] [--search-threads <n>] [--json <path>] \
//!     [--enumerate <depth>] [--max-models <n>] [--telemetry <prefix>]
//! ```
//!
//! where `<which>` is one of `fig1a`, `fig1b`, `fig1c`, `fig3`, `fig5`, `fig6`,
//! `fig9`, `fig10`, `table1`, `table3`, `table5`, `table7`, `stats`,
//! `enumerate`, or `all`.
//! Unknown experiment names and flags are rejected with a usage message.
//! `--quick` reduces the simulated access counts (for smoke testing).
//! `--seed` overrides the PMU multiplexing-scheduler seed on the campaign-driven
//! experiments (default unchanged, so output stays reproducible), and
//! `--threads` fans the observation campaign and the model family across worker
//! threads through the `counterpoint-collect` runner and the session layer
//! (`0` = available parallelism; output is identical for every thread count),
//! and `--search-threads` gives the Figure 10 refinement search its own worker
//! budget through the certificate-pruned `LatticeSearch` engine (default: the
//! `--threads` budget; the search graph is byte-identical for every value).
//! `--enumerate <depth>` sets the grammar iteration depth of the `enumerate`
//! experiment (default 2) and `--max-models <n>` caps how many canonical
//! specs the enumerated family keeps (default 512); both only affect that
//! experiment.
//! `--json` additionally writes a machine-readable report of the experiments
//! that ran — full `counterpoint-session` [`Report`]s for the model-search
//! tables and Figure 10, structured values for Figures 1c and 5 — as one JSON
//! object keyed by experiment name.  The JSON is deterministic across runs and
//! thread counts (session reports exclude wall-clock timing by construction),
//! so it diffs cleanly as a CI artifact.
//! `--telemetry <prefix>` records the whole run through the
//! `counterpoint-telemetry` sink and writes `<prefix>.metrics.json` (counter /
//! histogram / warning snapshot) and `<prefix>.trace.json` (a Chrome Trace
//! Event dump — load it at <https://ui.perfetto.dev>).  The printed tables and
//! any `--json` report are byte-identical with and without the flag.
//!
//! The mapping from experiment to paper table/figure, and the measured-vs-paper
//! comparison, is recorded in `EXPERIMENTS.md`.

use counterpoint::models::family::{
    abort_specs_table7, build_abort_model, build_feature_model, build_trigger_model,
    feature_sets_table3, trigger_specs_table5,
};
use counterpoint::models::harness::{case_study_campaign, observe_trace, HarnessConfig};
use counterpoint::models::Feature;
use counterpoint::workloads::{GraphTraversal, LinearAccess, Workload};
use counterpoint::{
    compile_uop, deduce_constraints, BatchFeasibility, CounterSpace, ExplorationModel,
    FeasibilityChecker, FeatureSet, Inquiry, ModelCone, NoiseModel, Observation, Report,
};
use counterpoint_bench::{
    experiment_config, experiment_observations_opts, projected_model, table3_model,
};
use counterpoint_haswell::eventdb::{event_database, growth_factor};
use counterpoint_haswell::full_counter_space;
use counterpoint_haswell::hec::cumulative_group_space;
use counterpoint_haswell::mem::PageSize;
use counterpoint_haswell::mmu::{HaswellMmu, MmuConfig};
use counterpoint_haswell::pmu::{MultiplexingPmu, PmuConfig};
use counterpoint_mudd::CounterSignature;
use counterpoint_stats::{pearson, ConfidenceRegion};
use serde::Serialize;
use serde_json::JsonValue;
use std::time::Instant;

/// The valid `<which>` selectors, in run order.
const EXPERIMENTS: [&str; 14] = [
    "fig1a",
    "fig1b",
    "fig1c",
    "fig3",
    "fig5",
    "fig6",
    "table1",
    "table3",
    "table5",
    "table7",
    "stats",
    "fig9",
    "fig10",
    "enumerate",
];

/// Run-wide options parsed from the command line.
#[derive(Clone, Copy)]
struct Opts {
    /// Per-workload access budget.
    accesses: usize,
    /// PMU multiplexing-scheduler seed override (`--seed`).
    seed: Option<u64>,
    /// Campaign worker threads (`--threads`; 0 = available parallelism).
    threads: usize,
    /// Refinement-search worker threads (`--search-threads`; defaults to the
    /// `--threads` budget).
    search_threads: Option<usize>,
    /// Grammar iteration depth for the `enumerate` experiment (`--enumerate`).
    enumerate_depth: usize,
    /// Canonical-model cap for the `enumerate` experiment (`--max-models`).
    max_models: usize,
}

impl Opts {
    /// Collects the case-study observation set honouring `--seed`/`--threads`.
    fn observations(&self, accesses: usize) -> Vec<Observation> {
        experiment_observations_opts(accesses, self.seed, self.threads)
    }

    /// An [`Inquiry`] over the case-study campaign at the given access budget,
    /// honouring `--seed`/`--threads` (the session-layer analogue of
    /// [`observations`](Opts::observations)).
    fn inquiry(&self, accesses: usize) -> Inquiry {
        let mut config = experiment_config(accesses);
        if let Some(seed) = self.seed {
            config.pmu.seed = seed;
        }
        let campaign = case_study_campaign(&config);
        Inquiry::new()
            .sim_campaign(campaign, config.mmu.clone(), config.pmu.clone())
            .threads(self.threads)
    }
}

/// Command line of the experiments binary.
struct Cli {
    which: String,
    quick: bool,
    seed: Option<u64>,
    threads: usize,
    search_threads: Option<usize>,
    enumerate_depth: usize,
    max_models: usize,
    json: Option<String>,
    telemetry: Option<String>,
}

fn parse_args() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        which: String::new(),
        quick: false,
        seed: None,
        threads: 1,
        search_threads: None,
        enumerate_depth: 2,
        max_models: 512,
        json: None,
        telemetry: None,
    };
    let mut which = None;
    let fail = |msg: String| -> ! {
        eprintln!("error: {msg}");
        eprintln!(
            "usage: experiments <which> [--quick] [--seed <u64>] [--threads <n>] \
             [--search-threads <n>] [--enumerate <depth>] [--max-models <n>] \
             [--json <path>] [--telemetry <prefix>]"
        );
        eprintln!(
            "where <which> is `all` or one of: {}",
            EXPERIMENTS.join(", ")
        );
        std::process::exit(2);
    };
    let parse = |flag: &str, value: Option<&String>| -> u64 {
        let Some(value) = value else {
            fail(format!("{flag} requires a value"));
        };
        value
            .parse()
            .unwrap_or_else(|_| fail(format!("invalid {flag} value `{value}`")))
    };
    let string = |flag: &str, value: Option<&String>| -> String {
        let Some(value) = value else {
            fail(format!("{flag} requires a value"));
        };
        value.clone()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cli.quick = true,
            "--seed" => {
                cli.seed = Some(parse("--seed", args.get(i + 1)));
                i += 1;
            }
            "--threads" => {
                cli.threads = parse("--threads", args.get(i + 1)) as usize;
                i += 1;
            }
            "--search-threads" => {
                cli.search_threads = Some(parse("--search-threads", args.get(i + 1)) as usize);
                i += 1;
            }
            "--enumerate" => {
                cli.enumerate_depth = parse("--enumerate", args.get(i + 1)) as usize;
                i += 1;
            }
            "--max-models" => {
                cli.max_models = parse("--max-models", args.get(i + 1)) as usize;
                i += 1;
            }
            "--json" => {
                cli.json = Some(string("--json", args.get(i + 1)));
                i += 1;
            }
            "--telemetry" => {
                cli.telemetry = Some(string("--telemetry", args.get(i + 1)));
                i += 1;
            }
            flag if flag.starts_with("--seed=") => {
                cli.seed = Some(parse("--seed", Some(&flag["--seed=".len()..].to_string())));
            }
            flag if flag.starts_with("--search-threads=") => {
                cli.search_threads = Some(parse(
                    "--search-threads",
                    Some(&flag["--search-threads=".len()..].to_string()),
                ) as usize);
            }
            flag if flag.starts_with("--threads=") => {
                cli.threads =
                    parse("--threads", Some(&flag["--threads=".len()..].to_string())) as usize;
            }
            flag if flag.starts_with("--enumerate=") => {
                cli.enumerate_depth = parse(
                    "--enumerate",
                    Some(&flag["--enumerate=".len()..].to_string()),
                ) as usize;
            }
            flag if flag.starts_with("--max-models=") => {
                cli.max_models = parse(
                    "--max-models",
                    Some(&flag["--max-models=".len()..].to_string()),
                ) as usize;
            }
            flag if flag.starts_with("--json=") => {
                cli.json = Some(flag["--json=".len()..].to_string());
            }
            flag if flag.starts_with("--telemetry=") => {
                cli.telemetry = Some(flag["--telemetry=".len()..].to_string());
            }
            flag if flag.starts_with("--") => fail(format!("unknown flag `{flag}`")),
            name => {
                if let Some(previous) = &which {
                    fail(format!(
                        "unexpected argument `{name}` (experiment `{previous}` already selected)"
                    ));
                }
                if name != "all" && !EXPERIMENTS.contains(&name) {
                    fail(format!("unknown experiment `{name}`"));
                }
                which = Some(name.to_string());
            }
        }
        i += 1;
    }
    cli.which = which.unwrap_or_else(|| "all".to_string());
    cli
}

fn main() {
    let cli = parse_args();
    // Claim the telemetry sink for the whole run: every Inquiry the selected
    // experiments build contributes to this one recording (their own
    // `telemetry(...)` hook yields to an active outer recording).
    let recording = cli
        .telemetry
        .as_ref()
        .map(|_| counterpoint::telemetry::Recording::start());
    let opts = Opts {
        accesses: if cli.quick { 20_000 } else { 60_000 },
        seed: cli.seed,
        threads: cli.threads,
        search_threads: cli.search_threads,
        enumerate_depth: cli.enumerate_depth,
        max_models: cli.max_models,
    };

    // Session reports are converted to the JSON value model only when
    // `--json` asked for them (fig1c/fig5 build their few small rows
    // alongside printing either way); nothing is retained on default runs.
    let want_json = cli.json.is_some();
    let mut sink: Vec<(String, JsonValue)> = Vec::new();
    let mut run = |name: &str, f: &dyn Fn(Opts) -> Option<JsonValue>| {
        if cli.which == "all" || cli.which == name {
            println!("\n================ {name} ================");
            if let Some(value) = f(opts) {
                if want_json {
                    sink.push((name.to_string(), value));
                }
            }
        }
    };

    run("fig1a", &|_| {
        fig1a();
        None
    });
    run("fig1b", &|_| {
        fig1b();
        None
    });
    run("fig1c", &|o| Some(fig1c(o.accesses)));
    run("fig3", &|_| {
        fig3();
        None
    });
    run("fig5", &|o| Some(fig5(o.accesses)));
    run("fig6", &|_| {
        fig6();
        None
    });
    run("table1", &|_| {
        table1();
        None
    });
    run("table3", &|o| json_if(table3(&o), want_json));
    run("table5", &|o| json_if(table5(&o), want_json));
    run("table7", &|o| json_if(table7(&o), want_json));
    run("stats", &|o| {
        stats_correlations(o.accesses);
        None
    });
    run("fig9", &|o| {
        fig9(&o);
        None
    });
    run("fig10", &|o| json_if(fig10(&o), want_json));
    run("enumerate", &|o| json_if(enumerate_families(&o), want_json));

    if let Some(path) = &cli.json {
        let text = serde_json::to_string_pretty(&JsonValue::Object(sink))
            .expect("experiment values are finite");
        std::fs::write(path, text + "\n")
            .unwrap_or_else(|e| panic!("cannot write --json file `{path}`: {e}"));
        eprintln!("wrote JSON report to {path}");
    }

    if let (Some(prefix), Some(recording)) = (&cli.telemetry, recording) {
        let snapshot = recording.finish();
        let (metrics, trace) = snapshot
            .write_files(prefix)
            .unwrap_or_else(|e| panic!("cannot write --telemetry files at `{prefix}`: {e}"));
        eprintln!("wrote telemetry metrics to {metrics}");
        eprintln!("wrote Chrome trace (load at https://ui.perfetto.dev) to {trace}");
    }
}

/// Renders a session report into the `--json` sink's value model — only when
/// `--json` was requested; default runs drop the report without converting
/// its verdict matrix.
fn json_if(report: Report, want_json: bool) -> Option<JsonValue> {
    want_json.then(|| report.to_value())
}

/// Figure 1a: growth of HEC counts across microarchitecture generations.
fn fig1a() {
    println!(
        "{:<8} {:>6} {:>14} {:>8} {:>20}",
        "uarch", "year", "named events", "cores", "addressable events"
    );
    for m in event_database() {
        println!(
            "{:<8} {:>6} {:>14} {:>8} {:>20}",
            m.name,
            m.year,
            m.named_events,
            m.typical_cores,
            m.addressable_events()
        );
    }
    println!(
        "growth factor (addressable, oldest -> newest): {:.1}x (paper: >10x)",
        growth_factor()
    );
}

/// Figure 1b: number of model constraints vs. cumulative counter groups.
fn fig1b() {
    println!("{:<22} {:>12} {:>12}", "counter groups", "m0", "m4");
    let labels = ["Ret|4", "+L2TLB|10", "+Walk|22", "+Refs|26"];
    for groups in 1..=4usize {
        let count = |name: &str| deduce_constraints(&projected_model(name, groups)).len();
        // The Refs group makes the exact hull expensive for the richest model; the
        // paper reports the same exponential blow-up (Figure 9b).
        let m4 = if groups <= 3 {
            count("m4").to_string()
        } else {
            "(see fig9)".to_string()
        };
        println!("{:<22} {:>12} {:>12}", labels[groups - 1], count("m0"), m4);
    }
}

/// Figure 1c: multiplexing noise vs. number of active HECs, and whether the
/// constraint-(1) violation remains detectable at 99% confidence.  Returns the
/// per-row data for the `--json` report.
fn fig1c(accesses: usize) -> JsonValue {
    let space = full_counter_space();
    // A 2 KiB stride gives two accesses per page: the merged-walk violation
    // (ret_stlb_miss = 2x walk_done) is real but has a slim margin, so it is
    // exactly the kind of violation multiplexing noise can hide.
    let workload = LinearAccess {
        footprint: 32 << 20,
        stride: 2048,
        store_ratio: 0.0,
    };
    let trace = workload.generate(accesses * 2);
    // The constraint under test: load.ret_stlb_miss <= load.walk_done (violated by
    // walk merging on this workload).  Checked against the m0-style cone projected
    // onto the Ret+Walk counters.
    let m0 = table3_model("m0");
    let checker_space: Vec<String> = space.names().to_vec();
    println!(
        "{:>10} {:>22} {:>28}",
        "counters", "relative noise (CV)", "violation detected (m0)"
    );
    // Ground-truth per-interval increments (no multiplexing), multiplexed below as
    // if `active` logical events were programmed on 4 physical counters with a
    // bursty phase profile.  Several PMU scheduling seeds are averaged, mirroring
    // repeated measurement runs.
    let pmu_truth = MultiplexingPmu::new(PmuConfig::noiseless());
    let mut mmu = HaswellMmu::new(MmuConfig::haswell());
    let truth = pmu_truth.collect(&mut mmu, &trace, PageSize::Size4K, &space, 12);
    let idx = space.index_of("load.ret_stlb_miss").unwrap();
    let seeds = [11u64, 23, 37, 51, 77];
    let mut rows: Vec<JsonValue> = Vec::new();
    for &active in &[4usize, 8, 12, 16, 19, 22, 26] {
        let mut cv_sum = 0.0;
        let mut detected_runs = 0usize;
        for &seed in &seeds {
            let samples = MultiplexingPmu::new(PmuConfig {
                physical_counters: 4,
                slices_per_interval: 16,
                phase_variation: 0.9,
                seed,
            })
            .sample_intervals(&truth, active);
            let steady = &samples[2..];
            let obs = Observation::from_samples("fig1c", steady, 0.99);
            let series: Vec<f64> = steady.iter().map(|r| r[idx]).collect();
            let mean = counterpoint_stats::mean(&series).max(1.0);
            cv_sum += counterpoint_stats::variance(&series).sqrt() / mean;
            if !FeasibilityChecker::new(&m0).is_feasible(&obs) {
                detected_runs += 1;
            }
        }
        println!(
            "{:>10} {:>22.3} {:>21} of {} runs",
            active,
            cv_sum / seeds.len() as f64,
            detected_runs,
            seeds.len()
        );
        rows.push(JsonValue::Object(vec![
            ("active_counters".to_string(), active.to_value()),
            (
                "mean_relative_noise".to_string(),
                (cv_sum / seeds.len() as f64).to_value(),
            ),
            ("detected_runs".to_string(), detected_runs.to_value()),
            ("total_runs".to_string(), seeds.len().to_value()),
        ]));
        let _ = &checker_space;
    }
    JsonValue::Array(rows)
}

/// Figure 3: whether a violation is detectable depends on which counters are used.
fn fig3() {
    // Figure 3a's three-counter cone and the infeasible observation.
    let space3 = CounterSpace::new(&["load.causes_walk", "load.walk_done", "load.ret_stlb_miss"]);
    let sigs = vec![
        CounterSignature::from_counts(vec![1, 0, 0]),
        CounterSignature::from_counts(vec![1, 1, 0]),
        CounterSignature::from_counts(vec![1, 1, 1]),
    ];
    let cone3 = ModelCone::from_signatures("fig3a", &space3, sigs.clone(), 3);
    let obs3 = Observation::exact("obs", &[4.0, 2.0, 3.0]);
    println!(
        "3 counters (causes_walk, walk_done, ret_stlb_miss): violation detected = {}",
        !FeasibilityChecker::new(&cone3).is_feasible(&obs3)
    );

    // Figure 3b: dropping walk_done hides the violation.
    let cone2 = cone3.project(&["load.causes_walk", "load.ret_stlb_miss"]);
    let obs2 = Observation::exact("obs", &[4.0, 3.0]);
    println!(
        "2 counters (drop walk_done):                         violation detected = {}",
        !FeasibilityChecker::new(&cone2).is_feasible(&obs2)
    );

    // Figure 3c: substituting pde$_miss for walk_done also hides it.
    let space_sub =
        CounterSpace::new(&["load.causes_walk", "load.pde$_miss", "load.ret_stlb_miss"]);
    let sub_sigs = vec![
        CounterSignature::from_counts(vec![1, 0, 0]),
        CounterSignature::from_counts(vec![1, 1, 0]),
        CounterSignature::from_counts(vec![1, 0, 1]),
        CounterSignature::from_counts(vec![1, 1, 1]),
    ];
    let cone_sub = ModelCone::from_signatures("fig3c", &space_sub, sub_sigs, 4);
    let obs_sub = Observation::exact("obs", &[4.0, 1.0, 3.0]);
    println!(
        "3 counters (substitute pde$_miss):                   violation detected = {}",
        !FeasibilityChecker::new(&cone_sub).is_feasible(&obs_sub)
    );
    println!("constraints of the 3-counter cone:");
    for c in deduce_constraints(&cone3).all_named() {
        println!("  {}", c.text());
    }
}

/// Figures 3d / 5: correlated vs. independent counter confidence regions.
/// Returns the extents and refutation outcomes for the `--json` report.
fn fig5(accesses: usize) -> JsonValue {
    let space = full_counter_space();
    let workload = GraphTraversal {
        vertices: 300_000,
        avg_degree: 8,
        seed: 3,
    };
    let trace = workload.generate(accesses * 4);
    let pmu = MultiplexingPmu::new(PmuConfig::default());
    let mut mmu = HaswellMmu::new(MmuConfig::haswell());
    let samples = pmu.collect(&mut mmu, &trace, PageSize::Size4K, &space, 40);
    let steady = &samples[2..];
    let correlated = ConfidenceRegion::from_samples(steady, 0.99, NoiseModel::Correlated);
    let independent = ConfidenceRegion::from_samples(steady, 0.99, NoiseModel::Independent);
    println!("confidence-region total extent (sum of half-widths), 99% level:");
    println!("  independent : {:>14.1}", independent.total_extent());
    println!("  correlated  : {:>14.1}", correlated.total_extent());
    println!(
        "  tightening  : {:>14.2}x",
        independent.total_extent() / correlated.total_extent().max(1e-9)
    );
    let m0 = table3_model("m0");
    let independent_extent = independent.total_extent();
    let correlated_extent = correlated.total_extent();
    let obs_corr = Observation::from_region("graph", correlated);
    let obs_ind = Observation::from_region("graph", independent);
    let refuted_corr = !FeasibilityChecker::new(&m0).is_feasible(&obs_corr);
    let refuted_ind = !FeasibilityChecker::new(&m0).is_feasible(&obs_ind);
    println!("m0 refuted with correlated region: {refuted_corr}");
    println!("m0 refuted with independent region: {refuted_ind}");
    JsonValue::Object(vec![
        (
            "independent_extent".to_string(),
            independent_extent.to_value(),
        ),
        (
            "correlated_extent".to_string(),
            correlated_extent.to_value(),
        ),
        (
            "tightening".to_string(),
            (independent_extent / correlated_extent.max(1e-9)).to_value(),
        ),
        ("m0_refuted_correlated".to_string(), refuted_corr.to_value()),
        ("m0_refuted_independent".to_string(), refuted_ind.to_value()),
    ])
}

/// Figure 6: refining the PDE-cache model removes the violated constraint.
fn fig6() {
    let counters = CounterSpace::new(&["load.causes_walk", "load.pde$_miss"]);
    let initial = compile_uop(
        "fig6a",
        "incr load.causes_walk; do LookupPde$; switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss }; done;",
        &counters,
    )
    .unwrap();
    let refined = compile_uop(
        "fig6c",
        "do LookupPde$; switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss }; switch Abort { Yes => done; No => incr load.causes_walk }; done;",
        &counters,
    )
    .unwrap();
    let obs = Observation::exact("microbench", &[1_000.0, 1_300.0]);
    for (label, mudd) in [("initial (6a)", &initial), ("refined (6c)", &refined)] {
        let cone = ModelCone::from_mudd(mudd).unwrap();
        let constraints = deduce_constraints(&cone);
        let report = FeasibilityChecker::new(&cone).check(&obs, Some(&constraints));
        println!("{label}: feasible = {}", report.feasible);
        for v in &report.violated {
            println!("    violated: {}", v.text());
        }
    }
}

/// Table 1: representative Haswell MMU model constraints.
fn table1() {
    // Constraint 1 comes from the merge-free, prefetch-capable model projected onto
    // Ret+Walk counters; constraints 2/3-style bounds appear once the Refs group is
    // included.
    let m1 = projected_model("m1", 3);
    let constraints = deduce_constraints(&m1);
    println!(
        "model m1 projected onto Ret+L2TLB+Walk ({} counters): {} constraints",
        m1.dimension(),
        constraints.len()
    );
    let mut shown = 0;
    for c in constraints.all_named() {
        if c.involved_counters() >= 2 && shown < 12 {
            println!("  [{} HECs] {}", c.involved_counters(), c.text());
            shown += 1;
        }
    }
    // The walk_ref lower bound (constraint 3 of Table 1) on the small projection of
    // m0 with the Refs group included.
    let m0_refs = table3_model("m0").project(&[
        "load.causes_walk",
        "load.walk_done_1g",
        "store.causes_walk",
        "store.walk_done_1g",
        "walk_ref.l1",
        "walk_ref.l2",
        "walk_ref.l3",
        "walk_ref.mem",
    ]);
    println!("\nwalk_ref bounds implied by m0 (no bypass):");
    for c in deduce_constraints(&m0_refs).all_named() {
        if c.involved_counters() >= 4 {
            println!("  [{} HECs] {}", c.involved_counters(), c.text());
        }
    }
}

/// Table 3: the initial model search.
fn table3(opts: &Opts) -> Report {
    let models: Vec<ExplorationModel> = feature_sets_table3()
        .into_iter()
        .map(|(name, features)| {
            let cone = build_feature_model(&name, &features);
            ExplorationModel::new(&name, features, cone)
        })
        .collect();
    // One session: the campaign and the model family both fan across the
    // worker threads through the session layer; output is identical for every
    // thread count.
    let report = opts
        .inquiry(opts.accesses)
        .models(models.clone())
        .run()
        .expect("the simulated campaign cannot fail");
    println!("{} observations collected\n", report.observations.len());
    println!(
        "{:<5} {:>8} {:>9} {:>8} {:>11} {:>11} {:>12}",
        "model", "TlbPf", "EarlyPsc", "Merging", "Pml4eCache", "WalkBypass", "#infeasible"
    );
    for (model, eval) in models.iter().zip(report.models.iter()) {
        let tick = |f: Feature| {
            if model.features.contains(f.name()) {
                "yes"
            } else {
                "-"
            }
        };
        println!(
            "{:<5} {:>8} {:>9} {:>8} {:>11} {:>11} {:>12}{}",
            model.name,
            tick(Feature::TlbPrefetch),
            tick(Feature::EarlyPsc),
            tick(Feature::Merging),
            tick(Feature::Pml4eCache),
            tick(Feature::WalkBypass),
            eval.infeasible_count,
            if eval.feasible { "   <- feasible" } else { "" }
        );
    }
    report
}

/// Table 5: TLB prefetch trigger conditions.
fn table5(opts: &Opts) -> Report {
    // The trigger analysis focuses on the linear microbenchmark instances (paper,
    // Appendix C.2), run to steady state.
    let accesses = opts.accesses;
    let mut config = HarnessConfig::quick();
    if let Some(seed) = opts.seed {
        config.pmu.seed = seed;
    }
    let mut observations = Vec::new();
    for (label, store_ratio) in [("loads", 0.0f64), ("stores", 1.0)] {
        let workload = LinearAccess {
            footprint: 8 << 20,
            stride: 64,
            store_ratio,
        };
        let trace = workload.generate((accesses * 60).max(3_000_000));
        observations.push(observe_trace(
            &format!("linear-{label}"),
            &trace,
            PageSize::Size4K,
            &config,
        ));
    }
    let specs = trigger_specs_table5();
    let models: Vec<ExplorationModel> = specs
        .iter()
        .map(|(name, spec)| {
            ExplorationModel::new(name, FeatureSet::new(), build_trigger_model(name, spec))
        })
        .collect();
    let report = Inquiry::new()
        .observations(observations)
        .threads(opts.threads)
        .models(models)
        .run()
        .expect("pre-built observations cannot fail to collect");
    println!(
        "{:<5} {:>5} {:>5} {:>6} {:>10} {:>10} {:>12}",
        "model", "spec", "load", "store", "dtlb-miss", "stlb-miss", "#infeasible"
    );
    for ((name, spec), row) in specs.iter().zip(report.models.iter()) {
        let infeasible = row.infeasible_count;
        let tick = |b: bool| if b { "yes" } else { "-" };
        println!(
            "{:<5} {:>5} {:>5} {:>6} {:>10} {:>10} {:>12}{}",
            name,
            tick(spec.speculative),
            tick(spec.load),
            tick(spec.store),
            tick(spec.dtlb_miss),
            tick(spec.stlb_miss),
            infeasible,
            if infeasible == 0 {
                "   <- feasible"
            } else {
                ""
            }
        );
    }
    report
}

/// Table 7: translation-request abort points as an alternative to walk bypassing.
fn table7(opts: &Opts) -> Report {
    let specs = abort_specs_table7();
    let mut models: Vec<ExplorationModel> = specs
        .iter()
        .map(|(name, points)| {
            ExplorationModel::new(name, FeatureSet::new(), build_abort_model(name, points))
        })
        .collect();
    // The walk-bypassing alternative rides along as the final family member.
    models.push(ExplorationModel::new(
        "t0 (walk bypassing)",
        FeatureSet::new(),
        build_trigger_model(
            "t0 (walk bypassing)",
            &counterpoint::models::TriggerSpec::t0(),
        ),
    ));
    let report = opts
        .inquiry(opts.accesses)
        .models(models)
        .run()
        .expect("the simulated campaign cannot fail");
    println!("{} observations collected\n", report.observations.len());
    println!(
        "{:<5} {:<55} {:>12}",
        "model", "abort points", "#infeasible"
    );
    for ((name, points), row) in specs.iter().zip(report.models.iter()) {
        let labels: Vec<&str> = points.iter().map(|p| p.label()).collect();
        println!(
            "{:<5} {:<55} {:>12}",
            name,
            labels.join(", "),
            row.infeasible_count
        );
    }
    println!(
        "{:<5} {:<55} {:>12}",
        "t0",
        "walk bypassing instead of aborts",
        report
            .models
            .last()
            .expect("t0 was registered")
            .infeasible_count
    );
    report
}

/// Section 7.1 statistics: correlated vs. independent violation detection, and the
/// fraction of strongly correlated counter pairs.
fn stats_correlations(accesses: usize) {
    let space = full_counter_space();
    let pmu = MultiplexingPmu::new(PmuConfig::default());
    let suite = counterpoint::workloads::standard_suite();
    // Phase-varying traces (a prefetch-friendly linear phase followed by a
    // TLB-hostile random phase): program phases make the per-interval counter
    // values co-vary, which is what the correlated confidence regions exploit.
    let phased: Vec<(String, Vec<counterpoint_haswell::mem::MemoryAccess>)> = (0..4u64)
        .map(|i| {
            let mut trace = LinearAccess {
                footprint: 8 << 20,
                stride: 64,
                store_ratio: 0.0,
            }
            .generate(accesses * 4);
            trace.extend(
                counterpoint::workloads::RandomAccess {
                    footprint: (1 + i) << 30,
                    store_ratio: 0.2,
                    seed: i,
                }
                .generate(accesses * 4),
            );
            (format!("phased-{i}"), trace)
        })
        .collect();
    let models: Vec<(String, ModelCone)> = ["m0", "m1", "m2", "m3", "m9", "m10", "m11"]
        .iter()
        .map(|n| (n.to_string(), table3_model(n)))
        .collect();

    let mut correlated_violations = 0usize;
    let mut independent_violations = 0usize;
    let mut strong_pairs = 0usize;
    let mut total_pairs = 0usize;

    let mut traces: Vec<(String, Vec<counterpoint_haswell::mem::MemoryAccess>)> = suite
        .iter()
        .map(|entry| {
            (
                entry.label.clone(),
                entry
                    .workload
                    .generate(accesses * entry.access_scale.max(1)),
            )
        })
        .collect();
    traces.extend(phased);

    for (label, trace) in traces {
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        let samples = pmu.collect(&mut mmu, &trace, PageSize::Size4K, &space, 20);
        let steady: Vec<Vec<f64>> = samples[2..].to_vec();

        // Pearson correlations across counter pairs (counting only pairs where both
        // counters are active).
        for i in 0..space.len() {
            for j in (i + 1)..space.len() {
                let xi: Vec<f64> = steady.iter().map(|r| r[i]).collect();
                let xj: Vec<f64> = steady.iter().map(|r| r[j]).collect();
                if xi.iter().sum::<f64>() > 0.0 && xj.iter().sum::<f64>() > 0.0 {
                    total_pairs += 1;
                    if pearson(&xi, &xj).abs() > 0.9 {
                        strong_pairs += 1;
                    }
                }
            }
        }

        let corr =
            Observation::from_samples_with_model(&label, &steady, 0.99, NoiseModel::Correlated);
        let ind =
            Observation::from_samples_with_model(&label, &steady, 0.99, NoiseModel::Independent);
        for (_, cone) in &models {
            let checker = FeasibilityChecker::new(cone);
            if !checker.is_feasible(&corr) {
                correlated_violations += 1;
            }
            if !checker.is_feasible(&ind) {
                independent_violations += 1;
            }
        }
    }

    println!("model-constraint violations detected across incomplete models:");
    println!("  with correlated confidence regions : {correlated_violations}");
    println!("  with independent confidence regions: {independent_violations}");
    if independent_violations > 0 {
        println!(
            "  additional violations from correlations: {:.1}% (paper: >24%)",
            100.0 * (correlated_violations as f64 - independent_violations as f64)
                / independent_violations as f64
        );
    }
    println!(
        "counter pairs with |Pearson| > 0.9: {:.1}% ({} of {}) (paper: >25%)",
        100.0 * strong_pairs as f64 / total_pairs.max(1) as f64,
        strong_pairs,
        total_pairs
    );
}

/// Figure 9: CounterPoint performance characterisation.
fn fig9(opts: &Opts) {
    let observations = opts.observations(opts.accesses / 2);
    println!("(a) feasibility-testing time per observation vs counter groups (model m4):");
    for groups in 1..=4usize {
        let cone = projected_model("m4", groups);
        let space = cumulative_group_space(groups);
        let idx: Vec<usize> = full_counter_space().indices_of(space.names());
        let projected: Vec<Observation> = observations
            .iter()
            .take(20)
            .map(|o| {
                let mean: Vec<f64> = idx.iter().map(|&i| o.mean()[i]).collect();
                Observation::exact(o.name(), &mean)
            })
            .collect();
        // The warm-started batch engine is what a campaign actually runs.
        let mut batch = BatchFeasibility::new(&cone);
        let start = Instant::now();
        for o in &projected {
            let _ = batch.is_feasible(o);
        }
        let per_obs = start.elapsed().as_secs_f64() * 1000.0 / projected.len() as f64;
        println!(
            "  {:>2} group(s), {:>2} counters: {:>8.3} ms / observation",
            groups,
            space.len(),
            per_obs
        );
    }

    println!("(b) constraint-deduction time vs counter groups (model m0):");
    for groups in 1..=4usize {
        let start = Instant::now();
        let constraints = deduce_constraints(&projected_model("m0", groups));
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "  {:>2} group(s): {:>9.3} s  ({} constraints)",
            groups,
            elapsed,
            constraints.len()
        );
    }
}

/// Figure 10: the guided discovery/elimination search graph.
fn fig10(opts: &Opts) -> Report {
    let feature_names: Vec<&str> = Feature::ALL.iter().map(|f| f.name()).collect();
    let mut inquiry = opts.inquiry(opts.accesses / 2).refine(
        |features: &FeatureSet| build_feature_model("candidate", features),
        &feature_names,
        FeatureSet::new(),
    );
    if let Some(search_threads) = opts.search_threads {
        inquiry = inquiry.search_threads(search_threads);
    }
    let report = inquiry.run().expect("the simulated campaign cannot fail");
    let graph = report
        .refinement
        .as_ref()
        .expect("refinement was configured");
    println!(
        "explored {} models, {} edges",
        graph.steps.len(),
        graph.edges.len()
    );
    for (i, step) in graph.steps.iter().enumerate() {
        println!(
            "  [{i:>2}] ({:?}) {{{}}}: {} infeasible{}",
            step.phase,
            step.features.join(", "),
            step.infeasible_count,
            if step.feasible { "  <- feasible" } else { "" }
        );
    }
    println!("minimal feasible feature sets:");
    for set in &graph.minimal_feasible {
        println!("  {{{}}}", set.join(", "));
    }
    println!(
        "essential features: {{{}}}",
        graph.essential_features().join(", ")
    );
    println!(
        "JSON search graph:\n{}",
        serde_json::to_string_pretty(graph).unwrap()
    );
    report
}

/// The grammar-enumerated model families: iterate the case-study term
/// grammar to `--enumerate` depth, canonicalize and cap at `--max-models`
/// specs, then run one certificate-pool-sharing
/// [`LatticeSearch`](counterpoint::LatticeSearch) per assumption group over
/// the case-study observations.
fn enumerate_families(opts: &Opts) -> Report {
    use counterpoint::models::enumo::{EnumOptions, ModelGrammar};

    let grammar = ModelGrammar::case_study();
    let options = EnumOptions {
        max_depth: opts.enumerate_depth,
        max_models: opts.max_models,
        ..EnumOptions::default()
    };
    let mut inquiry = opts
        .inquiry(opts.accesses / 2)
        .model_grammar(grammar, options);
    if let Some(search_threads) = opts.search_threads {
        inquiry = inquiry.search_threads(search_threads);
    }
    let report = inquiry.run().expect("the simulated campaign cannot fail");
    let summary = report
        .enumeration
        .as_ref()
        .expect("enumeration was configured");
    println!("{} observations collected\n", report.observations.len());
    println!(
        "grammar candidates: {} raw -> {} canonical (depth {}, cap {})",
        summary.raw_candidates, summary.canonical_candidates, opts.enumerate_depth, opts.max_models
    );
    println!(
        "family members built: {} ({} path-limit skips, {} structural duplicates)",
        summary.members, summary.skipped_path_limit, summary.structural_duplicates
    );
    println!("\nassumption groups ({}):", summary.groups.len());
    println!(
        "{:<42} {:>8} {:>9} {:>10}",
        "group signature", "members", "searched", "feasible"
    );
    let mut searched_total = 0usize;
    for group in &summary.groups {
        let feasible = group.graph.steps.iter().filter(|s| s.feasible).count();
        searched_total += group.graph.steps.len();
        println!(
            "{:<42} {:>8} {:>9} {:>10}",
            group.signature,
            group.members.len(),
            group.graph.steps.len(),
            feasible
        );
    }
    println!("\nlattice models searched across all groups: {searched_total}");
    report
}
