//! Shared helpers for the CounterPoint benchmark and experiment harness.
//!
//! The `experiments` binary regenerates every table and figure of the paper's
//! evaluation (see `EXPERIMENTS.md` at the workspace root for the index); the
//! Criterion benches in `benches/` measure the performance-characterisation
//! quantities of Figure 9.

use counterpoint::models::family::{build_feature_model, feature_sets_table3};
use counterpoint::models::harness::{case_study_campaign, HarnessConfig};
use counterpoint::{FeatureSet, ModelCone, Observation};
use counterpoint_haswell::hec::cumulative_group_space;
use counterpoint_haswell::mem::PageSize;
use counterpoint_haswell::pmu::PmuConfig;

/// Returns the named Table 3 model cone.
///
/// # Panics
///
/// Panics if the name is not one of `m0`–`m11`.
pub fn table3_model(name: &str) -> ModelCone {
    let (_, features): (String, FeatureSet) = feature_sets_table3()
        .into_iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("unknown Table 3 model {name}"));
    build_feature_model(name, &features)
}

/// A model projected onto the first `groups` cumulative counter groups
/// (Ret → L2TLB → Walk → Refs), as used on the x-axes of Figures 1b and 9.
pub fn projected_model(name: &str, groups: usize) -> ModelCone {
    let full = table3_model(name);
    let space = cumulative_group_space(groups);
    full.project(space.names())
}

/// The experiment-scale harness configuration: noisy PMU, all three page sizes.
/// `accesses` scales the per-workload budget (the experiments default to a size
/// that regenerates every table in a few minutes).
pub fn experiment_config(accesses: usize) -> HarnessConfig {
    HarnessConfig {
        accesses_per_workload: accesses,
        intervals: 20,
        confidence: 0.99,
        pmu: PmuConfig::default(),
        mmu: counterpoint_haswell::mmu::MmuConfig::haswell(),
        page_sizes: vec![PageSize::Size4K, PageSize::Size2M, PageSize::Size1G],
        warmup_intervals: 2,
    }
}

/// Collects the case-study observation set at experiment scale.
pub fn experiment_observations(accesses: usize) -> Vec<Observation> {
    experiment_observations_opts(accesses, None, 1)
}

/// Like [`experiment_observations`], but with the experiment binary's knobs:
/// an optional PMU scheduling seed override (`--seed`) and a worker-thread
/// budget (`--threads`, `0` = available parallelism) applied through the
/// `counterpoint-collect` campaign runner.
///
/// With `seed = None` the default PMU seed is used and the output is
/// bit-identical to [`experiment_observations`] for every thread count.
pub fn experiment_observations_opts(
    accesses: usize,
    seed: Option<u64>,
    threads: usize,
) -> Vec<Observation> {
    let mut config = experiment_config(accesses);
    if let Some(seed) = seed {
        config.pmu.seed = seed;
    }
    case_study_campaign(&config)
        .with_threads(threads)
        .run_sim(&config.mmu, &config.pmu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_model_lookup_works() {
        let m4 = table3_model("m4");
        assert_eq!(m4.dimension(), 26);
    }

    #[test]
    fn projected_model_shrinks_dimension() {
        let m = projected_model("m0", 2);
        assert_eq!(m.dimension(), 10);
    }

    #[test]
    #[should_panic(expected = "unknown Table 3 model")]
    fn unknown_model_panics() {
        let _ = table3_model("m99");
    }

    #[test]
    fn threaded_experiment_observations_match_default() {
        let base = experiment_observations(1_000);
        let threaded = experiment_observations_opts(1_000, None, 4);
        assert_eq!(base.len(), threaded.len());
        for (a, b) in base.iter().zip(&threaded) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.mean(), b.mean());
            assert_eq!(a.region().half_widths(), b.region().half_widths());
        }
        // A seed override changes the multiplexed samples.
        let reseeded = experiment_observations_opts(1_000, Some(42), 2);
        assert_ne!(base[0].mean(), reseeded[0].mean());
    }
}
