//! The backend seam: *what* to measure vs. *how* it is measured.
//!
//! A [`CounterBackend`] turns a workload plus an event schedule into
//! per-interval counter samples. The rest of the pipeline (campaign fan-out,
//! confidence regions, feasibility tests) is backend-agnostic, so the same
//! campaign can run against the Haswell simulator, a recorded trace, or — once
//! a real harness is wired in — live `perf_event_open` groups.

use crate::error::CollectError;
use crate::schedule::EventSchedule;
use counterpoint_core::Observation;
use counterpoint_haswell::mem::{MemoryAccess, PageSize};
use serde::{Deserialize, Serialize};

/// One unit of measurement work handed to a backend: a labelled access trace
/// plus the measurement geometry (page size, interval count).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadRun<'a> {
    /// Label identifying the workload/configuration (also the trace-record and
    /// observation name).
    pub label: &'a str,
    /// The memory accesses to measure.
    pub accesses: &'a [MemoryAccess],
    /// Translation page size the workload runs under.
    pub page_size: PageSize,
    /// Number of measurement intervals to split the run into.
    pub intervals: usize,
}

/// Per-interval counter samples, as a perf-style tool would report them:
/// one row per measurement interval, one column per logical event of the
/// schedule (already extrapolated across multiplexing rounds).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntervalSamples {
    counters: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl IntervalSamples {
    /// Wraps sample rows with their counter names.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from the number of counters.
    pub fn new(counters: Vec<String>, rows: Vec<Vec<f64>>) -> IntervalSamples {
        for row in &rows {
            assert_eq!(
                row.len(),
                counters.len(),
                "sample row dimension does not match the counter list"
            );
        }
        IntervalSamples { counters, rows }
    }

    /// The counter names, in column order.
    pub fn counters(&self) -> &[String] {
        &self.counters
    }

    /// The per-interval sample rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Number of measurement intervals.
    pub fn num_intervals(&self) -> usize {
        self.rows.len()
    }

    /// Number of counters per row.
    pub fn dimension(&self) -> usize {
        self.counters.len()
    }

    /// The rows after discarding `warmup` leading intervals (at least one row
    /// is always kept, matching the harness's historical slicing).
    ///
    /// # Panics
    ///
    /// Panics if there are no rows at all.
    pub fn steady(&self, warmup: usize) -> &[Vec<f64>] {
        assert!(!self.rows.is_empty(), "no sample rows recorded");
        &self.rows[warmup.min(self.rows.len() - 1)..]
    }

    /// Summarises the steady-state rows into an [`Observation`] with the
    /// paper's correlated confidence-region construction.
    ///
    /// # Panics
    ///
    /// Panics if there are no rows or `confidence` is not in `(0, 1)`.
    pub fn observation(&self, name: &str, warmup: usize, confidence: f64) -> Observation {
        Observation::from_samples(name, self.steady(warmup), confidence)
    }

    /// Like [`observation`](Self::observation), but widens the confidence
    /// region by the schedule's extrapolation-noise
    /// [`inflation_factor`](EventSchedule::inflation_factor) — the conservative
    /// construction for heavily multiplexed schedules whose per-interval noise
    /// is underestimated by few samples.
    ///
    /// # Panics
    ///
    /// Panics if there are no rows or `confidence` is not in `(0, 1)`.
    pub fn observation_inflated(
        &self,
        name: &str,
        warmup: usize,
        confidence: f64,
        schedule: &EventSchedule,
    ) -> Observation {
        let base = self.observation(name, warmup, confidence);
        Observation::from_region(name, base.region().inflated(schedule.inflation_factor()))
    }
}

/// A counter-acquisition backend.
///
/// Backends own the "how": the Haswell simulator ([`SimBackend`]), recorded
/// traces ([`ReplayBackend`]), or real hardware (the feature-gated
/// `LinuxPerfBackend` stub). They take `&mut self` because real acquisition is
/// stateful (open perf fds, a warm simulator); implementations define what, if
/// anything, persists between runs.
///
/// [`SimBackend`]: crate::SimBackend
/// [`ReplayBackend`]: crate::ReplayBackend
pub trait CounterBackend {
    /// A short stable name for reports and error messages.
    fn name(&self) -> &str;

    /// The multiplexing schedule this backend would use, given its event list
    /// and physical-counter budget.
    fn schedule(&self) -> Result<EventSchedule, CollectError>;

    /// Whether [`run`](Self::run) actually reads [`WorkloadRun::accesses`].
    ///
    /// Backends that measure a workload (simulator, real hardware) return
    /// `true` (the default). Backends that answer from a recording return
    /// `false`, which lets a campaign skip generating the access trace
    /// entirely — replay cost then scales with the trace, not with the original
    /// workload.
    fn consumes_accesses(&self) -> bool {
        true
    }

    /// Measures one workload under the given schedule.
    fn run(
        &mut self,
        workload: &WorkloadRun<'_>,
        schedule: &EventSchedule,
    ) -> Result<IntervalSamples, CollectError>;
}

/// Boxed backends forward to their inner implementation, so campaign factories
/// can be stored type-erased (the `counterpoint-session` `Inquiry` builder
/// holds one without being generic over the backend type).
impl CounterBackend for Box<dyn CounterBackend> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn schedule(&self) -> Result<EventSchedule, CollectError> {
        (**self).schedule()
    }

    fn consumes_accesses(&self) -> bool {
        (**self).consumes_accesses()
    }

    fn run(
        &mut self,
        workload: &WorkloadRun<'_>,
        schedule: &EventSchedule,
    ) -> Result<IntervalSamples, CollectError> {
        (**self).run(workload, schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_samples_expose_geometry() {
        let s = IntervalSamples::new(
            vec!["a".to_string(), "b".to_string()],
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
        );
        assert_eq!(s.dimension(), 2);
        assert_eq!(s.num_intervals(), 3);
        assert_eq!(s.counters()[1], "b");
        assert_eq!(s.steady(1).len(), 2);
        // Warm-up never discards the final row.
        assert_eq!(s.steady(10), &[vec![5.0, 6.0]]);
    }

    #[test]
    fn observation_matches_direct_construction() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 100.0 + i as f64]).collect();
        let s = IntervalSamples::new(vec!["a".to_string(), "b".to_string()], rows.clone());
        let obs = s.observation("w", 2, 0.99);
        let direct = Observation::from_samples("w", &rows[2..], 0.99);
        assert_eq!(obs.mean(), direct.mean());
        assert_eq!(obs.region().half_widths(), direct.region().half_widths());
    }

    #[test]
    fn inflated_observation_widens_by_schedule_factor() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 7) as f64]).collect();
        let s = IntervalSamples::new(vec!["a".to_string()], rows);
        let schedule = EventSchedule::plan(
            (0..16).map(|i| format!("e{i}")).collect(),
            4, // 4 rounds -> inflation factor 2
        );
        let base = s.observation("w", 0, 0.99);
        let wide = s.observation_inflated("w", 0, 0.99, &schedule);
        for (w, b) in wide
            .region()
            .half_widths()
            .iter()
            .zip(base.region().half_widths())
        {
            assert_eq!(*w, b * 2.0);
        }
    }

    #[test]
    fn interval_samples_serde_round_trips() {
        let s = IntervalSamples::new(vec!["x".to_string()], vec![vec![0.1], vec![1.0 / 3.0]]);
        let text = serde_json::to_string(&s).unwrap();
        let back: IntervalSamples = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    #[should_panic(expected = "dimension does not match")]
    fn ragged_rows_panic() {
        let _ = IntervalSamples::new(vec!["a".to_string()], vec![vec![1.0, 2.0]]);
    }
}
