//! Campaign fan-out: a workload × page-size × schedule matrix over worker
//! threads, with deterministic per-cell seeds and stable observation order.

use crate::backend::{CounterBackend, WorkloadRun};
use crate::error::CollectError;
use crate::replay::ReplayBackend;
use crate::sim::SimBackend;
use crate::trace::{Trace, TraceRecord};
use counterpoint_core::Observation;
use counterpoint_haswell::mem::PageSize;
use counterpoint_haswell::mmu::MmuConfig;
use counterpoint_haswell::pmu::PmuConfig;
use counterpoint_telemetry as telemetry;
use counterpoint_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One cell of the campaign matrix: a labelled workload at a page size, with
/// its own access budget and PMU scheduling seed.
#[derive(Clone)]
pub struct CampaignCell {
    /// The cell's label — becomes the observation name and trace-record key, so
    /// it must be unique within a campaign (the harness uses `workload@pagesize`).
    pub label: String,
    /// The access-trace generator.
    pub workload: Arc<dyn Workload>,
    /// Number of accesses to generate for this cell.
    pub accesses: usize,
    /// Page size the cell runs under.
    pub page_size: PageSize,
    /// PMU scheduling seed for this cell (backends that model multiplexing use
    /// it; replay ignores it).
    pub seed: u64,
}

impl std::fmt::Debug for CampaignCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignCell")
            .field("label", &self.label)
            .field("accesses", &self.accesses)
            .field("page_size", &self.page_size)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// A measurement campaign: an ordered list of cells plus the shared measurement
/// geometry (intervals, warm-up, confidence level) and a worker-thread budget.
///
/// Observations are returned in cell order regardless of the thread count, and
/// every cell's result depends only on its own inputs (workload parameters and
/// seed), so a campaign is reproducible: `threads = 8` produces bit-identical
/// output to `threads = 1`.
#[derive(Clone, Debug)]
pub struct Campaign {
    cells: Vec<CampaignCell>,
    intervals: usize,
    warmup_intervals: usize,
    confidence: f64,
    threads: usize,
}

impl Campaign {
    /// An empty campaign with the given measurement geometry, running on one
    /// thread until [`with_threads`](Self::with_threads) raises the budget.
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is zero or `confidence` is not in `(0, 1)`.
    pub fn new(intervals: usize, warmup_intervals: usize, confidence: f64) -> Campaign {
        assert!(intervals > 0, "need at least one measurement interval");
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence level must be in (0, 1)"
        );
        Campaign {
            cells: Vec::new(),
            intervals,
            warmup_intervals,
            confidence,
            threads: 1,
        }
    }

    /// Appends a cell.
    pub fn push(&mut self, cell: CampaignCell) {
        self.cells.push(cell);
    }

    /// The cells, in run order.
    pub fn cells(&self) -> &[CampaignCell] {
        &self.cells
    }

    /// Number of measurement intervals per cell.
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// Leading intervals discarded before the confidence region is estimated.
    pub fn warmup_intervals(&self) -> usize {
        self.warmup_intervals
    }

    /// Confidence level of the constructed regions.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the worker-thread budget. `0` means "use the host's available
    /// parallelism".
    pub fn with_threads(mut self, threads: usize) -> Campaign {
        self.threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        self
    }

    /// Overrides every cell's seed with the same value (the `--seed` flag of
    /// the experiments binary).
    pub fn with_seed(mut self, seed: u64) -> Campaign {
        for cell in &mut self.cells {
            cell.seed = seed;
        }
        self
    }

    /// Derives a distinct deterministic seed per cell from `base` (SplitMix64
    /// over the cell index), modelling repeated measurement runs whose PMU
    /// scheduling phases differ.
    pub fn with_per_cell_seeds(mut self, base: u64) -> Campaign {
        for (idx, cell) in self.cells.iter_mut().enumerate() {
            cell.seed = splitmix64(base.wrapping_add(idx as u64));
        }
        self
    }

    /// Runs every cell through backends produced by `make_backend` and returns
    /// one observation per cell, in cell order.
    ///
    /// `make_backend` is called once per cell (on the worker thread that picked
    /// the cell up), so backends need not be `Send` — only the factory must be
    /// `Sync`.
    pub fn run<B, F>(&self, make_backend: F) -> Result<Vec<Observation>, CollectError>
    where
        B: CounterBackend,
        F: Fn(&CampaignCell) -> B + Sync,
    {
        Ok(self
            .run_cells(&make_backend)?
            .into_iter()
            .map(|(obs, _)| obs)
            .collect())
    }

    /// Like [`run`](Self::run), but also records every cell's raw samples into
    /// a [`Trace`] that replays to identical observations.
    pub fn run_recorded<B, F>(
        &self,
        make_backend: F,
    ) -> Result<(Vec<Observation>, Trace), CollectError>
    where
        B: CounterBackend,
        F: Fn(&CampaignCell) -> B + Sync,
    {
        let mut observations = Vec::with_capacity(self.cells.len());
        let mut trace = Trace::new();
        for (obs, record) in self.run_cells(&make_backend)? {
            observations.push(obs);
            trace.push(record);
        }
        Ok((observations, trace))
    }

    /// Runs the campaign on the Haswell simulator (the default backend): each
    /// cell gets a cold simulator with the cell's seed. Simulation cannot fail,
    /// so this returns the observations directly.
    pub fn run_sim(&self, mmu: &MmuConfig, pmu: &PmuConfig) -> Vec<Observation> {
        self.run(|cell| SimBackend::new(mmu.clone(), pmu.clone()).with_seed(cell.seed))
            .expect("the simulated backend is infallible")
    }

    /// [`run_sim`](Self::run_sim) plus trace recording.
    pub fn run_sim_recorded(&self, mmu: &MmuConfig, pmu: &PmuConfig) -> (Vec<Observation>, Trace) {
        self.run_recorded(|cell| SimBackend::new(mmu.clone(), pmu.clone()).with_seed(cell.seed))
            .expect("the simulated backend is infallible")
    }

    /// Replays a recorded trace through the campaign, reproducing the original
    /// observations bit-for-bit (or failing loudly on any mismatch between the
    /// campaign and the recording).
    pub fn replay(&self, trace: &Trace) -> Result<Vec<Observation>, CollectError> {
        let shared = Arc::new(trace.clone());
        self.run(move |_cell| ReplayBackend::shared(Arc::clone(&shared)))
    }

    fn run_cells<B, F>(
        &self,
        make_backend: &F,
    ) -> Result<Vec<(Observation, TraceRecord)>, CollectError>
    where
        B: CounterBackend,
        F: Fn(&CampaignCell) -> B + Sync,
    {
        let run_one = |cell: &CampaignCell| -> Result<(Observation, TraceRecord), CollectError> {
            let _cell_span = telemetry::span("campaign_cell", &cell.label);
            telemetry::add(telemetry::Metric::CampaignCells, 1);
            let mut backend = make_backend(cell);
            let schedule = {
                let _span = telemetry::span("schedule_group", &cell.label);
                backend.schedule()?
            };
            // Backends that answer from a recording never read the accesses, so
            // skip the (potentially expensive) trace generation for them.
            let accesses = if backend.consumes_accesses() {
                let accesses = cell.workload.generate(cell.accesses);
                if accesses.is_empty() {
                    return Err(CollectError::EmptyWorkload {
                        label: cell.label.clone(),
                    });
                }
                accesses
            } else {
                Vec::new()
            };
            let run = WorkloadRun {
                label: &cell.label,
                accesses: &accesses,
                page_size: cell.page_size,
                intervals: self.intervals,
            };
            let samples = backend.run(&run, &schedule)?;
            let observation =
                samples.observation(&cell.label, self.warmup_intervals, self.confidence);
            let record = TraceRecord {
                label: cell.label.clone(),
                page_size: cell.page_size,
                intervals: self.intervals,
                num_events: schedule.num_events(),
                physical_counters: schedule.physical_counters(),
                samples,
            };
            Ok((observation, record))
        };

        let workers = self.threads.min(self.cells.len()).max(1);
        let mut slots: Vec<Option<Result<(Observation, TraceRecord), CollectError>>> =
            if workers <= 1 {
                self.cells.iter().map(|cell| Some(run_one(cell))).collect()
            } else {
                let slots: Vec<Mutex<Option<_>>> =
                    self.cells.iter().map(|_| Mutex::new(None)).collect();
                let next = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            let Some(cell) = self.cells.get(idx) else {
                                break;
                            };
                            let outcome = run_one(cell);
                            *slots[idx].lock().expect("campaign worker panicked") = Some(outcome);
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|slot| slot.into_inner().expect("campaign worker panicked"))
                    .collect()
            };

        // Surface the first failure in cell order (deterministic regardless of
        // which worker hit it first).
        slots
            .iter_mut()
            .map(|slot| slot.take().expect("every cell was scheduled"))
            .collect()
    }
}

/// SplitMix64: the standard 64-bit mixer, used to derive independent per-cell
/// seeds from a base seed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterpoint_workloads::LinearAccess;

    fn small_campaign(cells: usize) -> Campaign {
        let mut campaign = Campaign::new(6, 1, 0.99);
        for i in 0..cells {
            let workload = LinearAccess {
                footprint: (1 + i as u64) << 20,
                stride: 64,
                store_ratio: 0.0,
            };
            campaign.push(CampaignCell {
                label: format!("cell-{i}@4k"),
                workload: Arc::new(workload),
                accesses: 4_000,
                page_size: PageSize::Size4K,
                seed: PmuConfig::default().seed,
            });
        }
        campaign
    }

    fn assert_observations_identical(a: &[Observation], b: &[Observation]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.mean(), y.mean());
            assert_eq!(x.region().axes(), y.region().axes());
            assert_eq!(x.region().half_widths(), y.region().half_widths());
        }
    }

    #[test]
    fn threaded_run_matches_sequential_run() {
        let mmu = MmuConfig::haswell();
        let pmu = PmuConfig::default();
        let campaign = small_campaign(5);
        let sequential = campaign.run_sim(&mmu, &pmu);
        let threaded = campaign.clone().with_threads(4).run_sim(&mmu, &pmu);
        assert_observations_identical(&sequential, &threaded);
        // Order is cell order, not completion order.
        for (i, obs) in sequential.iter().enumerate() {
            assert_eq!(obs.name(), format!("cell-{i}@4k"));
        }
    }

    #[test]
    fn record_then_replay_reproduces_observations() {
        let mmu = MmuConfig::haswell();
        let pmu = PmuConfig::default();
        let campaign = small_campaign(3);
        let (live, trace) = campaign.run_sim_recorded(&mmu, &pmu);
        assert_eq!(trace.len(), 3);
        let replayed = campaign.replay(&trace).unwrap();
        assert_observations_identical(&live, &replayed);
        // Replay through threads too.
        let replayed_mt = campaign.clone().with_threads(3).replay(&trace).unwrap();
        assert_observations_identical(&live, &replayed_mt);
    }

    #[test]
    fn replay_of_a_different_campaign_fails() {
        let mmu = MmuConfig::haswell();
        let pmu = PmuConfig::default();
        let (_, trace) = small_campaign(2).run_sim_recorded(&mmu, &pmu);
        let bigger = small_campaign(3);
        let err = bigger.replay(&trace).unwrap_err();
        assert!(matches!(err, CollectError::MissingRecord { .. }));
    }

    #[test]
    fn seed_overrides_apply() {
        let campaign = small_campaign(4).with_seed(7);
        assert!(campaign.cells().iter().all(|c| c.seed == 7));
        let per_cell = small_campaign(4).with_per_cell_seeds(7);
        let seeds: Vec<u64> = per_cell.cells().iter().map(|c| c.seed).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "per-cell seeds must be distinct");
        // Deterministic: same base, same seeds.
        let again: Vec<u64> = small_campaign(4)
            .with_per_cell_seeds(7)
            .cells()
            .iter()
            .map(|c| c.seed)
            .collect();
        assert_eq!(seeds, again);
    }

    #[test]
    fn per_cell_seeds_change_multiplexed_observations() {
        let mmu = MmuConfig::haswell();
        let pmu = PmuConfig::default();
        let fixed = small_campaign(2).run_sim(&mmu, &pmu);
        let reseeded = small_campaign(2)
            .with_per_cell_seeds(99)
            .run_sim(&mmu, &pmu);
        // Means differ because the PMU scheduling phases differ.
        assert_ne!(fixed[0].mean(), reseeded[0].mean());
    }

    #[test]
    fn zero_access_cells_error_instead_of_panicking() {
        let mmu = MmuConfig::haswell();
        let pmu = PmuConfig::default();
        let mut campaign = Campaign::new(4, 0, 0.99);
        campaign.push(CampaignCell {
            label: "empty@4k".to_string(),
            workload: Arc::new(LinearAccess {
                footprint: 1 << 20,
                stride: 64,
                store_ratio: 0.0,
            }),
            accesses: 0,
            page_size: PageSize::Size4K,
            seed: 0,
        });
        let err = campaign
            .run(|cell| SimBackend::new(mmu.clone(), pmu.clone()).with_seed(cell.seed))
            .unwrap_err();
        assert!(matches!(err, CollectError::EmptyWorkload { .. }));
        // The threaded path surfaces the same error instead of aborting.
        let err = campaign
            .with_threads(2)
            .run(|cell| SimBackend::new(mmu.clone(), pmu.clone()).with_seed(cell.seed))
            .unwrap_err();
        assert!(matches!(err, CollectError::EmptyWorkload { .. }));
    }

    /// A workload that must never be asked to generate accesses (stands in for
    /// an expensive generator during replay).
    struct PanickingWorkload;

    impl counterpoint_workloads::Workload for PanickingWorkload {
        fn name(&self) -> String {
            "panicking".to_string()
        }

        fn generate(&self, _num_accesses: usize) -> Vec<counterpoint_haswell::mem::MemoryAccess> {
            panic!("replay must not regenerate workload accesses");
        }
    }

    #[test]
    fn replay_does_not_regenerate_workload_accesses() {
        let mmu = MmuConfig::haswell();
        let pmu = PmuConfig::default();
        let recorded = small_campaign(2);
        let (live, trace) = recorded.run_sim_recorded(&mmu, &pmu);

        // Same labels/geometry, but workloads that panic if generated from.
        let mut replay_campaign = Campaign::new(6, 1, 0.99);
        for i in 0..2 {
            replay_campaign.push(CampaignCell {
                label: format!("cell-{i}@4k"),
                workload: Arc::new(PanickingWorkload),
                accesses: 4_000,
                page_size: PageSize::Size4K,
                seed: 0,
            });
        }
        let replayed = replay_campaign.replay(&trace).unwrap();
        assert_observations_identical(&live, &replayed);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let campaign = small_campaign(1).with_threads(0);
        assert!(campaign.threads() >= 1);
        assert_eq!(campaign.intervals(), 6);
        assert_eq!(campaign.warmup_intervals(), 1);
        assert_eq!(campaign.confidence(), 0.99);
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn invalid_confidence_panics() {
        let _ = Campaign::new(5, 0, 1.5);
    }
}
