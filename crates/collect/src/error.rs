//! Errors of the counter-collection subsystem.

use std::fmt;

/// Why a collection backend, campaign or trace operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollectError {
    /// The backend cannot acquire counters on this host (e.g. the Linux perf
    /// backend compiled on a machine without a usable PMU). The payload is
    /// structured so callers can report *which* backend refused and *why*
    /// instead of pattern-matching an opaque message.
    Unsupported {
        /// Name of the refusing backend.
        backend: String,
        /// Host-specific explanation (target OS, missing perf interface, ...).
        reason: String,
    },
    /// A replay backend was constructed from a trace with no records.
    EmptyTrace,
    /// A campaign cell produced no memory accesses (zero access budget or a
    /// degenerate workload), so there is nothing to measure.
    EmptyWorkload {
        /// The offending cell's label.
        label: String,
    },
    /// The trace has no record for the requested workload label.
    MissingRecord {
        /// The label that was looked up.
        label: String,
    },
    /// A trace record exists but was captured under a different configuration
    /// (page size, interval count or event schedule) than the replay requests.
    TraceMismatch {
        /// The label whose record mismatched.
        label: String,
        /// Which field disagreed, and how.
        reason: String,
    },
    /// Reading or writing a trace file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error, rendered.
        reason: String,
    },
    /// A trace file could not be parsed, or its format version is unknown.
    Format(String),
}

impl fmt::Display for CollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectError::Unsupported { backend, reason } => {
                write!(
                    f,
                    "backend `{backend}` is unsupported on this host: {reason}"
                )
            }
            CollectError::EmptyTrace => write!(f, "trace contains no records"),
            CollectError::EmptyWorkload { label } => {
                write!(f, "campaign cell `{label}` generated no memory accesses")
            }
            CollectError::MissingRecord { label } => {
                write!(f, "trace has no record for workload `{label}`")
            }
            CollectError::TraceMismatch { label, reason } => {
                write!(
                    f,
                    "trace record for `{label}` does not match the replay: {reason}"
                )
            }
            CollectError::Io { path, reason } => {
                write!(f, "trace I/O on `{path}` failed: {reason}")
            }
            CollectError::Format(msg) => write!(f, "trace format error: {msg}"),
        }
    }
}

impl std::error::Error for CollectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = CollectError::Unsupported {
            backend: "linux-perf".to_string(),
            reason: "no PMU".to_string(),
        };
        assert!(e.to_string().contains("linux-perf"));
        assert!(e.to_string().contains("no PMU"));
        assert!(CollectError::MissingRecord {
            label: "kv@4k".to_string()
        }
        .to_string()
        .contains("kv@4k"));
        assert!(CollectError::EmptyTrace.to_string().contains("no records"));
        assert!(CollectError::TraceMismatch {
            label: "x".to_string(),
            reason: "page size".to_string()
        }
        .to_string()
        .contains("page size"));
        assert!(CollectError::Io {
            path: "/tmp/t.json".to_string(),
            reason: "denied".to_string()
        }
        .to_string()
        .contains("/tmp/t.json"));
        assert!(CollectError::Format("bad version".to_string())
            .to_string()
            .contains("bad version"));
    }
}
