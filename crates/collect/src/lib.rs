//! Counter collection: the acquisition layer of the CounterPoint pipeline.
//!
//! The paper's pipeline starts with a *measurement campaign* — workloads swept
//! over page sizes, event groups multiplexed onto a handful of physical
//! counters, samples summarised into counter confidence regions. This crate
//! owns that stage end to end and separates *what* to measure from *how* it is
//! measured:
//!
//! * [`CounterBackend`] — the acquisition seam. [`SimBackend`] measures the
//!   functional Haswell simulator, [`ReplayBackend`] plays back recorded
//!   traces, and the feature-gated `LinuxPerfBackend` stub (`--features perf`)
//!   reserves the surface for a real `perf_event_open` harness.
//! * [`EventSchedule`] — plans multiplexing rounds for N logical events under a
//!   K-physical-counter budget and reports the extrapolation-noise
//!   [`inflation factor`](EventSchedule::inflation_factor) consumed by
//!   `counterpoint_stats::ConfidenceRegion::inflated`.
//! * [`Campaign`] — fans a workload × page-size matrix across worker threads
//!   with deterministic per-cell seeds and stable observation order
//!   (`threads = 8` is bit-identical to `threads = 1`).
//! * [`Trace`] — serde-based JSON record/replay, so any campaign can be
//!   captured once and re-run bit-exactly anywhere.
//!
//! # Example
//!
//! Record a two-cell campaign on the simulator and replay it:
//!
//! ```
//! use counterpoint_collect::{Campaign, CampaignCell, Trace};
//! use counterpoint_haswell::mem::PageSize;
//! use counterpoint_haswell::mmu::MmuConfig;
//! use counterpoint_haswell::pmu::PmuConfig;
//! use counterpoint_workloads::LinearAccess;
//! use std::sync::Arc;
//!
//! let mut campaign = Campaign::new(6, 1, 0.99);
//! for (i, stride) in [64u64, 4096].into_iter().enumerate() {
//!     campaign.push(CampaignCell {
//!         label: format!("linear-{stride}@4k"),
//!         workload: Arc::new(LinearAccess { footprint: 4 << 20, stride, store_ratio: 0.0 }),
//!         accesses: 3_000,
//!         page_size: PageSize::Size4K,
//!         seed: 17 + i as u64,
//!     });
//! }
//! let (live, trace) = campaign.run_sim_recorded(&MmuConfig::haswell(), &PmuConfig::default());
//! let replayed = campaign.replay(&Trace::from_json(&trace.to_json()).unwrap()).unwrap();
//! assert_eq!(live[0].mean(), replayed[0].mean());
//! ```

mod backend;
mod campaign;
mod error;
#[cfg(feature = "perf")]
mod perf;
mod replay;
mod schedule;
mod sim;
mod trace;

pub use backend::{CounterBackend, IntervalSamples, WorkloadRun};
pub use campaign::{Campaign, CampaignCell};
pub use error::CollectError;
#[cfg(feature = "perf")]
pub use perf::{LinuxPerfBackend, DEFAULT_PHYSICAL_COUNTERS};
pub use replay::ReplayBackend;
pub use schedule::{EventSchedule, NOISE_INFLATION_WARN_THRESHOLD};
pub use sim::SimBackend;
pub use trace::{Trace, TraceRecord, TRACE_FORMAT_VERSION};
