//! The Linux `perf_event_open` backend stub (behind the `perf` cargo feature).
//!
//! Real HEC acquisition programs each multiplexing round as a perf event
//! *group*: the round's first event is opened with `group_fd = -1` and becomes
//! the leader, the rest join it, and the kernel then schedules the whole group
//! onto the physical counters atomically — which is exactly the unit
//! [`EventSchedule`] plans. The extrapolation this crate models as multiplexing
//! noise corresponds to the kernel's `time_enabled / time_running` scaling
//! (`PERF_FORMAT_TOTAL_TIME_ENABLED` / `..._RUNNING`).
//!
//! This build is a *stub*: it compiles on every host, performs the host probe a
//! real harness would start with, and reports a structured
//! [`CollectError::Unsupported`] instead of opening events. That keeps the
//! backend surface (and this crate's feature wiring) honest and CI-covered
//! until a real syscall harness lands, without ever producing numbers that
//! could be mistaken for hardware measurements.

use crate::backend::{CounterBackend, IntervalSamples, WorkloadRun};
use crate::error::CollectError;
use crate::schedule::EventSchedule;

/// Default physical general-purpose counters per Haswell hyperthread.
pub const DEFAULT_PHYSICAL_COUNTERS: usize = 4;

/// The `perf_event_open` backend stub.
///
/// Construction always succeeds (so campaigns can be *planned* against it on
/// any machine); [`run`](CounterBackend::run) reports why acquisition is
/// unavailable on this host.
#[derive(Clone, Debug)]
pub struct LinuxPerfBackend {
    events: Vec<String>,
    physical_counters: usize,
}

impl LinuxPerfBackend {
    /// A perf backend programming the given event names.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty.
    pub fn new(events: Vec<String>) -> LinuxPerfBackend {
        assert!(!events.is_empty(), "cannot program zero perf events");
        LinuxPerfBackend {
            events,
            physical_counters: DEFAULT_PHYSICAL_COUNTERS,
        }
    }

    /// Overrides the physical-counter budget (8 with SMT off on Haswell).
    pub fn with_physical_counters(mut self, physical_counters: usize) -> LinuxPerfBackend {
        self.physical_counters = physical_counters;
        self
    }

    /// The programmed event names.
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// Describes why live perf acquisition is unavailable, as a real harness's
    /// preflight probe would: wrong OS, or (on Linux) the fact that this build
    /// does not include the syscall harness — alongside what the host's
    /// `perf_event_paranoid` setting reports, since that is the first thing to
    /// check when wiring the real backend in.
    pub fn host_probe() -> String {
        if cfg!(not(target_os = "linux")) {
            return format!(
                "perf_event_open requires Linux (this host: {})",
                std::env::consts::OS
            );
        }
        let paranoid = std::fs::read_to_string("/proc/sys/kernel/perf_event_paranoid");
        let perf_iface = match paranoid {
            Ok(level) => format!("perf_event_paranoid={}", level.trim()),
            Err(_) => "no /proc/sys/kernel/perf_event_paranoid (perf interface absent)".to_string(),
        };
        format!(
            "this build is the API stub — the perf_event_open syscall harness is not wired in \
             (host: linux, {perf_iface})"
        )
    }
}

impl CounterBackend for LinuxPerfBackend {
    fn name(&self) -> &str {
        "linux-perf"
    }

    fn schedule(&self) -> Result<EventSchedule, CollectError> {
        Ok(EventSchedule::plan(
            self.events.clone(),
            self.physical_counters,
        ))
    }

    fn run(
        &mut self,
        _workload: &WorkloadRun<'_>,
        _schedule: &EventSchedule,
    ) -> Result<IntervalSamples, CollectError> {
        Err(CollectError::Unsupported {
            backend: self.name().to_string(),
            reason: LinuxPerfBackend::host_probe(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterpoint_haswell::full_counter_space;
    use counterpoint_haswell::mem::PageSize;

    #[test]
    fn plans_groups_within_the_physical_budget() {
        let backend = LinuxPerfBackend::new(full_counter_space().names().to_vec());
        let schedule = backend.schedule().unwrap();
        assert_eq!(schedule.num_events(), 26);
        assert_eq!(schedule.num_rounds(), 7);
        for group in schedule.rounds() {
            assert!(group.len() <= DEFAULT_PHYSICAL_COUNTERS);
        }
        let smt_off = backend.with_physical_counters(8);
        assert_eq!(smt_off.schedule().unwrap().num_rounds(), 4);
    }

    #[test]
    fn run_reports_a_structured_unsupported_error() {
        let mut backend = LinuxPerfBackend::new(vec!["load.ret".to_string()]);
        let schedule = backend.schedule().unwrap();
        let run = WorkloadRun {
            label: "w",
            accesses: &[],
            page_size: PageSize::Size4K,
            intervals: 1,
        };
        match backend.run(&run, &schedule) {
            Err(CollectError::Unsupported { backend, reason }) => {
                assert_eq!(backend, "linux-perf");
                assert!(!reason.is_empty());
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        assert_eq!(backend.events().len(), 1);
    }

    #[test]
    #[should_panic(expected = "zero perf events")]
    fn empty_event_list_panics() {
        let _ = LinuxPerfBackend::new(Vec::new());
    }
}
