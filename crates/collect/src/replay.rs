//! The replay backend: plays a recorded [`Trace`] back as if it were live
//! hardware.

use crate::backend::{CounterBackend, IntervalSamples, WorkloadRun};
use crate::error::CollectError;
use crate::schedule::EventSchedule;
use crate::trace::Trace;
use std::sync::Arc;

/// A backend that answers every run from a recorded trace.
///
/// Lookup is by workload label; the record's measurement geometry (page size,
/// interval count, schedule parameters) is cross-checked against the replay
/// request so a trace can never silently masquerade as a different campaign.
/// Cloning is cheap (the trace is shared), so one trace can serve many
/// campaign workers.
#[derive(Clone, Debug)]
pub struct ReplayBackend {
    trace: Arc<Trace>,
}

impl ReplayBackend {
    /// Wraps a trace for replay.
    pub fn new(trace: Trace) -> ReplayBackend {
        ReplayBackend {
            trace: Arc::new(trace),
        }
    }

    /// Wraps an already-shared trace (avoids cloning record payloads).
    pub fn shared(trace: Arc<Trace>) -> ReplayBackend {
        ReplayBackend { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl CounterBackend for ReplayBackend {
    fn name(&self) -> &str {
        "replay"
    }

    fn consumes_accesses(&self) -> bool {
        false
    }

    fn schedule(&self) -> Result<EventSchedule, CollectError> {
        let first = self.trace.records.first().ok_or(CollectError::EmptyTrace)?;
        Ok(EventSchedule::plan(
            first.samples.counters().to_vec(),
            first.physical_counters,
        ))
    }

    fn run(
        &mut self,
        workload: &WorkloadRun<'_>,
        schedule: &EventSchedule,
    ) -> Result<IntervalSamples, CollectError> {
        let record = self
            .trace
            .get(workload.label)
            .ok_or_else(|| CollectError::MissingRecord {
                label: workload.label.to_string(),
            })?;
        let mismatch = |reason: String| CollectError::TraceMismatch {
            label: workload.label.to_string(),
            reason,
        };
        if record.page_size != workload.page_size {
            return Err(mismatch(format!(
                "recorded at page size {}, replayed at {}",
                record.page_size, workload.page_size
            )));
        }
        if record.intervals != workload.intervals {
            return Err(mismatch(format!(
                "recorded with {} intervals, replayed with {}",
                record.intervals, workload.intervals
            )));
        }
        if record.num_events != schedule.num_events() {
            return Err(mismatch(format!(
                "recorded with {} events, replay schedule has {}",
                record.num_events,
                schedule.num_events()
            )));
        }
        if record.physical_counters != schedule.physical_counters() {
            return Err(mismatch(format!(
                "recorded on {} physical counters, replay schedule assumes {}",
                record.physical_counters,
                schedule.physical_counters()
            )));
        }
        Ok(record.samples.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;
    use counterpoint_haswell::mem::PageSize;

    fn record(label: &str) -> TraceRecord {
        TraceRecord {
            label: label.to_string(),
            page_size: PageSize::Size4K,
            intervals: 2,
            num_events: 2,
            physical_counters: 4,
            samples: IntervalSamples::new(
                vec!["a".to_string(), "b".to_string()],
                vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            ),
        }
    }

    fn backend() -> ReplayBackend {
        let mut trace = Trace::new();
        trace.push(record("w@4k"));
        ReplayBackend::new(trace)
    }

    #[test]
    fn replays_recorded_samples() {
        let mut b = backend();
        let schedule = b.schedule().unwrap();
        assert_eq!(schedule.num_events(), 2);
        let run = WorkloadRun {
            label: "w@4k",
            accesses: &[],
            page_size: PageSize::Size4K,
            intervals: 2,
        };
        let samples = b.run(&run, &schedule).unwrap();
        assert_eq!(samples.rows()[1], vec![3.0, 4.0]);
        assert_eq!(b.name(), "replay");
        assert_eq!(b.trace().len(), 1);
    }

    #[test]
    fn missing_label_and_empty_trace_error() {
        let mut b = backend();
        let schedule = b.schedule().unwrap();
        let run = WorkloadRun {
            label: "unknown",
            accesses: &[],
            page_size: PageSize::Size4K,
            intervals: 2,
        };
        assert!(matches!(
            b.run(&run, &schedule),
            Err(CollectError::MissingRecord { .. })
        ));
        assert!(matches!(
            ReplayBackend::new(Trace::new()).schedule(),
            Err(CollectError::EmptyTrace)
        ));
    }

    #[test]
    fn geometry_mismatches_are_detected() {
        let mut b = backend();
        let schedule = b.schedule().unwrap();
        let wrong_page = WorkloadRun {
            label: "w@4k",
            accesses: &[],
            page_size: PageSize::Size2M,
            intervals: 2,
        };
        assert!(matches!(
            b.run(&wrong_page, &schedule),
            Err(CollectError::TraceMismatch { .. })
        ));
        let wrong_intervals = WorkloadRun {
            label: "w@4k",
            accesses: &[],
            page_size: PageSize::Size4K,
            intervals: 7,
        };
        assert!(matches!(
            b.run(&wrong_intervals, &schedule),
            Err(CollectError::TraceMismatch { .. })
        ));
        let wrong_schedule = EventSchedule::plan(vec!["a".to_string()], 4);
        let run = WorkloadRun {
            label: "w@4k",
            accesses: &[],
            page_size: PageSize::Size4K,
            intervals: 2,
        };
        assert!(matches!(
            b.run(&run, &wrong_schedule),
            Err(CollectError::TraceMismatch { .. })
        ));
    }
}
