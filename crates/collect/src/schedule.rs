//! Event-group scheduling under a physical-counter budget.
//!
//! A PMU exposes only a handful of physical counters (4 per hyperthread on
//! Haswell), so measuring more logical events forces time-multiplexing: the
//! events are dealt into *rounds* that take turns on the hardware, and each
//! event's count is extrapolated from the fraction of the interval its round
//! was scheduled. [`EventSchedule`] is the planner for that process — it
//! generalises the round-robin grouping that used to live inside the Haswell
//! PMU model (`counterpoint_haswell::pmu`) and reports the statistical price of
//! the plan: the [`inflation_factor`](EventSchedule::inflation_factor) by which
//! extrapolation noise widens confidence regions.

use counterpoint_haswell::pmu::multiplexing_rounds;
use counterpoint_mudd::CounterSpace;
use counterpoint_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// Noise-inflation level above which [`EventSchedule::plan`] records a
/// structured telemetry warning: an inflation factor of 2 means extrapolation
/// noise has doubled every confidence-region half-width, the point where
/// marginal constraint violations (Figure 1c) start to hide inside the
/// widened regions.
pub const NOISE_INFLATION_WARN_THRESHOLD: f64 = 2.0;

/// A multiplexing plan: which logical events are counted on which scheduling
/// round.
///
/// The plan is the modular round-robin deal `event e → round e mod R` with
/// `R = ceil(events / physical_counters)` — exactly the schedule perf-like
/// tools (and the simulated PMU) use, which keeps every round within the
/// physical-counter budget. When everything fits (`events <= physical
/// counters`) the schedule degenerates to a single round and the inflation
/// factor is exactly 1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventSchedule {
    events: Vec<String>,
    physical_counters: usize,
    rounds: Vec<Vec<usize>>,
}

impl EventSchedule {
    /// Plans a schedule for the named logical events on `physical_counters`
    /// simultaneous hardware counters.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty.
    pub fn plan(events: Vec<String>, physical_counters: usize) -> EventSchedule {
        assert!(!events.is_empty(), "cannot schedule zero events");
        let num_rounds = multiplexing_rounds(events.len(), physical_counters);
        let mut rounds = vec![Vec::new(); num_rounds];
        for event_idx in 0..events.len() {
            rounds[event_idx % num_rounds].push(event_idx);
        }
        let schedule = EventSchedule {
            events,
            physical_counters,
            rounds,
        };
        // Historically the statistical price of oversubscription was silent:
        // events beyond the physical budget were dealt into extra rounds and
        // nothing recorded that the resulting extrapolation noise existed.
        // Surface both facts through the telemetry sink.
        if telemetry::enabled() {
            telemetry::add(
                telemetry::Metric::ScheduleRounds,
                schedule.num_rounds() as u64,
            );
            let over = schedule.oversubscribed_events();
            if over > 0 {
                telemetry::add(telemetry::Metric::ScheduleOversubscribedEvents, over as u64);
                telemetry::warn(
                    "schedule_oversubscribed",
                    format!(
                        "{} events exceed the {}-counter budget by {over}: multiplexing \
                         across {} rounds at duty cycle 1/{}",
                        schedule.num_events(),
                        schedule.physical_counters(),
                        schedule.num_rounds(),
                        schedule.num_rounds(),
                    ),
                );
            }
            let inflation = schedule.inflation_factor();
            if inflation > NOISE_INFLATION_WARN_THRESHOLD {
                telemetry::add(telemetry::Metric::ScheduleInflationWarnings, 1);
                telemetry::warn(
                    "schedule_noise_inflation",
                    format!(
                        "multiplexing inflates confidence-region noise by {inflation:.2}x \
                         (threshold {NOISE_INFLATION_WARN_THRESHOLD:.2}x); consider splitting \
                         the event set or raising the interval count",
                    ),
                );
            }
        }
        schedule
    }

    /// Plans a schedule for every counter of a [`CounterSpace`], in space order.
    ///
    /// # Panics
    ///
    /// Panics if the space is empty.
    pub fn for_space(space: &CounterSpace, physical_counters: usize) -> EventSchedule {
        EventSchedule::plan(space.names().to_vec(), physical_counters)
    }

    /// The logical event names, in programming order.
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// Number of logical events.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// The physical-counter budget the plan was made for.
    pub fn physical_counters(&self) -> usize {
        self.physical_counters
    }

    /// The rounds: each entry lists the event indices counted on that round.
    pub fn rounds(&self) -> &[Vec<usize>] {
        &self.rounds
    }

    /// Number of multiplexing rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The round on which event `event_idx` is counted.
    ///
    /// Defined for any index (columns beyond [`num_events`](Self::num_events)
    /// follow the same modular deal), so a backend can schedule ground-truth
    /// matrices that carry more columns than programmed events.
    pub fn round_of(&self, event_idx: usize) -> usize {
        event_idx % self.rounds.len()
    }

    /// `true` when more than one round is needed (events exceed the budget).
    pub fn is_multiplexed(&self) -> bool {
        self.rounds.len() > 1
    }

    /// How many requested events exceed the simultaneous physical-counter
    /// budget (zero when everything fits in one round).  These events are not
    /// dropped — the round-robin deal multiplexes them — but each one is only
    /// observed on a [`duty_cycle`](Self::duty_cycle) fraction of the
    /// interval.
    pub fn oversubscribed_events(&self) -> usize {
        self.events.len().saturating_sub(self.physical_counters)
    }

    /// Fraction of the measurement interval each event is actually counted
    /// (`1 / rounds`).
    pub fn duty_cycle(&self) -> f64 {
        1.0 / self.rounds.len() as f64
    }

    /// The extrapolation-noise inflation factor of this plan: the multiplier on
    /// the *standard error* of each extrapolated count relative to measuring
    /// with enough physical counters.
    ///
    /// Each event is observed on a `1/R` fraction of the interval and scaled
    /// back up by `R`, so the sampling variance grows by ~`R` and the standard
    /// error — the unit confidence-region half-widths are made of — by
    /// `sqrt(R)`. Consumers pass this to
    /// `counterpoint_stats::ConfidenceRegion::inflated` to keep regions honest
    /// about multiplexing noise; a single-round schedule reports exactly 1.
    pub fn inflation_factor(&self) -> f64 {
        (self.rounds.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("ev{i}")).collect()
    }

    #[test]
    fn fitting_schedule_degenerates_to_one_round() {
        let s = EventSchedule::plan(names(4), 4);
        assert_eq!(s.num_rounds(), 1);
        assert_eq!(s.rounds()[0], vec![0, 1, 2, 3]);
        assert!(!s.is_multiplexed());
        assert_eq!(s.inflation_factor(), 1.0);
        assert_eq!(s.duty_cycle(), 1.0);
    }

    #[test]
    fn oversubscribed_schedule_round_robins() {
        let s = EventSchedule::plan(names(26), 4);
        assert_eq!(s.num_rounds(), 7);
        // Every round fits the physical budget.
        for round in s.rounds() {
            assert!(round.len() <= 4);
        }
        // The deal is modular, matching the PMU model's grouping.
        for e in 0..26 {
            assert_eq!(s.round_of(e), e % 7);
            assert!(s.rounds()[e % 7].contains(&e));
        }
        // Indices beyond the programmed events still map to a valid round.
        assert_eq!(s.round_of(30), 30 % 7);
        assert!(s.is_multiplexed());
        assert_eq!(s.inflation_factor(), (7.0f64).sqrt());
        // 22 events ride beyond the 4-counter budget, and √7 ≈ 2.65 crosses
        // the noise-inflation warning threshold.  (The telemetry counters
        // these feed are pinned by the workspace `telemetry_determinism`
        // suite, which owns the process-global sink.)
        assert_eq!(s.oversubscribed_events(), 22);
        assert!(s.inflation_factor() > NOISE_INFLATION_WARN_THRESHOLD);
    }

    #[test]
    fn fitting_schedule_is_not_oversubscribed() {
        let s = EventSchedule::plan(names(4), 4);
        assert_eq!(s.oversubscribed_events(), 0);
        assert!(s.inflation_factor() <= NOISE_INFLATION_WARN_THRESHOLD);
    }

    #[test]
    fn every_event_is_scheduled_exactly_once() {
        let s = EventSchedule::plan(names(19), 4);
        let mut seen = [0usize; 19];
        for round in s.rounds() {
            for &e in round {
                seen[e] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn for_space_uses_space_order() {
        let space = CounterSpace::new(&["a", "b", "c"]);
        let s = EventSchedule::for_space(&space, 8);
        assert_eq!(s.events(), &["a", "b", "c"]);
        assert_eq!(s.num_events(), 3);
        assert_eq!(s.physical_counters(), 8);
    }

    #[test]
    fn schedule_serde_round_trips() {
        let s = EventSchedule::plan(names(9), 4);
        let text = serde_json::to_string(&s).unwrap();
        let back: EventSchedule = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    #[should_panic(expected = "zero events")]
    fn empty_plan_panics() {
        let _ = EventSchedule::plan(Vec::new(), 4);
    }
}
