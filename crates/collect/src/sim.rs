//! The simulated-hardware backend: Haswell MMU ground truth through the
//! multiplexing PMU model.

use crate::backend::{CounterBackend, IntervalSamples, WorkloadRun};
use crate::error::CollectError;
use crate::schedule::EventSchedule;
use counterpoint_haswell::full_counter_space;
use counterpoint_haswell::mmu::{HaswellMmu, MmuConfig};
use counterpoint_haswell::pmu::{ground_truth_intervals, MultiplexingPmu, PmuConfig};
use counterpoint_mudd::CounterSpace;

/// A backend that "measures" the functional Haswell simulator.
///
/// Each [`run`](CounterBackend::run) starts from a cold MMU (fresh TLBs and
/// paging caches) so results depend only on the configuration, the workload and
/// the PMU seed — the property campaign fan-out relies on for reproducibility
/// across thread counts.
#[derive(Clone, Debug)]
pub struct SimBackend {
    mmu: MmuConfig,
    pmu: PmuConfig,
    space: CounterSpace,
}

impl SimBackend {
    /// A simulator backend over the full 26-counter Haswell space.
    pub fn new(mmu: MmuConfig, pmu: PmuConfig) -> SimBackend {
        SimBackend {
            mmu,
            pmu,
            space: full_counter_space(),
        }
    }

    /// Restricts the backend to a custom counter space (projections, ablation
    /// studies).
    pub fn with_space(mut self, space: CounterSpace) -> SimBackend {
        self.space = space;
        self
    }

    /// Overrides the PMU scheduling seed (campaigns use this for per-cell
    /// seeding).
    pub fn with_seed(mut self, seed: u64) -> SimBackend {
        self.pmu.seed = seed;
        self
    }

    /// The counter space this backend measures.
    pub fn space(&self) -> &CounterSpace {
        &self.space
    }

    /// The PMU model configuration in use.
    pub fn pmu_config(&self) -> &PmuConfig {
        &self.pmu
    }
}

impl CounterBackend for SimBackend {
    fn name(&self) -> &str {
        "sim"
    }

    fn schedule(&self) -> Result<EventSchedule, CollectError> {
        Ok(EventSchedule::for_space(
            &self.space,
            self.pmu.physical_counters,
        ))
    }

    fn run(
        &mut self,
        workload: &WorkloadRun<'_>,
        schedule: &EventSchedule,
    ) -> Result<IntervalSamples, CollectError> {
        let mut mmu = HaswellMmu::new(self.mmu.clone());
        let truth = ground_truth_intervals(
            &mut mmu,
            workload.accesses,
            workload.page_size,
            &self.space,
            workload.intervals,
        );
        let pmu = MultiplexingPmu::new(self.pmu.clone());
        let rows =
            pmu.sample_intervals_assigned(&truth, schedule.num_rounds(), |e| schedule.round_of(e));
        Ok(IntervalSamples::new(self.space.names().to_vec(), rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterpoint_haswell::mem::{MemoryAccess, PageSize};

    fn linear_accesses(n: u64) -> Vec<MemoryAccess> {
        (0..n).map(|i| MemoryAccess::load(i * 64)).collect()
    }

    #[test]
    fn sim_backend_matches_the_legacy_pmu_collect_path() {
        // The rewired pipeline must be bit-identical to the direct
        // `MultiplexingPmu::collect` call it replaced.
        let accesses = linear_accesses(20_000);
        let mut backend = SimBackend::new(MmuConfig::haswell(), PmuConfig::default());
        let schedule = backend.schedule().unwrap();
        let run = WorkloadRun {
            label: "linear",
            accesses: &accesses,
            page_size: PageSize::Size4K,
            intervals: 10,
        };
        let samples = backend.run(&run, &schedule).unwrap();

        let space = full_counter_space();
        let pmu = MultiplexingPmu::new(PmuConfig::default());
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        let legacy = pmu.collect(&mut mmu, &accesses, PageSize::Size4K, &space, 10);
        assert_eq!(samples.rows(), &legacy[..]);
        assert_eq!(samples.counters(), space.names());
    }

    #[test]
    fn runs_are_independent_and_deterministic() {
        let accesses = linear_accesses(10_000);
        let mut backend = SimBackend::new(MmuConfig::haswell(), PmuConfig::default());
        let schedule = backend.schedule().unwrap();
        let run = WorkloadRun {
            label: "linear",
            accesses: &accesses,
            page_size: PageSize::Size4K,
            intervals: 5,
        };
        let a = backend.run(&run, &schedule).unwrap();
        // A second run on the same backend starts cold again: same result.
        let b = backend.run(&run, &schedule).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_override_changes_multiplexed_samples() {
        let accesses = linear_accesses(30_000);
        let run = WorkloadRun {
            label: "linear",
            accesses: &accesses,
            page_size: PageSize::Size4K,
            intervals: 8,
        };
        let mut a = SimBackend::new(MmuConfig::haswell(), PmuConfig::default());
        let mut b = SimBackend::new(MmuConfig::haswell(), PmuConfig::default()).with_seed(1234);
        let schedule = a.schedule().unwrap();
        assert!(schedule.is_multiplexed());
        assert_ne!(
            a.run(&run, &schedule).unwrap(),
            b.run(&run, &schedule).unwrap()
        );
        assert_eq!(b.pmu_config().seed, 1234);
        assert_eq!(a.name(), "sim");
    }

    #[test]
    fn custom_space_projects_the_measurement() {
        let accesses = linear_accesses(5_000);
        let space = CounterSpace::new(&["load.ret", "load.causes_walk"]);
        let mut backend =
            SimBackend::new(MmuConfig::haswell(), PmuConfig::noiseless()).with_space(space);
        let schedule = backend.schedule().unwrap();
        assert_eq!(schedule.num_rounds(), 1);
        let run = WorkloadRun {
            label: "linear",
            accesses: &accesses,
            page_size: PageSize::Size4K,
            intervals: 4,
        };
        let samples = backend.run(&run, &schedule).unwrap();
        assert_eq!(samples.dimension(), 2);
        let total_ret: f64 = samples.rows().iter().map(|r| r[0]).sum();
        assert_eq!(total_ret, 5_000.0);
        assert_eq!(backend.space().len(), 2);
    }
}
