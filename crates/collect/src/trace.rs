//! Campaign traces: capture a measurement campaign once, replay it bit-exactly.
//!
//! A [`Trace`] is the JSON-serialisable record of everything a campaign
//! measured: per cell, the label, measurement geometry (page size, intervals,
//! schedule parameters) and the raw per-interval samples. Replaying a trace
//! through [`ReplayBackend`](crate::ReplayBackend) reproduces the original
//! observations bit-for-bit — floats are rendered with shortest round-tripping
//! formatting — which makes campaigns shareable artefacts: measure on one
//! machine (or one expensive simulation run), analyse anywhere.

use crate::error::CollectError;
use counterpoint_haswell::mem::PageSize;
use serde::{Deserialize, Serialize};
use std::path::Path;

use crate::backend::IntervalSamples;

/// The trace file format version this crate writes and accepts.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// One recorded campaign cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The cell's label (workload @ page size); the replay lookup key.
    pub label: String,
    /// Page size the workload ran under.
    pub page_size: PageSize,
    /// Number of measurement intervals *requested* for the run. The actual row
    /// count (`samples.num_intervals()`) can differ by one when the workload's
    /// access count is not divisible by this, so replay validation compares
    /// requested-vs-requested, never requested-vs-rows.
    pub intervals: usize,
    /// Number of logical events the schedule programmed.
    pub num_events: usize,
    /// Physical-counter budget the schedule was planned for.
    pub physical_counters: usize,
    /// The per-interval samples the backend reported.
    pub samples: IntervalSamples,
}

/// A recorded campaign: an ordered list of [`TraceRecord`]s plus a format
/// version.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Format version (see [`TRACE_FORMAT_VERSION`]).
    pub version: u32,
    /// The recorded cells, in campaign order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace at the current format version.
    pub fn new() -> Trace {
        Trace {
            version: TRACE_FORMAT_VERSION,
            records: Vec::new(),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Number of recorded cells.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Finds the record for a label (first match).
    pub fn get(&self, label: &str) -> Option<&TraceRecord> {
        self.records.iter().find(|r| r.label == label)
    }

    /// Renders the trace as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace samples are finite")
    }

    /// Parses a trace from JSON text, rejecting unknown format versions.
    pub fn from_json(text: &str) -> Result<Trace, CollectError> {
        let trace: Trace =
            serde_json::from_str(text).map_err(|e| CollectError::Format(e.to_string()))?;
        if trace.version != TRACE_FORMAT_VERSION {
            return Err(CollectError::Format(format!(
                "unknown trace format version {} (this build reads version {})",
                trace.version, TRACE_FORMAT_VERSION
            )));
        }
        Ok(trace)
    }

    /// Writes the trace as JSON to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CollectError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()).map_err(|e| CollectError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })
    }

    /// Reads a JSON trace from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Trace, CollectError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| CollectError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        Trace::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut trace = Trace::new();
        trace.push(TraceRecord {
            label: "linear@4k".to_string(),
            page_size: PageSize::Size4K,
            intervals: 3,
            num_events: 2,
            physical_counters: 4,
            samples: IntervalSamples::new(
                vec!["load.ret".to_string(), "load.causes_walk".to_string()],
                vec![vec![10.0, 1.5], vec![10.0, 0.25], vec![1.0 / 3.0, 0.0]],
            ),
        });
        trace
    }

    #[test]
    fn json_round_trip_is_exact() {
        let trace = sample_trace();
        let back = Trace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn lookup_by_label() {
        let trace = sample_trace();
        assert!(trace.get("linear@4k").is_some());
        assert!(trace.get("linear@2m").is_none());
        assert_eq!(trace.len(), 1);
        assert!(!trace.is_empty());
        assert!(Trace::new().is_empty());
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut trace = sample_trace();
        trace.version = 99;
        let err = Trace::from_json(&trace.to_json()).unwrap_err();
        assert!(matches!(err, CollectError::Format(_)));
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn malformed_json_is_a_format_error() {
        assert!(matches!(
            Trace::from_json("{\"version\": 1, \"records\": "),
            Err(CollectError::Format(_))
        ));
    }

    #[test]
    fn save_and_load() {
        let trace = sample_trace();
        let path = std::env::temp_dir().join("counterpoint_trace_test.json");
        trace.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, trace);
        // Missing files surface as I/O errors carrying the path.
        let missing = std::env::temp_dir().join("counterpoint_no_such_trace.json");
        assert!(matches!(
            Trace::load(&missing),
            Err(CollectError::Io { .. })
        ));
    }
}
