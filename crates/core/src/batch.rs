//! Batched feasibility testing: the warm-started engine behind CounterPoint's
//! hot loop.
//!
//! A refutation campaign asks the same structural question thousands of times:
//! for each model cone and each observation, does the observation's confidence
//! region intersect the cone?  [`FeasibilityChecker::is_feasible`] answers one
//! instance from scratch — it recomputes the `axis · generator` coefficient
//! matrix (a function of the cone and the counter-space axes only) and runs a
//! cold two-phase simplex.  [`BatchFeasibility`] amortises both across a
//! campaign:
//!
//! * the coefficient matrix is computed **once per (cone, axes) pair** and
//!   reused for every observation sharing those axes (all exact observations
//!   share the coordinate axes; repeated measurements of one workload share
//!   their region's principal axes), and
//! * the LP is kept alive as a warm [`Tableau`]: when only the bounds move the
//!   dual simplex restarts from the previous observation's basis
//!   ([`Tableau::resolve`]; [`Tableau::resolve_with_basis`] also lets a caller
//!   seed a fresh tableau with a recorded basis), and a handful of pivots
//!   replace a full two-phase solve, and
//! * verdicts of past solves are recycled: Farkas separating directions and
//!   scaled cone-point witness rays settle many observations in `O(d²)`
//!   without touching the LP at all.
//!
//! Verdicts are identical to the per-observation checker (the two paths share
//! the row-construction arithmetic bit for bit, and the warm path falls back to
//! the cold solver if the dual simplex fails to converge); only the work to
//! reach them changes.  [`check_models`] fans a model family × observation
//! matrix across `std::thread` workers with the same deterministic pattern the
//! `counterpoint-collect` campaign runner uses: results land in model order no
//! matter how many workers run or which finishes first.

use crate::cone::ModelCone;
use crate::feasibility::{observation_scale, row_bounds, ConeMatrix, FeasibilityChecker};
use crate::observation::Observation;
use counterpoint_lp::{FactorTableau, LinearProgram, Relation, Tableau};
use counterpoint_numeric::Rational;
use counterpoint_stats::ConfidenceRegion;
use counterpoint_telemetry as telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The evidence-carrying outcome of testing one observation against one model
/// cone: the refute-or-accept decision plus the artifact that proves it.
///
/// [`BatchFeasibility::is_feasible`] answers the same question as a bare
/// `bool`; [`BatchFeasibility::verdict`] returns this type instead, surfacing
/// the Farkas certificates and witness points the engine already computes
/// internally.  The `counterpoint-session` crate builds its `Verdict` matrix
/// from these.
#[derive(Clone, Debug, PartialEq)]
pub enum FeasibilityVerdict {
    /// The confidence region intersects the model cone.
    Feasible {
        /// A counter-space cone point inside the observation's confidence
        /// region (up to the LP's feasibility tolerance): the non-negative
        /// μpath-flow combination `Σ fⱼ·gⱼ` the solver found.
        witness: Vec<f64>,
    },
    /// The confidence region does not intersect the model cone.
    Refuted {
        /// A counter-space separating direction `c` (unit ∞-norm) with
        /// `c · g ≥ 0` for every cone generator — re-verified against the
        /// generators before being returned — while the whole confidence
        /// region lies on the negative side: a Farkas certificate of the
        /// refutation, checkable without re-running the LP.  Empty only if
        /// certificate extraction failed numerically (the verdict itself is
        /// still sound).
        certificate: Vec<f64>,
    },
    /// No verdict could be reached: the dual simplex, the cold restart and the
    /// two-phase fallback all failed to converge.  The bool-returning
    /// [`BatchFeasibility::is_feasible`] resolves this as not-refuted (no
    /// certificate exists); the verdict path reports it explicitly so a
    /// session can record the gap and move on.  Each occurrence increments
    /// the `lp_inconclusive_verdicts` telemetry counter.
    Inconclusive {
        /// Why the decision could not be made.
        reason: String,
    },
}

impl FeasibilityVerdict {
    /// `true` for [`FeasibilityVerdict::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, FeasibilityVerdict::Feasible { .. })
    }

    /// `true` for [`FeasibilityVerdict::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, FeasibilityVerdict::Refuted { .. })
    }

    /// The Farkas certificate of a refuted verdict, if any was extracted.
    pub fn certificate(&self) -> Option<&[f64]> {
        match self {
            FeasibilityVerdict::Refuted { certificate } if !certificate.is_empty() => {
                Some(certificate)
            }
            _ => None,
        }
    }

    /// The witness cone point of a feasible verdict, if any was extracted.
    pub fn witness(&self) -> Option<&[f64]> {
        match self {
            FeasibilityVerdict::Feasible { witness } if !witness.is_empty() => Some(witness),
            _ => None,
        }
    }
}

/// Upper bound on cached Farkas certificates per engine (MRU order).
const MAX_CERTIFICATES: usize = 8;

/// Upper bound on cached feasibility witness rays per engine (MRU order).
const MAX_WITNESS_RAYS: usize = 8;

/// An infeasible observation must sit at least this many multiples of the
/// observation scale outside the cone (along a cached certificate direction)
/// for the certificate to short-circuit the LP.  The margin is ~10× the LP's
/// own feasibility slop, so a certificate hit is always a verdict the LP would
/// have reached too.  The lattice-search engine applies the same margin when
/// it prunes models with certificates cached from other models.
pub(crate) const CERTIFICATE_MARGIN: f64 = 1e-6;

/// The observation-independent state cached for the most recent confidence
///-region axes: the equilibrated coefficient matrix and the warm solvers.
///
/// `tableau` is the exact tier-2 engine — the historical dense-`B⁻¹` dual
/// simplex every piece of returned evidence flows through, byte-identical to
/// the pre-two-tier engine.  `fast` is the tier-1 factorized solver the
/// no-evidence decision path runs on; it is built lazily on the first
/// decision solve so pure evidence engines never pay for it.
#[derive(Clone, Debug)]
struct AxesCache {
    axes: Vec<Vec<f64>>,
    /// Whether `axes` is the identity basis — lets the per-observation cache
    /// check skip the `O(d²)` axes comparison for exact observations, which
    /// all share the standard axes.
    standard: bool,
    matrix: ConeMatrix,
    tableau: Tableau,
    fast: Option<FactorTableau>,
}

/// Warm-started feasibility testing of many observations against one model
/// cone.
///
/// Construction mirrors [`FeasibilityChecker::new`]; the difference is that
/// [`is_feasible`](BatchFeasibility::is_feasible) takes `&mut self` so the
/// engine can keep the factorised LP state alive between calls.  Use it
/// whenever more than a handful of observations are tested against the same
/// cone — [`FeasibilityChecker::count_infeasible`] and
/// [`evaluate_models`](crate::explore::evaluate_models) already route through
/// it.
///
/// # Example
///
/// ```
/// use counterpoint_core::{BatchFeasibility, ModelCone, Observation};
/// use counterpoint_mudd::{CounterSignature, CounterSpace};
///
/// let space = CounterSpace::new(&["x", "y"]);
/// let cone = ModelCone::from_signatures(
///     "demo",
///     &space,
///     vec![
///         CounterSignature::from_counts(vec![1, 0]),
///         CounterSignature::from_counts(vec![1, 1]),
///     ],
///     2,
/// );
/// let mut batch = BatchFeasibility::new(&cone);
/// let observations = vec![
///     Observation::exact("inside", &[10.0, 4.0]),
///     Observation::exact("outside", &[4.0, 10.0]),
/// ];
/// assert_eq!(batch.check_all(&observations), vec![true, false]);
/// assert_eq!(batch.count_infeasible(&observations), 1);
/// ```
#[derive(Clone, Debug)]
pub struct BatchFeasibility<'a> {
    checker: FeasibilityChecker<'a>,
    /// Non-zero generator entries in index order — μpath signatures are
    /// sparse, so the per-observation coefficient matmul iterates only these.
    /// Borrowed from the cone's memoized conversion.
    sparse: &'a [Vec<(usize, f64)>],
    cache: Option<AxesCache>,
    /// Counter-space separating directions harvested from past infeasible
    /// solves (unit ∞-norm, `c · g ≥ 0` for every generator), most recently
    /// useful first.  An observation whose region lies strictly on the
    /// negative side of any of them is infeasible without touching the LP.
    certificates: Vec<Vec<f64>>,
    /// Cone points harvested from past feasible solves, as unit ∞-norm ray
    /// directions, most recently useful first.  The cone is closed under
    /// positive scaling, so if a scaled ray pierces the new observation's
    /// bounding box the observation is feasible without touching the LP.
    witness_rays: Vec<Vec<f64>>,
    /// The support of each cached witness ray (indices of the generators its
    /// flow combination used), kept in lockstep with `witness_rays`.  A ray is
    /// provably inside any *other* cone that contains every support
    /// generator, which is how the lattice search reuses rays across models.
    witness_supports: Vec<Vec<usize>>,
    /// Scratch bounds, reused across observations.
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// A basis handed down from a parent engine (see
    /// [`set_warm_basis`](BatchFeasibility::set_warm_basis)): applied to the
    /// first tableau built for exactly these axes, then discarded.
    warm_basis: Option<(Vec<Vec<f64>>, Vec<usize>)>,
    /// The armed half of `warm_basis`: consumed by the next resolve.
    pending_basis: Option<Vec<usize>>,
}

impl<'a> BatchFeasibility<'a> {
    /// Prepares a batched engine for the given model cone.
    pub fn new(cone: &'a ModelCone) -> BatchFeasibility<'a> {
        let checker = FeasibilityChecker::new(cone);
        let sparse = cone.generators_f64().sparse.as_slice();
        BatchFeasibility {
            checker,
            sparse,
            cache: None,
            certificates: Vec::new(),
            witness_rays: Vec::new(),
            witness_supports: Vec::new(),
            lo: Vec::new(),
            hi: Vec::new(),
            warm_basis: None,
            pending_basis: None,
        }
    }

    /// The model cone under test.
    pub fn cone(&self) -> &ModelCone {
        self.checker.cone()
    }

    /// The cone generators as dense `f64` vectors, in LP column order — the
    /// ordering [`basis_handoff`](BatchFeasibility::basis_handoff) bases refer
    /// to.
    pub(crate) fn generator_vectors(&self) -> &[Vec<f64>] {
        self.checker.generators()
    }

    /// Verifies that a Farkas separating direction — typically harvested from
    /// *another* model's refutation — also applies to this cone: every
    /// generator must lie on the non-negative side of the direction (within
    /// the engine's strict tolerance).  This is the `O(d · nnz)`
    /// cone-containment check the lattice search runs before reusing a
    /// certificate to prune a submodel without touching the LP: if it holds,
    /// any observation the direction separates is infeasible for this model
    /// too.
    pub fn certificate_applies(&self, direction: &[f64]) -> bool {
        direction.len() == self.checker.cone().dimension()
            && certificate_is_sound(self.sparse, direction)
    }

    /// The current warm tableau state — the cached confidence-region axes and
    /// the dual-simplex basis the last solve ended in — for handing to a
    /// structurally related engine via
    /// [`set_warm_basis`](BatchFeasibility::set_warm_basis).  `None` before
    /// the first LP touch.  Basis entries index this engine's columns:
    /// structural flows first (one per generator, in
    /// generator order), then the band slacks.
    pub fn basis_handoff(&self) -> Option<(Vec<Vec<f64>>, Vec<usize>)> {
        self.cache.as_ref().map(|cache| {
            // Decision engines solve on the tier-1 factorization; its basis
            // uses the same column numbering, so the handoff survives the
            // representation change.  Evidence engines never build `fast` and
            // keep handing off the exact tableau's basis.
            let basis = match cache.fast.as_ref() {
                Some(fast) => fast.basis().to_vec(),
                None => cache.tableau.basis().to_vec(),
            };
            (cache.axes.clone(), basis)
        })
    }

    /// Seeds the first tableau built for exactly `axes` with `basis` — e.g. a
    /// parent model's final basis from
    /// [`basis_handoff`](BatchFeasibility::basis_handoff), with structural
    /// columns re-indexed into this engine's generator order (unmappable
    /// columns may be marked `usize::MAX`; they are skipped during
    /// installation and the affected rows keep their slack).  Only the pivot
    /// count changes: the dual simplex restores feasibility from whatever
    /// basis is installed, and the engine still falls back to a cold solve on
    /// non-convergence.
    ///
    /// # Panics
    ///
    /// Panics if `basis` does not have `2 · axes.len()` entries.
    pub fn set_warm_basis(&mut self, axes: Vec<Vec<f64>>, basis: Vec<usize>) {
        assert_eq!(
            basis.len(),
            2 * axes.len(),
            "a band system over {} axes has {} rows",
            axes.len(),
            2 * axes.len()
        );
        self.warm_basis = Some((axes, basis));
        self.pending_basis = None;
    }

    /// Returns `true` if the observation's confidence region intersects the
    /// model cone.  Agrees with [`FeasibilityChecker::is_feasible`] on every
    /// input; reuses the cached coefficient matrix and warm LP basis where the
    /// per-observation checker starts from scratch.
    ///
    /// # Panics
    ///
    /// Panics if the observation's dimension differs from the cone's.
    ///
    /// LP non-convergence on every solve path (pathological cycling) does
    /// *not* panic: a refutation needs a Farkas certificate and none exists,
    /// so the observation deterministically counts as not refuted (`true`),
    /// mirrored by [`FeasibilityChecker::is_feasible`].  Callers that need to
    /// distinguish this case use [`verdict`](BatchFeasibility::verdict) or
    /// [`decide_lenient`](BatchFeasibility::decide_lenient), which surface it
    /// as [`FeasibilityVerdict::Inconclusive`].
    pub fn is_feasible(&mut self, observation: &Observation) -> bool {
        match self.decide(observation, false) {
            FeasibilityVerdict::Feasible { .. } => true,
            FeasibilityVerdict::Refuted { .. } => false,
            FeasibilityVerdict::Inconclusive { .. } => true,
        }
    }

    /// The cheapest verdict-level decision: the same no-evidence work as
    /// [`is_feasible`](BatchFeasibility::is_feasible) (no witness or
    /// certificate reconstruction, no allocation on the hot path), but LP
    /// non-convergence surfaces as [`FeasibilityVerdict::Inconclusive`]
    /// instead of being folded into the bool.  The lattice-search sweeps run
    /// on this and drain the engine's internally harvested certificates once
    /// per model.
    pub fn decide_lenient(&mut self, observation: &Observation) -> FeasibilityVerdict {
        self.decide(observation, false)
    }

    /// Like [`is_feasible`](BatchFeasibility::is_feasible), but returns the
    /// evidence-carrying [`FeasibilityVerdict`]: the witness cone point of a
    /// feasible test, or the Farkas separating direction of a refutation.
    /// The decision agrees with `is_feasible` on every input (the two share
    /// one code path); only the extracted evidence differs.
    ///
    /// # Panics
    ///
    /// Panics if the observation's dimension differs from the cone's.
    pub fn verdict(&mut self, observation: &Observation) -> FeasibilityVerdict {
        self.decide(observation, true)
    }

    /// The shared decision procedure behind [`is_feasible`] and [`verdict`]:
    /// with `want_evidence = false` the returned verdict carries empty
    /// evidence vectors (no allocation) and the hot path does exactly the
    /// historical work; with `true` it additionally reconstructs the witness
    /// point or folds the Farkas multipliers into a counter-space certificate.
    ///
    /// [`is_feasible`]: BatchFeasibility::is_feasible
    /// [`verdict`]: BatchFeasibility::verdict
    fn decide(&mut self, observation: &Observation, want_evidence: bool) -> FeasibilityVerdict {
        let cone = self.checker.cone();
        assert_eq!(
            observation.dimension(),
            cone.dimension(),
            "observation and model must share a counter space"
        );
        let dim = cone.dimension();
        let region = observation.region();

        // Degenerate cone: only the origin is producible.
        if self.checker.generators().is_empty() {
            return if region.contains(&vec![0.0; dim]) {
                let witness = if want_evidence {
                    vec![0.0; dim]
                } else {
                    Vec::new()
                };
                FeasibilityVerdict::Feasible { witness }
            } else {
                let certificate = if want_evidence {
                    origin_separator(region)
                } else {
                    Vec::new()
                };
                FeasibilityVerdict::Refuted { certificate }
            };
        }

        let scale = observation_scale(region);

        // Certificate short-circuit: if the whole confidence region sits
        // strictly on the negative side of a cached separating direction, no
        // non-negative flow can reach it — infeasible without building the LP.
        let margin = CERTIFICATE_MARGIN * scale;
        if let Some(hit) = self
            .certificates
            .iter()
            .position(|c| region.interval_along(c).1 < -margin)
        {
            telemetry::add(telemetry::Metric::CertificatePrunes, 1);
            // Most recently useful certificate first.
            self.certificates[..=hit].rotate_right(1);
            let certificate = if want_evidence {
                self.certificates[0].clone()
            } else {
                Vec::new()
            };
            return FeasibilityVerdict::Refuted { certificate };
        }

        // Witness short-circuit: the cone is closed under positive scaling, so
        // if some `t ≥ 0` puts `t · ray` inside the region's bounding box for
        // a previously harvested cone ray, the observation is feasible.
        if let Some(hit) = self
            .witness_rays
            .iter()
            .position(|ray| ray_pierces_box(ray, region, margin))
        {
            telemetry::add(telemetry::Metric::WitnessRaySettlements, 1);
            self.witness_rays[..=hit].rotate_right(1);
            self.witness_supports[..=hit].rotate_right(1);
            let witness = if want_evidence {
                witness_on_ray(&self.witness_rays[0], region, margin).unwrap_or_default()
            } else {
                Vec::new()
            };
            return FeasibilityVerdict::Feasible { witness };
        }

        let num_flows = self.checker.generators().len();
        let axes_match = self.cache.as_ref().is_some_and(|cache| {
            (cache.standard && region.standard_axes()) || cache.axes.as_slice() == region.axes()
        });
        telemetry::add(
            if axes_match {
                telemetry::Metric::CoefficientCacheHits
            } else {
                telemetry::Metric::CoefficientCacheMisses
            },
            1,
        );
        if !axes_match {
            match self.cache.as_mut() {
                // Same shape: rebuild the coefficient matrix and refill the
                // tableau in place — no allocation on the steady-state path.
                //
                // The previous basis is deliberately *not* carried across an
                // axes change (via `resolve_with_basis`): installing each
                // structural column into the fresh factorisation costs one
                // pivot, which measures as a net loss against simply running
                // the handful of dual pivots from the all-slack basis — and
                // cold-starting keeps this path's arithmetic bit-identical to
                // `FeasibilityChecker::is_feasible`.  Warm starts pay off on
                // the bounds-only path below, where the factorisation itself
                // survives.
                Some(cache) if cache.tableau.num_bands() == region.axes().len() => {
                    cache.matrix.build_sparse_into(region.axes(), self.sparse);
                    cache.tableau.rebind(&cache.matrix.rows);
                    if let Some(fast) = cache.fast.as_mut() {
                        fast.rebind(&cache.matrix.rows);
                    }
                    clone_axes_into(&mut cache.axes, region.axes());
                    cache.standard = region.standard_axes();
                }
                _ => {
                    let mut matrix = ConeMatrix::empty();
                    matrix.build_sparse_into(region.axes(), self.sparse);
                    let tableau = Tableau::band(num_flows, &matrix.rows);
                    self.cache = Some(AxesCache {
                        axes: region.axes().to_vec(),
                        standard: region.standard_axes(),
                        matrix,
                        tableau,
                        fast: None,
                    });
                }
            }
            // A handed-down parent basis applies once, to the first tableau
            // whose axes match it exactly (the fresh tableau starts all-slack
            // either way, so arming it here is sound on both branches above).
            if self
                .warm_basis
                .as_ref()
                .is_some_and(|(axes, _)| axes.as_slice() == region.axes())
            {
                let (_, basis) = self.warm_basis.take().expect("warm basis just matched");
                self.pending_basis = Some(basis);
            }
        }

        let cache = self.cache.as_mut().expect("cache was just populated");
        let bands = cache.matrix.rows.len();
        self.lo.clear();
        self.hi.clear();
        for k in 0..bands {
            let (lo, hi) = row_bounds(region, &cache.matrix, k, scale);
            self.lo.push(lo);
            self.hi.push(hi);
        }

        // On matching axes the factorisation is still valid and only the
        // bounds moved: `resolve` warm-starts the dual simplex from the basis
        // the previous observation ended in.  After an axes change the rebind
        // above reset to the all-slack basis and this is a cold start — unless
        // a parent engine handed its final basis down for these axes, in which
        // case that basis is replayed first.

        if !want_evidence {
            // Tier 1: the factorized f64 solver decides, and only verdicts
            // whose terminal margin is comfortably wide are trusted.  Thin
            // margins escalate to a cold tier-2 solve whose arithmetic is
            // bit-identical to `FeasibilityChecker::is_feasible`, so the
            // agreement contract holds exactly where fast arithmetic is
            // shakiest.  Evidence solves never come through here — the warm
            // tier-2 tableau below stays the engine of record for Report
            // bytes.
            if cache.fast.is_none() {
                cache.fast = Some(FactorTableau::band(num_flows, &cache.matrix.rows));
            }
            let fast = cache.fast.as_mut().expect("tier-1 solver just built");
            let outcome = match self.pending_basis.take() {
                Some(basis) => fast.resolve_with_basis(&self.lo, &self.hi, &basis),
                None => fast.resolve(&self.lo, &self.hi),
            };
            let verdict = match outcome {
                Ok(out) if out.confident => {
                    if out.feasible {
                        self.harvest_feasible_fast();
                        FeasibilityVerdict::Feasible {
                            witness: Vec::new(),
                        }
                    } else {
                        self.harvest_refuted_fast(region);
                        FeasibilityVerdict::Refuted {
                            certificate: Vec::new(),
                        }
                    }
                }
                Ok(_) => {
                    telemetry::add(telemetry::Metric::LpTier2Escalations, 1);
                    self.escalate_exact(observation, region)
                }
                Err(_) => self.cold_fallback(observation, region, scale, false),
            };
            return verdict;
        }

        let outcome = match self.pending_basis.take() {
            Some(basis) => cache.tableau.resolve_with_basis(&self.lo, &self.hi, &basis),
            None => cache.tableau.resolve(&self.lo, &self.hi),
        };

        match outcome {
            Ok(true) => {
                let witness = self.conclude_feasible(scale, want_evidence);
                FeasibilityVerdict::Feasible { witness }
            }
            Ok(false) => {
                let certificate = self.conclude_refuted(region, want_evidence);
                FeasibilityVerdict::Refuted { certificate }
            }
            Err(_) => self.cold_fallback(observation, region, scale, want_evidence),
        }
    }

    /// The historical non-convergence escape hatch, shared by both tiers: the
    /// warm path cycled out of its iteration budget, so drop the poisoned
    /// state and answer exactly like the per-observation checker does — a
    /// cold dual-simplex solve, with the two-phase primal as the last resort
    /// — so the agreement contract holds even on this path.
    fn cold_fallback(
        &mut self,
        observation: &Observation,
        region: &ConfidenceRegion,
        scale: f64,
        want_evidence: bool,
    ) -> FeasibilityVerdict {
        let dim = self.checker.cone().dimension();
        let num_flows = self.checker.generators().len();
        telemetry::add(telemetry::Metric::ColdSolverFallbacks, 1);
        let _span = telemetry::span("lp_cold_solve", observation.name());
        self.cache = None;
        let matrix = ConeMatrix::build(region.axes(), self.checker.generators());
        let mut lo = Vec::with_capacity(matrix.rows.len());
        let mut hi = Vec::with_capacity(matrix.rows.len());
        for k in 0..matrix.rows.len() {
            let (l, h) = row_bounds(region, &matrix, k, scale);
            lo.push(l);
            hi.push(h);
        }
        let mut cold = Tableau::band(num_flows, &matrix.rows);
        match cold.resolve(&lo, &hi) {
            Ok(true) => {
                let witness = if want_evidence {
                    scaled_flow_combination(self.sparse, cold.basic_flows(), scale, dim)
                } else {
                    Vec::new()
                };
                FeasibilityVerdict::Feasible { witness }
            }
            Ok(false) => {
                let certificate = if want_evidence {
                    fold_certificate(region, &matrix, &cold, dim)
                        .filter(|c| certificate_is_sound(self.sparse, c))
                        .unwrap_or_default()
                } else {
                    Vec::new()
                };
                FeasibilityVerdict::Refuted { certificate }
            }
            Err(_) => {
                let mut lp = LinearProgram::new(num_flows);
                for (k, row) in matrix.rows.iter().enumerate() {
                    lp.add_constraint(row, Relation::Ge, lo[k]);
                    lp.add_constraint(row, Relation::Le, hi[k]);
                }
                if !want_evidence {
                    // The historical last resort (the decision is the
                    // two-phase primal's); non-convergence is reported
                    // as an inconclusive verdict, never a panic.
                    return match lp.try_solve() {
                        Ok(outcome) => {
                            if outcome.is_feasible() {
                                FeasibilityVerdict::Feasible {
                                    witness: Vec::new(),
                                }
                            } else {
                                FeasibilityVerdict::Refuted {
                                    certificate: Vec::new(),
                                }
                            }
                        }
                        Err(e) => {
                            telemetry::add(telemetry::Metric::LpInconclusiveVerdicts, 1);
                            FeasibilityVerdict::Inconclusive {
                                reason: format!("every LP solve path failed to converge: {e}"),
                            }
                        }
                    };
                }
                match lp.try_solve() {
                    Ok(outcome) => match outcome.solution() {
                        Some(flows) => {
                            let witness = scaled_flow_combination(
                                self.sparse,
                                flows.iter().copied().enumerate(),
                                scale,
                                dim,
                            );
                            FeasibilityVerdict::Feasible { witness }
                        }
                        // Two-phase infeasibility yields no usable
                        // multipliers through this interface.
                        None => FeasibilityVerdict::Refuted {
                            certificate: Vec::new(),
                        },
                    },
                    Err(e) => {
                        telemetry::add(telemetry::Metric::LpInconclusiveVerdicts, 1);
                        FeasibilityVerdict::Inconclusive {
                            reason: format!("every LP solve path failed to converge: {e}"),
                        }
                    }
                }
            }
        }
    }
    /// Wraps up a feasible warm solve: reconstructs the counter-space cone
    /// point of the solution the tableau just found (`y* = Σ f_j · g_j` over
    /// the basic flows) and caches its unit-norm ray for future feasible
    /// short-circuits.  The flow values are only positively scaled relative to
    /// the raw problem, so the cached ray's direction — all that matters — is
    /// unchanged; the returned witness carries the real magnitudes.
    fn conclude_feasible(&mut self, scale: f64, want_evidence: bool) -> Vec<f64> {
        let cache_open = self.witness_rays.len() < MAX_WITNESS_RAYS;
        if !want_evidence && !cache_open {
            return Vec::new();
        }
        let Some(cache) = self.cache.as_ref() else {
            return Vec::new();
        };
        let dim = self.checker.cone().dimension();
        // Accumulate the *unscaled* flow combination first: the cached ray is
        // normalised from it (bit-identical to the historical harvest), and
        // the returned witness re-applies the observation scale afterwards.
        let raw = flow_combination(self.sparse, cache.tableau.basic_flows(), dim);
        let norm = raw.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        if cache_open && norm.is_finite() && norm > 0.0 {
            self.witness_rays
                .push(raw.iter().map(|v| v / norm).collect());
            // The ray's support: the generators its flow combination used
            // (the same `f > 1e-9` filter `flow_combination` applies).
            self.witness_supports.push(
                cache
                    .tableau
                    .basic_flows()
                    .filter(|&(_, f)| f > 1e-9)
                    .map(|(j, _)| j)
                    .collect(),
            );
        }
        if want_evidence {
            raw.iter().map(|v| v * scale).collect()
        } else {
            Vec::new()
        }
    }

    /// Wraps up an infeasible warm solve: folds the tableau's Farkas
    /// multipliers into a counter-space separating direction, caches it for
    /// future short-circuits and (on the verdict path) returns it.
    ///
    /// The stuck dual row gives `π ≥ 0` with `π · [A|S] ≥ 0` and `π · b < 0`.
    /// Folding the per-band multiplier difference back through the axes yields
    /// `c = Σ_k (π_{2k+1} − π_{2k}) / bound_div_k · axis_k` with `c · g ≥ 0`
    /// for every generator `g` — a property of the cone alone, so the
    /// certificate stays valid for every future observation.  The direction is
    /// re-verified against the generators before caching or returning (the
    /// multipliers are only non-negative up to the solver tolerance).
    fn conclude_refuted(&mut self, region: &ConfidenceRegion, want_evidence: bool) -> Vec<f64> {
        let cache_open = self.certificates.len() < MAX_CERTIFICATES;
        if !want_evidence && !cache_open {
            return Vec::new();
        }
        let Some(cache) = self.cache.as_ref() else {
            return Vec::new();
        };
        let dim = self.checker.cone().dimension();
        let Some(direction) = fold_certificate(region, &cache.matrix, &cache.tableau, dim) else {
            return Vec::new();
        };
        if !certificate_is_sound(self.sparse, &direction) {
            return Vec::new();
        }
        if cache_open {
            self.certificates.push(direction.clone());
        }
        if want_evidence {
            direction
        } else {
            Vec::new()
        }
    }

    /// Escalates a near-degenerate tier-1 verdict: re-answers the observation
    /// with a cold tier-2 solve on the cached coefficient matrix and bounds —
    /// the exact arithmetic `FeasibilityChecker::is_feasible` runs, bit for
    /// bit — and harvests the exact solve's evidence into the short-circuit
    /// pools so the escalation still pays forward.
    fn escalate_exact(
        &mut self,
        observation: &Observation,
        region: &ConfidenceRegion,
    ) -> FeasibilityVerdict {
        let dim = self.checker.cone().dimension();
        let num_flows = self.checker.generators().len();
        let cache = self
            .cache
            .as_ref()
            .expect("escalation follows a tier-1 solve");
        let mut cold = Tableau::band(num_flows, &cache.matrix.rows);
        match cold.resolve(&self.lo, &self.hi) {
            Ok(true) => {
                let cache_open = self.witness_rays.len() < MAX_WITNESS_RAYS;
                if cache_open {
                    let raw = flow_combination(self.sparse, cold.basic_flows(), dim);
                    let norm = raw.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
                    if norm.is_finite() && norm > 0.0 {
                        self.witness_rays
                            .push(raw.iter().map(|v| v / norm).collect());
                        self.witness_supports.push(
                            cold.basic_flows()
                                .filter(|&(_, f)| f > 1e-9)
                                .map(|(j, _)| j)
                                .collect(),
                        );
                    }
                }
                FeasibilityVerdict::Feasible {
                    witness: Vec::new(),
                }
            }
            Ok(false) => {
                let cache = self.cache.as_ref().expect("cache is still warm");
                if self.certificates.len() < MAX_CERTIFICATES {
                    if let Some(direction) = fold_certificate(region, &cache.matrix, &cold, dim) {
                        if certificate_is_sound(self.sparse, &direction) {
                            self.certificates.push(direction);
                        }
                    }
                }
                FeasibilityVerdict::Refuted {
                    certificate: Vec::new(),
                }
            }
            Err(_) => {
                // Even the cold dual simplex cycled: fall through to the
                // historical fallback chain (which re-runs it once more after
                // dropping the warm state, then tries the two-phase primal).
                let scale = observation_scale(region);
                self.cold_fallback(observation, region, scale, false)
            }
        }
    }

    /// Wraps up a confidently feasible tier-1 solve: harvests the factorized
    /// tableau's flow combination into the witness-ray pool (the same
    /// `f > 1e-9` support filter as the exact harvest).  When the smallest
    /// included flow sits near that inclusion threshold, the combination is
    /// recomputed in exact rational arithmetic before the ray is trusted —
    /// the margin-triggered recertification of the witness machinery.  On
    /// overflow or disagreement the ray is simply not cached; the verdict is
    /// unaffected.
    fn harvest_feasible_fast(&mut self) {
        if self.witness_rays.len() >= MAX_WITNESS_RAYS {
            return;
        }
        let Some(fast) = self.cache.as_ref().and_then(|c| c.fast.as_ref()) else {
            return;
        };
        let dim = self.checker.cone().dimension();
        let raw = flow_combination(self.sparse, fast.basic_flows(), dim);
        let norm = raw.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        if !norm.is_finite() || norm <= 0.0 {
            return;
        }
        let min_flow = fast
            .basic_flows()
            .filter(|&(_, f)| f > 1e-9)
            .fold(f64::INFINITY, |acc, (_, f)| acc.min(f));
        if min_flow < FLOW_RECERT_MARGIN {
            telemetry::add(telemetry::Metric::LpExactRecertifications, 1);
            let flows: Vec<(usize, f64)> = fast.basic_flows().filter(|&(_, f)| f > 1e-9).collect();
            if !combination_recertifies(self.sparse, &flows, &raw) {
                return;
            }
        }
        let support: Vec<usize> = fast
            .basic_flows()
            .filter(|&(_, f)| f > 1e-9)
            .map(|(j, _)| j)
            .collect();
        self.witness_rays
            .push(raw.iter().map(|v| v / norm).collect());
        self.witness_supports.push(support);
    }

    /// Wraps up a confidently infeasible tier-1 solve: folds the factorized
    /// tableau's Farkas multipliers into a counter-space separating direction
    /// and caches it for future short-circuits.  The soundness re-check runs
    /// the historical float criterion, escalating any generator whose margin
    /// is near the threshold to exact rational arithmetic (the
    /// margin-triggered recertification of the certificate machinery); exact
    /// overflow degrades to not caching the direction.
    fn harvest_refuted_fast(&mut self, region: &ConfidenceRegion) {
        if self.certificates.len() >= MAX_CERTIFICATES {
            return;
        }
        let Some(cache) = self.cache.as_ref() else {
            return;
        };
        let Some(fast) = cache.fast.as_ref() else {
            return;
        };
        let dim = self.checker.cone().dimension();
        let Some(pi) = fast.farkas_multipliers() else {
            return;
        };
        let Some(direction) = fold_certificate_from(region, &cache.matrix, pi, dim) else {
            return;
        };
        if certificate_is_sound_recertified(self.sparse, &direction) {
            self.certificates.push(direction);
        }
    }

    /// The Farkas separating directions harvested from past refutations, most
    /// recently useful first.  Each direction `c` satisfies `c · g ≥ 0` for
    /// every cone generator while some previously tested confidence region lay
    /// strictly on its negative side — the refutation evidence the paper
    /// reports, exposed for session reports and certificate checking.
    pub fn farkas_certificates(&self) -> &[Vec<f64>] {
        &self.certificates
    }

    /// The unit-∞-norm cone rays harvested from past feasible solves, most
    /// recently useful first.  Scaling any of them positively yields a cone
    /// point; the engine uses them to settle feasible observations without
    /// touching the LP.
    pub fn witness_rays(&self) -> &[Vec<f64>] {
        &self.witness_rays
    }

    /// [`witness_rays`](BatchFeasibility::witness_rays) together with each
    /// ray's support — the indices (into
    /// [`generator_vectors`](BatchFeasibility::generator_vectors) order) of
    /// the generators its flow combination used.  A ray is a point of any
    /// cone containing all of its support generators, which lets the lattice
    /// search reuse rays across models after an exact set-membership check.
    pub(crate) fn witness_rays_with_supports(
        &self,
    ) -> impl Iterator<Item = (&Vec<f64>, &Vec<usize>)> {
        self.witness_rays.iter().zip(&self.witness_supports)
    }

    /// The positive-flow combination the warm tableau currently holds, as a
    /// unit ∞-norm ray plus its support, regardless of how the last decision
    /// was reached.  Only flows strictly above the solver tolerance
    /// contribute, so the combination is a cone point even when the tableau
    /// sits in an intermediate or infeasible state — any non-negative
    /// combination of generators is.  `None` before the first solve or when
    /// every flow is (near) zero.
    pub(crate) fn current_ray_with_support(&self) -> Option<(Vec<f64>, Vec<usize>)> {
        let cache = self.cache.as_ref()?;
        let dim = self.checker.cone().dimension();
        // Read whichever solver actually ran last: the tier-1 factorization
        // on decision engines, the exact tableau everywhere else.  One pass
        // over the basic flows accumulates the combination and collects the
        // support together (the `f > 1e-9` inclusion criterion is shared).
        let mut raw = vec![0.0; dim];
        let mut support = Vec::new();
        let flows: Box<dyn Iterator<Item = (usize, f64)>> = match cache.fast.as_ref() {
            Some(fast) => Box::new(fast.basic_flows()),
            None => Box::new(cache.tableau.basic_flows()),
        };
        for (j, f) in flows {
            if f > 1e-9 {
                for &(i, c) in &self.sparse[j] {
                    raw[i] += f * c;
                }
                support.push(j);
            }
        }
        let norm = raw.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        if !norm.is_finite() || norm <= 0.0 {
            return None;
        }
        for v in &mut raw {
            *v /= norm;
        }
        Some((raw, support))
    }

    /// Tests every observation, returning one verdict per observation in input
    /// order.
    pub fn check_all(&mut self, observations: &[Observation]) -> Vec<bool> {
        observations.iter().map(|o| self.is_feasible(o)).collect()
    }

    /// Counts how many of the observations are infeasible for this model (the
    /// quantity reported per model in the paper's Tables 3, 5 and 7).
    pub fn count_infeasible(&mut self, observations: &[Observation]) -> usize {
        observations.iter().filter(|o| !self.is_feasible(o)).count()
    }

    /// Tests every observation, returning one evidence-carrying verdict per
    /// observation in input order.
    pub fn check_all_verdicts(&mut self, observations: &[Observation]) -> Vec<FeasibilityVerdict> {
        observations.iter().map(|o| self.verdict(o)).collect()
    }
}

/// Accumulates the unscaled flow combination `Σ fⱼ·gⱼ` over the sparse
/// generators (flow values within the solver tolerance of zero contribute
/// noise only and are skipped).
fn flow_combination(
    sparse: &[Vec<(usize, f64)>],
    flows: impl Iterator<Item = (usize, f64)>,
    dim: usize,
) -> Vec<f64> {
    let mut point = vec![0.0; dim];
    for (j, f) in flows {
        if f > 1e-9 {
            for &(i, c) in &sparse[j] {
                point[i] += f * c;
            }
        }
    }
    point
}

/// [`flow_combination`] in real counter units: the LP works with rescaled
/// flows `f' = f / scale`, so the counter-space point is `scale · Σ f'ⱼ·gⱼ`.
fn scaled_flow_combination(
    sparse: &[Vec<(usize, f64)>],
    flows: impl Iterator<Item = (usize, f64)>,
    scale: f64,
    dim: usize,
) -> Vec<f64> {
    flow_combination(sparse, flows, dim)
        .into_iter()
        .map(|v| v * scale)
        .collect()
}

/// How close (relative to the generator's coefficient mass) a float soundness
/// margin may come to its threshold before the comparison is re-run in exact
/// rational arithmetic — the trigger of the certificate recertification path.
const CERT_RECERT_MARGIN: f64 = 1e-7;

/// A confidently feasible tier-1 solve whose smallest included flow is below
/// this recomputes the flow combination exactly before caching the witness
/// ray: a flow just above the `1e-9` inclusion threshold is where float error
/// could smuggle a non-positive weight into the support.
const FLOW_RECERT_MARGIN: f64 = 1e-8;

/// Folds a tableau's Farkas multipliers back through the confidence-region
/// axes into a unit-∞-norm counter-space direction:
/// `c = Σ_k (π_{2k+1} − π_{2k}) / bound_div_k · axis_k`.  `None` if the
/// tableau's last resolve was feasible or the folded direction degenerates.
fn fold_certificate(
    region: &ConfidenceRegion,
    matrix: &ConeMatrix,
    tableau: &Tableau,
    dim: usize,
) -> Option<Vec<f64>> {
    fold_certificate_from(region, matrix, tableau.farkas_multipliers()?, dim)
}

/// [`fold_certificate`] from bare multipliers in interleaved row order — the
/// shared folding arithmetic behind both the tier-2 tableau and the tier-1
/// factorized solver.
fn fold_certificate_from(
    region: &ConfidenceRegion,
    matrix: &ConeMatrix,
    pi: &[f64],
    dim: usize,
) -> Option<Vec<f64>> {
    let mut direction = vec![0.0; dim];
    for (k, axis) in region.axes().iter().enumerate() {
        let weight = (pi[2 * k + 1] - pi[2 * k]) / matrix.bound_divs[k];
        if weight != 0.0 {
            for (d, a) in direction.iter_mut().zip(axis) {
                *d += weight * a;
            }
        }
    }
    let norm = direction.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
    if !norm.is_finite() || norm <= 0.0 {
        return None;
    }
    for v in &mut direction {
        *v /= norm;
    }
    Some(direction)
}

/// Re-verifies a float-derived separating direction in exact terms: every
/// generator must be on the non-negative side (within a strict tolerance),
/// otherwise the direction is not a sound separator.
fn certificate_is_sound(sparse: &[Vec<(usize, f64)>], direction: &[f64]) -> bool {
    sparse.iter().all(|g| {
        let (proj, mass) = g.iter().fold((0.0f64, 0.0f64), |(p, m), &(i, c)| {
            (p + direction[i] * c, m + c.abs())
        });
        proj >= -1e-9 * (1.0 + mass)
    })
}

/// [`certificate_is_sound`] with margin-triggered exact recertification: each
/// generator's projection is first judged in floats, and any projection within
/// [`CERT_RECERT_MARGIN`] (mass-relative) of the soundness threshold is
/// re-evaluated in exact rational arithmetic — every finite f64 converts
/// exactly, so the exact comparison is authoritative.  A rational overflow
/// (far outside the counter regime) conservatively rejects the direction:
/// the evidence is dropped, never a verdict.
fn certificate_is_sound_recertified(sparse: &[Vec<(usize, f64)>], direction: &[f64]) -> bool {
    sparse.iter().all(|g| {
        let (proj, mass) = g.iter().fold((0.0f64, 0.0f64), |(p, m), &(i, c)| {
            (p + direction[i] * c, m + c.abs())
        });
        let threshold = -1e-9 * (1.0 + mass);
        if (proj - threshold).abs() <= CERT_RECERT_MARGIN * (1.0 + mass) {
            telemetry::add(telemetry::Metric::LpExactRecertifications, 1);
            exact_projection_is_sound(g, direction).unwrap_or(false)
        } else {
            proj >= threshold
        }
    })
}

/// The exact-arithmetic verdict of the soundness criterion for one generator:
/// `Σᵢ direction[i]·gᵢ + 1e-9·(1 + Σᵢ|gᵢ|) ≥ 0` evaluated over [`Rational`]s
/// (all inputs are finite f64s, hence exact dyadic rationals).  `None` when an
/// intermediate overflows `i128`.
fn exact_projection_is_sound(g: &[(usize, f64)], direction: &[f64]) -> Option<bool> {
    let mut proj = Rational::ZERO;
    let mut mass = Rational::ZERO;
    for &(i, c) in g {
        let c = Rational::try_from_f64(c)?;
        let d = Rational::try_from_f64(direction[i])?;
        proj = proj.checked_add(d.checked_mul(c)?)?;
        let abs_c = if c.is_negative() {
            Rational::ZERO.checked_sub(c)?
        } else {
            c
        };
        mass = mass.checked_add(abs_c)?;
    }
    let eps = Rational::try_from_f64(1e-9)?;
    let slack = eps.checked_mul(Rational::ONE.checked_add(mass)?)?;
    Some(!proj.checked_add(slack)?.is_negative())
}

/// Exactly recomputes the flow combination `Σ fⱼ·gⱼ` over [`Rational`]s and
/// checks the float accumulation against it componentwise (within `1e-9` of
/// the combination's magnitude): the margin-triggered recertification of a
/// near-threshold witness harvest.  `false` on rational overflow — the caller
/// drops the ray rather than trusting an unverifiable one.
fn combination_recertifies(
    sparse: &[Vec<(usize, f64)>],
    flows: &[(usize, f64)],
    raw: &[f64],
) -> bool {
    exact_combination_matches(sparse, flows, raw).unwrap_or(false)
}

fn exact_combination_matches(
    sparse: &[Vec<(usize, f64)>],
    flows: &[(usize, f64)],
    raw: &[f64],
) -> Option<bool> {
    let mut exact = vec![Rational::ZERO; raw.len()];
    for &(j, f) in flows {
        if f.is_sign_negative() {
            // A "positive" flow that is actually negative would make the
            // combination leave the cone outright.
            return Some(false);
        }
        let f = Rational::try_from_f64(f)?;
        for &(i, c) in &sparse[j] {
            let c = Rational::try_from_f64(c)?;
            exact[i] = exact[i].checked_add(f.checked_mul(c)?)?;
        }
    }
    let tolerance = 1e-9 * raw.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
    for (value, expected) in raw.iter().zip(&exact) {
        if (value - expected.to_f64()).abs() > tolerance {
            return Some(false);
        }
    }
    Some(true)
}

/// A separating certificate for the degenerate origin-only cone: some region
/// axis has a projection interval excluding zero; the (sign-flipped) axis puts
/// the whole region on the negative side while `c · 0 ≥ 0` holds trivially.
fn origin_separator(region: &ConfidenceRegion) -> Vec<f64> {
    for (axis, &width) in region.axes().iter().zip(region.half_widths()) {
        let proj: f64 = axis.iter().zip(region.center()).map(|(a, c)| a * c).sum();
        if proj - width > 0.0 {
            return axis.iter().map(|a| -a).collect();
        }
        if proj + width < 0.0 {
            return axis.clone();
        }
    }
    Vec::new()
}

/// Does the ray `{t · ray : t ≥ 0}` pierce the region's bounding box with a
/// safety margin?  Intersects the per-axis intervals `t · (axis_k · ray) ∈
/// [lo_k + m_k, hi_k − m_k]`; a non-empty intersection is a certificate of
/// feasibility (the scaled cone point lies inside the region).  The per-axis
/// margin is capped at half the axis width so exact (zero-width) observations
/// can still match, and is otherwise `margin` — well above the LP's own
/// feasibility slop, so a hit is always a verdict the LP would reach too.
pub(crate) fn ray_pierces_box(ray: &[f64], region: &ConfidenceRegion, margin: f64) -> bool {
    ray_box_interval(ray, region, margin).is_some()
}

/// The `[t_lo, t_hi]` interval of scalings that put `t · ray` inside the
/// region's (margin-shrunk) bounding box, or `None` when the ray misses it —
/// the computation behind [`ray_pierces_box`], exposed so the verdict path can
/// turn a ray hit into a concrete witness point.
fn ray_box_interval(ray: &[f64], region: &ConfidenceRegion, margin: f64) -> Option<(f64, f64)> {
    let mut t_lo = 0.0f64;
    let mut t_hi = f64::INFINITY;
    // Clips `[t_lo, t_hi]` against one axis of the box; false means empty.
    let mut clip = |proj_center: f64, width: f64, c: f64| -> bool {
        let m = margin.min(0.5 * width);
        let lo = proj_center - width + m;
        let hi = proj_center + width - m;
        if c == 0.0 {
            if lo > 0.0 || hi < 0.0 {
                return false;
            }
        } else if c > 0.0 {
            t_lo = t_lo.max(lo / c);
            t_hi = t_hi.min(hi / c);
        } else {
            t_lo = t_lo.max(hi / c);
            t_hi = t_hi.min(lo / c);
        }
        t_lo <= t_hi
    };
    if region.standard_axes() {
        // Axis k projects onto component k directly (bit-identical to the
        // dense dots below) — the common exact-observation case.
        for (k, &width) in region.half_widths().iter().enumerate() {
            if !clip(region.center()[k], width, ray[k]) {
                return None;
            }
        }
    } else {
        for (axis, &width) in region.axes().iter().zip(region.half_widths()) {
            let proj_center: f64 = axis.iter().zip(region.center()).map(|(a, c)| a * c).sum();
            let c: f64 = axis.iter().zip(ray).map(|(a, r)| a * r).sum();
            if !clip(proj_center, width, c) {
                return None;
            }
        }
    }
    Some((t_lo, t_hi))
}

/// The witness cone point behind a ray short-circuit: the smallest admissible
/// scaling of the cached ray (the cone is closed under positive scaling, so
/// any `t` in the interval works; the smallest keeps magnitudes tame).
fn witness_on_ray(ray: &[f64], region: &ConfidenceRegion, margin: f64) -> Option<Vec<f64>> {
    let (t_lo, _) = ray_box_interval(ray, region, margin)?;
    Some(ray.iter().map(|r| r * t_lo).collect())
}

/// Refreshes the cached axes without reallocating the inner vectors.
fn clone_axes_into(cached: &mut Vec<Vec<f64>>, source: &[Vec<f64>]) {
    cached.resize_with(source.len(), Vec::new);
    for (dst, src) in cached.iter_mut().zip(source) {
        dst.clear();
        dst.extend_from_slice(src);
    }
}

/// Tests every model cone against every observation, fanning the model family
/// across worker threads.
///
/// This is the batched analogue of running [`BatchFeasibility::check_all`] per
/// model: each worker owns one model at a time and sweeps the full observation
/// list with a warm engine, so per-model results are independent of the thread
/// count and land in model order — the same deterministic worker pattern the
/// `counterpoint-collect` campaign runner uses.  `threads = 0` means "use the
/// host's available parallelism"; `threads = 1` (or a single model) runs
/// inline.
///
/// Returns one `Vec<bool>` per model, each with one verdict per observation.
pub fn check_models(
    cones: &[&ModelCone],
    observations: &[Observation],
    threads: usize,
) -> Vec<Vec<bool>> {
    fan_out_models(cones, threads, |cone| {
        let _span = telemetry::span("model_sweep", cone.name());
        BatchFeasibility::new(cone).check_all(observations)
    })
}

/// The evidence-carrying analogue of [`check_models`]: one
/// [`FeasibilityVerdict`] per (model, observation) pair, fanned across worker
/// threads with the same deterministic pattern.  Each model's observation
/// sweep runs on a single worker with its own warm engine, so the verdicts —
/// witnesses and certificates included — are identical for every thread count.
pub fn check_models_verdicts(
    cones: &[&ModelCone],
    observations: &[Observation],
    threads: usize,
) -> Vec<Vec<FeasibilityVerdict>> {
    fan_out_models(cones, threads, |cone| {
        let _span = telemetry::span("model_sweep", cone.name());
        BatchFeasibility::new(cone).check_all_verdicts(observations)
    })
}

/// The deterministic model fan-out shared by [`check_models`] and
/// [`check_models_verdicts`]: each worker owns one model at a time, results
/// land in model order no matter how many workers run or which finishes
/// first.  `threads = 0` means "use the host's available parallelism".
fn fan_out_models<T, F>(cones: &[&ModelCone], threads: usize, run_one: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ModelCone) -> T + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    };
    let workers = threads.min(cones.len()).max(1);

    if workers <= 1 {
        return cones.iter().map(|cone| run_one(cone)).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = cones.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(cone) = cones.get(idx) else {
                    break;
                };
                let result = run_one(cone);
                *slots[idx].lock().expect("feasibility worker panicked") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("feasibility worker panicked")
                .expect("every model was scheduled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterpoint_mudd::{dsl::compile_uop, CounterSignature, CounterSpace};

    fn space() -> CounterSpace {
        CounterSpace::new(&["load.causes_walk", "load.pde$_miss"])
    }

    fn fig6a_cone() -> ModelCone {
        let mudd = compile_uop(
            "fig6a",
            r#"
            incr load.causes_walk;
            do LookupPde$;
            switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
            done;
            "#,
            &space(),
        )
        .unwrap();
        ModelCone::from_mudd(&mudd).unwrap()
    }

    fn noisy_observation(name: &str, base: f64, offset: f64) -> Observation {
        let samples: Vec<Vec<f64>> = (0..24)
            .map(|i| {
                let wiggle = (i % 7) as f64 - 3.0;
                vec![base + (i % 5) as f64, base + offset + wiggle]
            })
            .collect();
        Observation::from_samples(name, &samples, 0.99)
    }

    #[test]
    fn batch_agrees_with_checker_on_exact_observations() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let mut batch = BatchFeasibility::new(&cone);
        let observations = vec![
            Observation::exact("a", &[10.0, 4.0]),
            Observation::exact("b", &[4.0, 10.0]),
            Observation::exact("edge", &[10.0, 10.0]),
            Observation::exact("origin", &[0.0, 0.0]),
            Observation::exact("big", &[2.0e9, 1.5e9]),
            Observation::exact("big-bad", &[1.5e9, 2.0e9]),
        ];
        for obs in &observations {
            assert_eq!(
                batch.is_feasible(obs),
                checker.is_feasible(obs),
                "verdict mismatch on {}",
                obs.name()
            );
        }
    }

    #[test]
    fn batch_agrees_with_checker_on_noisy_observations() {
        // Distinct principal axes per observation: exercises the in-place
        // rebind path.
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let mut batch = BatchFeasibility::new(&cone);
        for i in 0..12 {
            let offset = -2.0 + i as f64 * 0.7; // from clearly inside to clearly out
            let obs = noisy_observation(&format!("noisy-{i}"), 900.0 + 37.0 * i as f64, offset);
            assert_eq!(
                batch.is_feasible(&obs),
                checker.is_feasible(&obs),
                "verdict mismatch on {}",
                obs.name()
            );
        }
    }

    #[test]
    fn batch_count_matches_checker_count() {
        let cone = fig6a_cone();
        let observations: Vec<Observation> = (0..10)
            .map(|i| noisy_observation(&format!("n{i}"), 500.0, -3.0 + i as f64))
            .collect();
        let expected = observations
            .iter()
            .filter(|o| !FeasibilityChecker::new(&cone).is_feasible(o))
            .count();
        assert_eq!(
            BatchFeasibility::new(&cone).count_infeasible(&observations),
            expected
        );
        assert_eq!(
            FeasibilityChecker::new(&cone).count_infeasible(&observations),
            expected
        );
    }

    #[test]
    fn non_convergence_fallback_leaves_reachable_verdicts_unchanged() {
        // The LP non-convergence path resolves as not-refuted instead of
        // aborting the process.  Differential guard for that change: on
        // well-conditioned instances the verdict classification still matches
        // the cold reference checker exactly, and none of them take the
        // Inconclusive escape hatch.
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let mut batch = BatchFeasibility::new(&cone);
        let mut observations = vec![
            Observation::exact("a", &[10.0, 4.0]),
            Observation::exact("b", &[4.0, 10.0]),
            Observation::exact("edge", &[10.0, 10.0]),
            Observation::exact("origin", &[0.0, 0.0]),
        ];
        for i in 0..16 {
            observations.push(noisy_observation(
                &format!("sweep-{i}"),
                250.0 + 40.0 * i as f64,
                -3.5 + 0.5 * i as f64,
            ));
        }
        for obs in &observations {
            let verdict = batch.verdict(obs);
            assert!(
                !matches!(verdict, FeasibilityVerdict::Inconclusive { .. }),
                "{} must not be inconclusive on a well-conditioned instance",
                obs.name()
            );
            assert_eq!(
                matches!(verdict, FeasibilityVerdict::Feasible { .. }),
                checker.is_feasible(obs),
                "verdict mismatch on {}",
                obs.name()
            );
        }
    }

    #[test]
    fn degenerate_cone_only_accepts_the_origin() {
        let cone = ModelCone::from_signatures("zero", &space(), vec![CounterSignature::zero(2)], 1);
        let mut batch = BatchFeasibility::new(&cone);
        assert!(batch.is_feasible(&Observation::exact("origin", &[0.0, 0.0])));
        assert!(!batch.is_feasible(&Observation::exact("off", &[1.0, 0.0])));
    }

    #[test]
    fn check_models_is_deterministic_across_thread_counts() {
        let cones = [fig6a_cone(), fig6a_cone()];
        let refs: Vec<&ModelCone> = cones.iter().collect();
        let observations: Vec<Observation> = (0..8)
            .map(|i| noisy_observation(&format!("n{i}"), 700.0, -2.0 + i as f64))
            .collect();
        let sequential = check_models(&refs, &observations, 1);
        for threads in [0, 2, 4] {
            assert_eq!(check_models(&refs, &observations, threads), sequential);
        }
        assert_eq!(sequential.len(), 2);
        assert_eq!(sequential[0].len(), observations.len());
    }

    #[test]
    #[should_panic(expected = "share a counter space")]
    fn dimension_mismatch_panics() {
        let cone = fig6a_cone();
        let _ = BatchFeasibility::new(&cone).is_feasible(&Observation::exact("bad", &[1.0]));
    }

    #[test]
    fn refuted_pde_cache_observation_yields_a_separating_certificate() {
        // The paper's running example: the hardware reports more PDE-cache
        // misses than walks, refuting the initial model.  The verdict must
        // carry a Farkas certificate that *actually* separates the cone from
        // the observation — checkable, not decorative.
        let cone = fig6a_cone();
        let mut batch = BatchFeasibility::new(&cone);
        let obs = Observation::exact("microbenchmark", &[1_000.0, 1_400.0]);
        let FeasibilityVerdict::Refuted { certificate } = batch.verdict(&obs) else {
            panic!("the microbenchmark must refute the initial PDE-cache model");
        };
        assert!(!certificate.is_empty(), "certificate must be extracted");
        // Every cone generator lies on the non-negative side ...
        for g in cone.generator_cone().generators() {
            let gv = g.to_f64_vec();
            let proj: f64 = certificate.iter().zip(&gv).map(|(c, v)| c * v).sum();
            assert!(
                proj >= -1e-9,
                "certificate must not cut off generator {gv:?}"
            );
        }
        // ... while the whole observation region sits strictly on the
        // negative side (its center in particular).
        let center_proj: f64 = certificate.iter().zip(obs.mean()).map(|(c, v)| c * v).sum();
        assert!(
            center_proj < 0.0,
            "certificate must separate the observation"
        );
        let (_, hi) = obs.region().interval_along(&certificate);
        assert!(hi < 0.0, "the entire confidence region must be separated");
        // The harvested certificate is visible through the public accessor.
        assert_eq!(batch.farkas_certificates(), &[certificate]);
    }

    #[test]
    fn feasible_verdict_carries_a_witness_in_the_region() {
        let cone = fig6a_cone();
        let mut batch = BatchFeasibility::new(&cone);
        let obs = Observation::exact("ok", &[10.0, 4.0]);
        let FeasibilityVerdict::Feasible { witness } = batch.verdict(&obs) else {
            panic!("the observation is inside the cone");
        };
        // Zero-width region: the witness must coincide with the observation
        // up to the LP tolerance.
        for (w, c) in witness.iter().zip(obs.mean()) {
            assert!(
                (w - c).abs() <= 1e-6 * (1.0 + c.abs()),
                "witness {witness:?}"
            );
        }
        assert_eq!(batch.witness_rays().len(), 1);
        // A second feasible observation may settle via the cached ray; its
        // witness must still live inside its own region's bounding box.
        let obs2 = noisy_observation("near", 900.0, -1.0);
        if let FeasibilityVerdict::Feasible { witness } = batch.verdict(&obs2) {
            let region = obs2.region();
            for (axis, &width) in region.axes().iter().zip(region.half_widths()) {
                let proj: f64 = axis.iter().zip(&witness).map(|(a, w)| a * w).sum();
                let center: f64 = axis.iter().zip(region.center()).map(|(a, c)| a * c).sum();
                assert!(
                    (proj - center).abs() <= width + 1e-6 * (1.0 + center.abs()),
                    "witness must project inside the region box"
                );
            }
        }
    }

    #[test]
    fn verdicts_agree_with_the_bool_path() {
        let cone = fig6a_cone();
        let mut bools = BatchFeasibility::new(&cone);
        let mut verdicts = BatchFeasibility::new(&cone);
        for i in 0..12 {
            let offset = -2.0 + i as f64 * 0.7;
            let obs = noisy_observation(&format!("noisy-{i}"), 900.0 + 37.0 * i as f64, offset);
            assert_eq!(
                verdicts.verdict(&obs).is_feasible(),
                bools.is_feasible(&obs),
                "verdict/bool mismatch on {}",
                obs.name()
            );
        }
    }

    #[test]
    fn degenerate_cone_verdicts_carry_evidence() {
        let cone = ModelCone::from_signatures("zero", &space(), vec![CounterSignature::zero(2)], 1);
        let mut batch = BatchFeasibility::new(&cone);
        assert_eq!(
            batch.verdict(&Observation::exact("origin", &[0.0, 0.0])),
            FeasibilityVerdict::Feasible {
                witness: vec![0.0, 0.0]
            }
        );
        let refuted = batch.verdict(&Observation::exact("off", &[1.0, 0.0]));
        let FeasibilityVerdict::Refuted { certificate } = refuted else {
            panic!("a non-origin observation refutes the origin-only cone");
        };
        let proj: f64 = certificate
            .iter()
            .zip(&[1.0, 0.0])
            .map(|(c, v)| c * v)
            .sum();
        assert!(
            proj < 0.0,
            "origin separator must point away from the observation"
        );
    }

    #[test]
    fn check_models_verdicts_is_deterministic_across_thread_counts() {
        let cones = [fig6a_cone(), fig6a_cone()];
        let refs: Vec<&ModelCone> = cones.iter().collect();
        let observations: Vec<Observation> = (0..8)
            .map(|i| noisy_observation(&format!("n{i}"), 700.0, -2.0 + i as f64))
            .collect();
        let sequential = check_models_verdicts(&refs, &observations, 1);
        for threads in [0, 2, 4] {
            assert_eq!(
                check_models_verdicts(&refs, &observations, threads),
                sequential
            );
        }
        // The verdict matrix agrees with the bool matrix decision for decision.
        let bools = check_models(&refs, &observations, 1);
        for (vrow, brow) in sequential.iter().zip(&bools) {
            for (v, b) in vrow.iter().zip(brow) {
                assert_eq!(v.is_feasible(), *b);
            }
        }
    }
}
