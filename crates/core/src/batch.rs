//! Batched feasibility testing: the warm-started engine behind CounterPoint's
//! hot loop.
//!
//! A refutation campaign asks the same structural question thousands of times:
//! for each model cone and each observation, does the observation's confidence
//! region intersect the cone?  [`FeasibilityChecker::is_feasible`] answers one
//! instance from scratch — it recomputes the `axis · generator` coefficient
//! matrix (a function of the cone and the counter-space axes only) and runs a
//! cold two-phase simplex.  [`BatchFeasibility`] amortises both across a
//! campaign:
//!
//! * the coefficient matrix is computed **once per (cone, axes) pair** and
//!   reused for every observation sharing those axes (all exact observations
//!   share the coordinate axes; repeated measurements of one workload share
//!   their region's principal axes), and
//! * the LP is kept alive as a warm [`Tableau`]: when only the bounds move the
//!   dual simplex restarts from the previous observation's basis
//!   ([`Tableau::resolve`]; [`Tableau::resolve_with_basis`] also lets a caller
//!   seed a fresh tableau with a recorded basis), and a handful of pivots
//!   replace a full two-phase solve, and
//! * verdicts of past solves are recycled: Farkas separating directions and
//!   scaled cone-point witness rays settle many observations in `O(d²)`
//!   without touching the LP at all.
//!
//! Verdicts are identical to the per-observation checker (the two paths share
//! the row-construction arithmetic bit for bit, and the warm path falls back to
//! the cold solver if the dual simplex fails to converge); only the work to
//! reach them changes.  [`check_models`] fans a model family × observation
//! matrix across `std::thread` workers with the same deterministic pattern the
//! `counterpoint-collect` campaign runner uses: results land in model order no
//! matter how many workers run or which finishes first.

use crate::cone::ModelCone;
use crate::feasibility::{
    observation_scale, row_bounds, sparsify_generators, ConeMatrix, FeasibilityChecker,
};
use crate::observation::Observation;
use counterpoint_lp::{LinearProgram, Relation, Tableau};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on cached Farkas certificates per engine (MRU order).
const MAX_CERTIFICATES: usize = 8;

/// Upper bound on cached feasibility witness rays per engine (MRU order).
const MAX_WITNESS_RAYS: usize = 8;

/// An infeasible observation must sit at least this many multiples of the
/// observation scale outside the cone (along a cached certificate direction)
/// for the certificate to short-circuit the LP.  The margin is ~10× the LP's
/// own feasibility slop, so a certificate hit is always a verdict the LP would
/// have reached too.
const CERTIFICATE_MARGIN: f64 = 1e-6;

/// The observation-independent state cached for the most recent confidence
///-region axes: the equilibrated coefficient matrix and the warm tableau.
#[derive(Clone, Debug)]
struct AxesCache {
    axes: Vec<Vec<f64>>,
    matrix: ConeMatrix,
    tableau: Tableau,
}

/// Warm-started feasibility testing of many observations against one model
/// cone.
///
/// Construction mirrors [`FeasibilityChecker::new`]; the difference is that
/// [`is_feasible`](BatchFeasibility::is_feasible) takes `&mut self` so the
/// engine can keep the factorised LP state alive between calls.  Use it
/// whenever more than a handful of observations are tested against the same
/// cone — [`FeasibilityChecker::count_infeasible`] and
/// [`evaluate_models`](crate::explore::evaluate_models) already route through
/// it.
///
/// # Example
///
/// ```
/// use counterpoint_core::{BatchFeasibility, ModelCone, Observation};
/// use counterpoint_mudd::{CounterSignature, CounterSpace};
///
/// let space = CounterSpace::new(&["x", "y"]);
/// let cone = ModelCone::from_signatures(
///     "demo",
///     &space,
///     vec![
///         CounterSignature::from_counts(vec![1, 0]),
///         CounterSignature::from_counts(vec![1, 1]),
///     ],
///     2,
/// );
/// let mut batch = BatchFeasibility::new(&cone);
/// let observations = vec![
///     Observation::exact("inside", &[10.0, 4.0]),
///     Observation::exact("outside", &[4.0, 10.0]),
/// ];
/// assert_eq!(batch.check_all(&observations), vec![true, false]);
/// assert_eq!(batch.count_infeasible(&observations), 1);
/// ```
#[derive(Clone, Debug)]
pub struct BatchFeasibility<'a> {
    checker: FeasibilityChecker<'a>,
    /// Non-zero generator entries in index order — μpath signatures are
    /// sparse, so the per-observation coefficient matmul iterates only these.
    sparse: Vec<Vec<(usize, f64)>>,
    cache: Option<AxesCache>,
    /// Counter-space separating directions harvested from past infeasible
    /// solves (unit ∞-norm, `c · g ≥ 0` for every generator), most recently
    /// useful first.  An observation whose region lies strictly on the
    /// negative side of any of them is infeasible without touching the LP.
    certificates: Vec<Vec<f64>>,
    /// Cone points harvested from past feasible solves, as unit ∞-norm ray
    /// directions, most recently useful first.  The cone is closed under
    /// positive scaling, so if a scaled ray pierces the new observation's
    /// bounding box the observation is feasible without touching the LP.
    witness_rays: Vec<Vec<f64>>,
    /// Scratch bounds, reused across observations.
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl<'a> BatchFeasibility<'a> {
    /// Prepares a batched engine for the given model cone.
    pub fn new(cone: &'a ModelCone) -> BatchFeasibility<'a> {
        let checker = FeasibilityChecker::new(cone);
        let sparse = sparsify_generators(checker.generators());
        BatchFeasibility {
            checker,
            sparse,
            cache: None,
            certificates: Vec::new(),
            witness_rays: Vec::new(),
            lo: Vec::new(),
            hi: Vec::new(),
        }
    }

    /// The model cone under test.
    pub fn cone(&self) -> &ModelCone {
        self.checker.cone()
    }

    /// Returns `true` if the observation's confidence region intersects the
    /// model cone.  Agrees with [`FeasibilityChecker::is_feasible`] on every
    /// input; reuses the cached coefficient matrix and warm LP basis where the
    /// per-observation checker starts from scratch.
    ///
    /// # Panics
    ///
    /// Panics if the observation's dimension differs from the cone's.
    pub fn is_feasible(&mut self, observation: &Observation) -> bool {
        let cone = self.checker.cone();
        assert_eq!(
            observation.dimension(),
            cone.dimension(),
            "observation and model must share a counter space"
        );
        let region = observation.region();

        // Degenerate cone: only the origin is producible.
        if self.checker.generators().is_empty() {
            return region.contains(&vec![0.0; cone.dimension()]);
        }

        let scale = observation_scale(region);

        // Certificate short-circuit: if the whole confidence region sits
        // strictly on the negative side of a cached separating direction, no
        // non-negative flow can reach it — infeasible without building the LP.
        let margin = CERTIFICATE_MARGIN * scale;
        if let Some(hit) = self
            .certificates
            .iter()
            .position(|c| region.interval_along(c).1 < -margin)
        {
            // Most recently useful certificate first.
            self.certificates[..=hit].rotate_right(1);
            return false;
        }

        // Witness short-circuit: the cone is closed under positive scaling, so
        // if some `t ≥ 0` puts `t · ray` inside the region's bounding box for
        // a previously harvested cone ray, the observation is feasible.
        if let Some(hit) = self
            .witness_rays
            .iter()
            .position(|ray| ray_pierces_box(ray, region, margin))
        {
            self.witness_rays[..=hit].rotate_right(1);
            return true;
        }

        let num_flows = self.checker.generators().len();
        let axes_match = self
            .cache
            .as_ref()
            .is_some_and(|cache| cache.axes.as_slice() == region.axes());
        if !axes_match {
            match self.cache.as_mut() {
                // Same shape: rebuild the coefficient matrix and refill the
                // tableau in place — no allocation on the steady-state path.
                //
                // The previous basis is deliberately *not* carried across an
                // axes change (via `resolve_with_basis`): installing each
                // structural column into the fresh factorisation costs one
                // pivot, which measures as a net loss against simply running
                // the handful of dual pivots from the all-slack basis — and
                // cold-starting keeps this path's arithmetic bit-identical to
                // `FeasibilityChecker::is_feasible`.  Warm starts pay off on
                // the bounds-only path below, where the factorisation itself
                // survives.
                Some(cache) if cache.tableau.num_bands() == region.axes().len() => {
                    cache.matrix.build_sparse_into(region.axes(), &self.sparse);
                    cache.tableau.rebind(&cache.matrix.rows);
                    clone_axes_into(&mut cache.axes, region.axes());
                }
                _ => {
                    let mut matrix = ConeMatrix::empty();
                    matrix.build_sparse_into(region.axes(), &self.sparse);
                    let tableau = Tableau::band(num_flows, &matrix.rows);
                    self.cache = Some(AxesCache {
                        axes: region.axes().to_vec(),
                        matrix,
                        tableau,
                    });
                }
            }
        }

        let cache = self.cache.as_mut().expect("cache was just populated");
        let bands = cache.matrix.rows.len();
        self.lo.clear();
        self.hi.clear();
        for k in 0..bands {
            let (lo, hi) = row_bounds(region, &cache.matrix, k, scale);
            self.lo.push(lo);
            self.hi.push(hi);
        }

        // On matching axes the factorisation is still valid and only the
        // bounds moved: `resolve` warm-starts the dual simplex from the basis
        // the previous observation ended in.  After an axes change the rebind
        // above reset to the all-slack basis and this is a cold start.
        let outcome = cache.tableau.resolve(&self.lo, &self.hi);

        match outcome {
            Ok(feasible) => {
                if feasible {
                    self.harvest_witness();
                } else {
                    self.harvest_certificate(region);
                }
                feasible
            }
            Err(_) => {
                // The warm path cycled out of its iteration budget; drop the
                // poisoned state and answer exactly like the per-observation
                // checker does — a cold dual-simplex solve, with the two-phase
                // primal as the last resort — so the agreement contract holds
                // even on this path.
                self.cache = None;
                let matrix = ConeMatrix::build(region.axes(), self.checker.generators());
                let mut lo = Vec::with_capacity(matrix.rows.len());
                let mut hi = Vec::with_capacity(matrix.rows.len());
                for k in 0..matrix.rows.len() {
                    let (l, h) = row_bounds(region, &matrix, k, scale);
                    lo.push(l);
                    hi.push(h);
                }
                let mut cold = Tableau::band(num_flows, &matrix.rows);
                match cold.resolve(&lo, &hi) {
                    Ok(feasible) => feasible,
                    Err(_) => {
                        let mut lp = LinearProgram::new(num_flows);
                        for (k, row) in matrix.rows.iter().enumerate() {
                            lp.add_constraint(row, Relation::Ge, lo[k]);
                            lp.add_constraint(row, Relation::Le, hi[k]);
                        }
                        lp.is_feasible()
                    }
                }
            }
        }
    }

    /// Reconstructs the counter-space cone point of the feasible solution the
    /// tableau just found (`y* = Σ f_j · g_j` over the basic flows) and caches
    /// its unit-norm ray for future feasible short-circuits.  The flow values
    /// are only positively scaled relative to the raw problem, which leaves
    /// the ray's direction — all that matters — unchanged.
    fn harvest_witness(&mut self) {
        if self.witness_rays.len() >= MAX_WITNESS_RAYS {
            return;
        }
        let Some(cache) = self.cache.as_ref() else {
            return;
        };
        let dim = self.checker.cone().dimension();
        let mut ray = vec![0.0; dim];
        for (j, f) in cache.tableau.basic_flows() {
            // Values within the solver tolerance of zero contribute noise only.
            if f > 1e-9 {
                for &(i, c) in &self.sparse[j] {
                    ray[i] += f * c;
                }
            }
        }
        let norm = ray.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        if !norm.is_finite() || norm <= 0.0 {
            return;
        }
        for v in &mut ray {
            *v /= norm;
        }
        self.witness_rays.push(ray);
    }

    /// Turns the tableau's Farkas multipliers into a counter-space separating
    /// direction and caches it for future short-circuits.
    ///
    /// The stuck dual row gives `π ≥ 0` with `π · [A|S] ≥ 0` and `π · b < 0`.
    /// Folding the per-band multiplier difference back through the axes yields
    /// `c = Σ_k (π_{2k+1} − π_{2k}) / bound_div_k · axis_k` with `c · g ≥ 0`
    /// for every generator `g` — a property of the cone alone, so the
    /// certificate stays valid for every future observation.  The direction is
    /// re-verified against the generators before caching (the multipliers are
    /// only non-negative up to the solver tolerance).
    fn harvest_certificate(&mut self, region: &counterpoint_stats::ConfidenceRegion) {
        if self.certificates.len() >= MAX_CERTIFICATES {
            return;
        }
        let Some(cache) = self.cache.as_ref() else {
            return;
        };
        let Some(pi) = cache.tableau.farkas_multipliers() else {
            return;
        };
        let dim = self.checker.cone().dimension();
        let mut direction = vec![0.0; dim];
        for (k, axis) in region.axes().iter().enumerate() {
            let weight = (pi[2 * k + 1] - pi[2 * k]) / cache.matrix.bound_divs[k];
            if weight != 0.0 {
                for (d, a) in direction.iter_mut().zip(axis) {
                    *d += weight * a;
                }
            }
        }
        let norm = direction.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        if !norm.is_finite() || norm <= 0.0 {
            return;
        }
        for v in &mut direction {
            *v /= norm;
        }
        // Re-verify in exact terms: every generator must be on the
        // non-negative side (within a strict tolerance), otherwise the
        // float-derived direction is not a sound separator.
        let sound = self.sparse.iter().all(|g| {
            let (proj, mass) = g.iter().fold((0.0f64, 0.0f64), |(p, m), &(i, c)| {
                (p + direction[i] * c, m + c.abs())
            });
            proj >= -1e-9 * (1.0 + mass)
        });
        if sound {
            self.certificates.push(direction);
        }
    }

    /// Tests every observation, returning one verdict per observation in input
    /// order.
    pub fn check_all(&mut self, observations: &[Observation]) -> Vec<bool> {
        observations.iter().map(|o| self.is_feasible(o)).collect()
    }

    /// Counts how many of the observations are infeasible for this model (the
    /// quantity reported per model in the paper's Tables 3, 5 and 7).
    pub fn count_infeasible(&mut self, observations: &[Observation]) -> usize {
        observations.iter().filter(|o| !self.is_feasible(o)).count()
    }
}

/// Does the ray `{t · ray : t ≥ 0}` pierce the region's bounding box with a
/// safety margin?  Intersects the per-axis intervals `t · (axis_k · ray) ∈
/// [lo_k + m_k, hi_k − m_k]`; a non-empty intersection is a certificate of
/// feasibility (the scaled cone point lies inside the region).  The per-axis
/// margin is capped at half the axis width so exact (zero-width) observations
/// can still match, and is otherwise `margin` — well above the LP's own
/// feasibility slop, so a hit is always a verdict the LP would reach too.
fn ray_pierces_box(
    ray: &[f64],
    region: &counterpoint_stats::ConfidenceRegion,
    margin: f64,
) -> bool {
    let mut t_lo = 0.0f64;
    let mut t_hi = f64::INFINITY;
    for (axis, &width) in region.axes().iter().zip(region.half_widths()) {
        let proj_center: f64 = axis.iter().zip(region.center()).map(|(a, c)| a * c).sum();
        let m = margin.min(0.5 * width);
        let lo = proj_center - width + m;
        let hi = proj_center + width - m;
        let c: f64 = axis.iter().zip(ray).map(|(a, r)| a * r).sum();
        if c == 0.0 {
            if lo > 0.0 || hi < 0.0 {
                return false;
            }
        } else if c > 0.0 {
            t_lo = t_lo.max(lo / c);
            t_hi = t_hi.min(hi / c);
        } else {
            t_lo = t_lo.max(hi / c);
            t_hi = t_hi.min(lo / c);
        }
        if t_lo > t_hi {
            return false;
        }
    }
    true
}

/// Refreshes the cached axes without reallocating the inner vectors.
fn clone_axes_into(cached: &mut Vec<Vec<f64>>, source: &[Vec<f64>]) {
    cached.resize_with(source.len(), Vec::new);
    for (dst, src) in cached.iter_mut().zip(source) {
        dst.clear();
        dst.extend_from_slice(src);
    }
}

/// Tests every model cone against every observation, fanning the model family
/// across worker threads.
///
/// This is the batched analogue of running [`BatchFeasibility::check_all`] per
/// model: each worker owns one model at a time and sweeps the full observation
/// list with a warm engine, so per-model results are independent of the thread
/// count and land in model order — the same deterministic worker pattern the
/// `counterpoint-collect` campaign runner uses.  `threads = 0` means "use the
/// host's available parallelism"; `threads = 1` (or a single model) runs
/// inline.
///
/// Returns one `Vec<bool>` per model, each with one verdict per observation.
pub fn check_models(
    cones: &[&ModelCone],
    observations: &[Observation],
    threads: usize,
) -> Vec<Vec<bool>> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    };
    let workers = threads.min(cones.len()).max(1);
    let run_one = |cone: &ModelCone| BatchFeasibility::new(cone).check_all(observations);

    if workers <= 1 {
        return cones.iter().map(|cone| run_one(cone)).collect();
    }

    let slots: Vec<Mutex<Option<Vec<bool>>>> = cones.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(cone) = cones.get(idx) else {
                    break;
                };
                let verdicts = run_one(cone);
                *slots[idx].lock().expect("feasibility worker panicked") = Some(verdicts);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("feasibility worker panicked")
                .expect("every model was scheduled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterpoint_mudd::{dsl::compile_uop, CounterSignature, CounterSpace};

    fn space() -> CounterSpace {
        CounterSpace::new(&["load.causes_walk", "load.pde$_miss"])
    }

    fn fig6a_cone() -> ModelCone {
        let mudd = compile_uop(
            "fig6a",
            r#"
            incr load.causes_walk;
            do LookupPde$;
            switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
            done;
            "#,
            &space(),
        )
        .unwrap();
        ModelCone::from_mudd(&mudd).unwrap()
    }

    fn noisy_observation(name: &str, base: f64, offset: f64) -> Observation {
        let samples: Vec<Vec<f64>> = (0..24)
            .map(|i| {
                let wiggle = (i % 7) as f64 - 3.0;
                vec![base + (i % 5) as f64, base + offset + wiggle]
            })
            .collect();
        Observation::from_samples(name, &samples, 0.99)
    }

    #[test]
    fn batch_agrees_with_checker_on_exact_observations() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let mut batch = BatchFeasibility::new(&cone);
        let observations = vec![
            Observation::exact("a", &[10.0, 4.0]),
            Observation::exact("b", &[4.0, 10.0]),
            Observation::exact("edge", &[10.0, 10.0]),
            Observation::exact("origin", &[0.0, 0.0]),
            Observation::exact("big", &[2.0e9, 1.5e9]),
            Observation::exact("big-bad", &[1.5e9, 2.0e9]),
        ];
        for obs in &observations {
            assert_eq!(
                batch.is_feasible(obs),
                checker.is_feasible(obs),
                "verdict mismatch on {}",
                obs.name()
            );
        }
    }

    #[test]
    fn batch_agrees_with_checker_on_noisy_observations() {
        // Distinct principal axes per observation: exercises the in-place
        // rebind path.
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let mut batch = BatchFeasibility::new(&cone);
        for i in 0..12 {
            let offset = -2.0 + i as f64 * 0.7; // from clearly inside to clearly out
            let obs = noisy_observation(&format!("noisy-{i}"), 900.0 + 37.0 * i as f64, offset);
            assert_eq!(
                batch.is_feasible(&obs),
                checker.is_feasible(&obs),
                "verdict mismatch on {}",
                obs.name()
            );
        }
    }

    #[test]
    fn batch_count_matches_checker_count() {
        let cone = fig6a_cone();
        let observations: Vec<Observation> = (0..10)
            .map(|i| noisy_observation(&format!("n{i}"), 500.0, -3.0 + i as f64))
            .collect();
        let expected = observations
            .iter()
            .filter(|o| !FeasibilityChecker::new(&cone).is_feasible(o))
            .count();
        assert_eq!(
            BatchFeasibility::new(&cone).count_infeasible(&observations),
            expected
        );
        assert_eq!(
            FeasibilityChecker::new(&cone).count_infeasible(&observations),
            expected
        );
    }

    #[test]
    fn degenerate_cone_only_accepts_the_origin() {
        let cone = ModelCone::from_signatures("zero", &space(), vec![CounterSignature::zero(2)], 1);
        let mut batch = BatchFeasibility::new(&cone);
        assert!(batch.is_feasible(&Observation::exact("origin", &[0.0, 0.0])));
        assert!(!batch.is_feasible(&Observation::exact("off", &[1.0, 0.0])));
    }

    #[test]
    fn check_models_is_deterministic_across_thread_counts() {
        let cones = [fig6a_cone(), fig6a_cone()];
        let refs: Vec<&ModelCone> = cones.iter().collect();
        let observations: Vec<Observation> = (0..8)
            .map(|i| noisy_observation(&format!("n{i}"), 700.0, -2.0 + i as f64))
            .collect();
        let sequential = check_models(&refs, &observations, 1);
        for threads in [0, 2, 4] {
            assert_eq!(check_models(&refs, &observations, threads), sequential);
        }
        assert_eq!(sequential.len(), 2);
        assert_eq!(sequential[0].len(), observations.len());
    }

    #[test]
    #[should_panic(expected = "share a counter space")]
    fn dimension_mismatch_panics() {
        let cone = fig6a_cone();
        let _ = BatchFeasibility::new(&cone).is_feasible(&Observation::exact("bad", &[1.0]));
    }
}
