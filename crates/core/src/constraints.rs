//! Model-constraint deduction.
//!
//! The paper's Section 6 procedure: normalise and deduplicate μpath counter
//! signatures, find the equality constraints with Gaussian elimination, drop
//! signatures that lie in the cone's interior (they are redundant generators), and
//! compute the conic hull — the facet inequalities — with an exact geometric
//! algorithm.  The resulting equalities and inequalities are the *model
//! constraints* reported to the expert.

use crate::cone::ModelCone;
use counterpoint_geometry::{ConeConstraint, GeneratorCone};
use counterpoint_lp::{LinearProgram, Relation};
use counterpoint_mudd::CounterSpace;
use counterpoint_numeric::RatVector;
use serde::Serialize;

/// A model constraint with its human-readable rendering over the model's counter
/// names (the form shown in the paper's Table 1).
#[derive(Clone, Debug, Serialize)]
pub struct NamedConstraint {
    #[serde(skip)]
    constraint: ConeConstraint,
    /// Rendered text, e.g. `load.ret_stlb_miss <= load.walk_done`.
    text: String,
    /// Number of HECs with a non-zero coefficient.
    involved_counters: usize,
    /// `true` for equality constraints.
    is_equality: bool,
}

impl NamedConstraint {
    fn new(constraint: ConeConstraint, counters: &CounterSpace) -> NamedConstraint {
        let names = counters.name_refs();
        let text = constraint.render(&names);
        NamedConstraint {
            involved_counters: constraint.involved_counters(),
            is_equality: matches!(
                constraint.sense(),
                counterpoint_geometry::ConstraintSense::Equality
            ),
            text,
            constraint,
        }
    }

    /// The underlying geometric constraint.
    pub fn constraint(&self) -> &ConeConstraint {
        &self.constraint
    }

    /// Human-readable rendering.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Number of HECs participating in the constraint.
    pub fn involved_counters(&self) -> usize {
        self.involved_counters
    }

    /// `true` if this is an equality constraint.
    pub fn is_equality(&self) -> bool {
        self.is_equality
    }
}

/// The full set of model constraints deduced from a model cone.
#[derive(Clone, Debug)]
pub struct ConstraintSet {
    model: String,
    counters: CounterSpace,
    equalities: Vec<NamedConstraint>,
    inequalities: Vec<NamedConstraint>,
}

impl ConstraintSet {
    /// The model the constraints were deduced from.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The counter space the constraints range over.
    pub fn counters(&self) -> &CounterSpace {
        &self.counters
    }

    /// The equality constraints.
    pub fn equalities(&self) -> &[NamedConstraint] {
        &self.equalities
    }

    /// The inequality (facet) constraints.
    pub fn inequalities(&self) -> &[NamedConstraint] {
        &self.inequalities
    }

    /// All constraints, equalities first.
    pub fn all_named(&self) -> impl Iterator<Item = &NamedConstraint> {
        self.equalities.iter().chain(self.inequalities.iter())
    }

    /// Total number of constraints (the quantity plotted in the paper's Figure 1b).
    pub fn len(&self) -> usize {
        self.equalities.len() + self.inequalities.len()
    }

    /// Returns `true` if there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every constraint, one per line.
    pub fn render(&self) -> String {
        self.all_named()
            .map(NamedConstraint::text)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The constraints violated by a confidence region at its confidence
    /// level: a constraint `a·v ≥ 0` is violated when even the most favourable
    /// point of the region's bounding box has `a·v < 0`; an equality `a·v = 0`
    /// is violated when the box's projection onto `a` excludes zero.
    ///
    /// This is the refutation feedback of the paper's Figure 2 loop — shared
    /// by [`FeasibilityChecker::check`] and the session layer's `Refuted`
    /// verdicts.
    ///
    /// [`FeasibilityChecker::check`]: crate::feasibility::FeasibilityChecker::check
    pub fn violated_by(
        &self,
        region: &counterpoint_stats::ConfidenceRegion,
    ) -> Vec<&NamedConstraint> {
        let scale = region
            .center()
            .iter()
            .fold(1.0f64, |acc, v| acc.max(v.abs()));
        let tol = 1e-9 * scale;
        self.all_named()
            .filter(|named| {
                let coeffs: Vec<f64> = named
                    .constraint()
                    .coeffs()
                    .iter()
                    .map(|c| c.to_f64())
                    .collect();
                let (lo, hi) = region.interval_along(&coeffs);
                match named.constraint().sense() {
                    counterpoint_geometry::ConstraintSense::GreaterEqualZero => hi < -tol,
                    counterpoint_geometry::ConstraintSense::Equality => lo > tol || hi < -tol,
                }
            })
            .collect()
    }
}

/// Deduces the model constraints of a cone (with redundant-generator removal).
pub fn deduce_constraints(cone: &ModelCone) -> ConstraintSet {
    deduce_constraints_with_options(cone, true)
}

/// Deduces the model constraints of a cone.
///
/// When `remove_redundant` is set, generators expressible as non-negative
/// combinations of the others are dropped before the conic-hull computation — the
/// paper's step 3, which keeps the double-description method fast for models with
/// many μpaths.
pub fn deduce_constraints_with_options(cone: &ModelCone, remove_redundant: bool) -> ConstraintSet {
    let generators = cone.generator_cone().generators().to_vec();
    let reduced = if remove_redundant && generators.len() > 2 {
        remove_redundant_generators(&generators)
    } else {
        generators
    };
    let geometric = if reduced.is_empty() {
        GeneratorCone::zero(cone.dimension())
    } else {
        GeneratorCone::new(reduced)
    };
    let facets = geometric.facets();
    ConstraintSet {
        model: cone.name().to_string(),
        counters: cone.counters().clone(),
        equalities: facets
            .equalities
            .into_iter()
            .map(|c| NamedConstraint::new(c, cone.counters()))
            .collect(),
        inequalities: facets
            .inequalities
            .into_iter()
            .map(|c| NamedConstraint::new(c, cone.counters()))
            .collect(),
    }
}

/// Removes generators that are non-negative combinations of the remaining ones.
///
/// Uses an LP feasibility test per generator (the paper identifies interior
/// signatures with linear programming).  The surviving set generates the same cone.
pub fn remove_redundant_generators(generators: &[RatVector]) -> Vec<RatVector> {
    let mut keep: Vec<bool> = vec![true; generators.len()];
    for i in 0..generators.len() {
        let others: Vec<&RatVector> = generators
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i && keep[*j])
            .map(|(_, g)| g)
            .collect();
        if others.is_empty() {
            continue;
        }
        if in_cone_of(&generators[i], &others) {
            keep[i] = false;
        }
    }
    generators
        .iter()
        .zip(keep.iter())
        .filter(|(_, &k)| k)
        .map(|(g, _)| g.clone())
        .collect()
}

/// LP feasibility: is `target` a non-negative combination of `generators`?
fn in_cone_of(target: &RatVector, generators: &[&RatVector]) -> bool {
    let dim = target.len();
    let mut lp = LinearProgram::new(generators.len());
    for d in 0..dim {
        let coeffs: Vec<f64> = generators.iter().map(|g| g[d].to_f64()).collect();
        lp.add_constraint(&coeffs, Relation::Eq, target[d].to_f64());
    }
    lp.is_feasible()
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterpoint_mudd::{dsl::compile_uop, CounterSignature};

    fn space3() -> CounterSpace {
        CounterSpace::new(&["load.causes_walk", "load.walk_done", "load.ret_stlb_miss"])
    }

    fn figure3a_cone() -> ModelCone {
        // μpaths: walk aborted / walk done but squashed / walk done and retired.
        let sigs = vec![
            CounterSignature::from_counts(vec![1, 0, 0]),
            CounterSignature::from_counts(vec![1, 1, 0]),
            CounterSignature::from_counts(vec![1, 1, 1]),
        ];
        ModelCone::from_signatures("fig3a", &space3(), sigs, 3)
    }

    #[test]
    fn figure3a_constraints_match_the_paper() {
        let set = deduce_constraints(&figure3a_cone());
        assert_eq!(set.model(), "fig3a");
        assert_eq!(set.equalities().len(), 0);
        assert_eq!(set.inequalities().len(), 3);
        let texts: Vec<&str> = set.all_named().map(NamedConstraint::text).collect();
        assert!(texts.contains(&"load.ret_stlb_miss <= load.walk_done"));
        assert!(texts.contains(&"load.walk_done <= load.causes_walk"));
        assert!(texts.contains(&"0 <= load.ret_stlb_miss"));
    }

    #[test]
    fn equality_constraints_surface_counter_identities() {
        // stlb_hit = stlb_hit_4k + stlb_hit_2m (footnote 8 of the paper).
        let space = CounterSpace::new(&["load.stlb_hit", "load.stlb_hit_4k", "load.stlb_hit_2m"]);
        let sigs = vec![
            CounterSignature::from_counts(vec![1, 1, 0]),
            CounterSignature::from_counts(vec![1, 0, 1]),
        ];
        let cone = ModelCone::from_signatures("stlb", &space, sigs, 2);
        let set = deduce_constraints(&cone);
        assert_eq!(set.equalities().len(), 1);
        // Either orientation of the identity is acceptable.
        let text = set.equalities()[0].text();
        assert!(
            text == "load.stlb_hit_4k + load.stlb_hit_2m = load.stlb_hit"
                || text == "load.stlb_hit = load.stlb_hit_4k + load.stlb_hit_2m",
            "unexpected rendering: {text}"
        );
        assert!(set.equalities()[0].is_equality());
        assert_eq!(set.equalities()[0].involved_counters(), 3);
    }

    #[test]
    fn redundant_generator_removal_preserves_the_cone() {
        let gens = vec![
            RatVector::from_i64(&[1, 0]),
            RatVector::from_i64(&[0, 1]),
            RatVector::from_i64(&[1, 1]), // interior direction: redundant
            RatVector::from_i64(&[2, 3]), // interior direction: redundant
        ];
        let reduced = remove_redundant_generators(&gens);
        assert_eq!(reduced.len(), 2);
        assert!(reduced.contains(&RatVector::from_i64(&[1, 0])));
        assert!(reduced.contains(&RatVector::from_i64(&[0, 1])));
    }

    #[test]
    fn redundancy_removal_keeps_extreme_rays() {
        let gens = vec![
            RatVector::from_i64(&[1, 0, 0]),
            RatVector::from_i64(&[1, 1, 0]),
            RatVector::from_i64(&[1, 1, 1]),
        ];
        let reduced = remove_redundant_generators(&gens);
        assert_eq!(reduced.len(), 3);
    }

    #[test]
    fn constraint_deduction_with_and_without_reduction_agree() {
        let cone = figure3a_cone();
        let a = deduce_constraints_with_options(&cone, true);
        let b = deduce_constraints_with_options(&cone, false);
        let mut ta: Vec<String> = a.all_named().map(|c| c.text().to_string()).collect();
        let mut tb: Vec<String> = b.all_named().map(|c| c.text().to_string()).collect();
        ta.sort();
        tb.sort();
        assert_eq!(ta, tb);
    }

    #[test]
    fn dsl_model_constraints() {
        let space = CounterSpace::new(&["load.causes_walk", "load.pde$_miss"]);
        let mudd = compile_uop(
            "fig6a",
            r#"
            incr load.causes_walk;
            switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
            done;
            "#,
            &space,
        )
        .unwrap();
        let cone = ModelCone::from_mudd(&mudd).unwrap();
        let set = deduce_constraints(&cone);
        let texts: Vec<&str> = set.all_named().map(NamedConstraint::text).collect();
        // Constraint C of Figure 6b.
        assert!(texts.contains(&"load.pde$_miss <= load.causes_walk"));
        assert!(!set.is_empty());
        assert!(set.render().contains("load.pde$_miss"));
    }

    #[test]
    fn zero_cone_constraints_pin_every_counter() {
        let space = CounterSpace::new(&["a", "b"]);
        let cone = ModelCone::from_signatures("zero", &space, vec![CounterSignature::zero(2)], 1);
        let set = deduce_constraints(&cone);
        assert_eq!(set.equalities().len(), 2);
        assert!(set.inequalities().is_empty());
    }
}
