//! Guided model exploration: discovery and elimination over a feature lattice.
//!
//! CounterPoint classifies candidate μDDs — identified by the set of
//! microarchitectural features they include — as consistent or inconsistent with a
//! dataset of HEC observations (paper, Section 5).  The expert-in-the-loop search
//! has two phases: *discovery* adds features until a feasible model is found, and
//! *elimination* prunes features from a feasible candidate to find minimal feasible
//! feature sets.  Features present in every feasible model are reported as
//! (very likely) present in the real hardware.

use crate::cone::ModelCone;
use crate::feasibility::FeasibilityChecker;
use crate::observation::Observation;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A set of microarchitectural feature names (e.g. `TlbPrefetch`, `Merging`).
pub type FeatureSet = BTreeSet<String>;

/// Builds a [`FeatureSet`] from string slices.
pub fn feature_set<S: AsRef<str>>(features: &[S]) -> FeatureSet {
    features.iter().map(|f| f.as_ref().to_string()).collect()
}

/// A candidate model in an exploration: its name, the features it includes, and its
/// model cone.
#[derive(Clone, Debug)]
pub struct ExplorationModel {
    /// Model name (e.g. `m4` or `t0`).
    pub name: String,
    /// Features included in the model.
    pub features: FeatureSet,
    /// The model cone.
    pub cone: ModelCone,
}

impl ExplorationModel {
    /// Creates an exploration model.
    pub fn new(name: &str, features: FeatureSet, cone: ModelCone) -> ExplorationModel {
        ExplorationModel {
            name: name.to_string(),
            features,
            cone,
        }
    }
}

/// The result of evaluating one model against a dataset of observations
/// (one row of the paper's Tables 3, 5 and 7).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelEvaluation {
    /// Model name.
    pub name: String,
    /// Features included in the model.
    pub features: Vec<String>,
    /// Number of observations whose confidence region does not intersect the model
    /// cone.
    pub infeasible_count: usize,
    /// Names of the infeasible observations.
    pub infeasible_observations: Vec<String>,
    /// Total number of observations evaluated.
    pub total_observations: usize,
    /// `true` when every observation is feasible.
    pub feasible: bool,
}

/// Evaluates every model against every observation (single-threaded).
#[deprecated(
    since = "0.1.0",
    note = "use `counterpoint_session::Inquiry` (re-exported from the `counterpoint` facade), \
            which returns certificate-carrying verdicts instead of bare counts"
)]
pub fn evaluate_models(
    models: &[ExplorationModel],
    observations: &[Observation],
) -> Vec<ModelEvaluation> {
    #[allow(deprecated)]
    evaluate_models_with_threads(models, observations, 1)
}

/// Evaluates every model against every observation, fanning the model family
/// across `threads` worker threads (`0` = available parallelism) through the
/// batched feasibility engine.
///
/// Each model's observation sweep runs warm-started on a single worker, so the
/// evaluations are identical for every thread count and are returned in model
/// order.
#[deprecated(
    since = "0.1.0",
    note = "use `counterpoint_session::Inquiry` (re-exported from the `counterpoint` facade), \
            which returns certificate-carrying verdicts instead of bare counts"
)]
pub fn evaluate_models_with_threads(
    models: &[ExplorationModel],
    observations: &[Observation],
    threads: usize,
) -> Vec<ModelEvaluation> {
    let cones: Vec<&ModelCone> = models.iter().map(|m| &m.cone).collect();
    let verdicts = crate::batch::check_models(&cones, observations, threads);
    models
        .iter()
        .zip(verdicts)
        .map(|(model, feasible)| {
            let infeasible: Vec<String> = observations
                .iter()
                .zip(&feasible)
                .filter(|(_, ok)| !**ok)
                .map(|(o, _)| o.name().to_string())
                .collect();
            ModelEvaluation {
                name: model.name.clone(),
                features: model.features.iter().cloned().collect(),
                infeasible_count: infeasible.len(),
                feasible: infeasible.is_empty(),
                infeasible_observations: infeasible,
                total_observations: observations.len(),
            }
        })
        .collect()
}

/// Intersects a sequence of feasible models' feature sets: the features present
/// in *every* one of them, sorted, or `None` when the sequence is empty.
///
/// If the workload suite exercises the hardware broadly enough, these features
/// must be present in the real microarchitecture (paper, Figure 7's argument
/// for feature `F_Y`).  This is the one implementation behind
/// [`SearchGraph::essential_features`], the deprecated free
/// [`essential_features`] and the session layer's report field — they must
/// never drift apart.
pub fn essential_feature_intersection<'a, I, J>(feasible: I) -> Option<Vec<String>>
where
    I: IntoIterator<Item = J>,
    J: IntoIterator<Item = &'a String>,
{
    let mut sets = feasible.into_iter();
    let mut essential: BTreeSet<String> = sets.next()?.into_iter().cloned().collect();
    for set in sets {
        let current: BTreeSet<&String> = set.into_iter().collect();
        essential.retain(|f| current.contains(f));
    }
    Some(essential.into_iter().collect())
}

/// Features that appear in *every* feasible model of an evaluation set.
/// Returns `None` when no model is feasible.
#[deprecated(
    since = "0.1.0",
    note = "use `SearchGraph::essential_features` for search results, or \
            `essential_feature_intersection` for a bare list of feature sets"
)]
pub fn essential_features(evaluations: &[ModelEvaluation]) -> Option<Vec<String>> {
    essential_feature_intersection(
        evaluations
            .iter()
            .filter(|e| e.feasible)
            .map(|e| &e.features),
    )
}

/// Which phase of the guided search produced a step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchPhase {
    /// Feature added to relax violated constraints.
    Discovery,
    /// Feature removed to test minimality.
    Elimination,
}

/// One explored model in the guided search.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchStep {
    /// Features of the explored model.
    pub features: Vec<String>,
    /// Number of infeasible observations.
    pub infeasible_count: usize,
    /// `true` when no observation is infeasible.
    pub feasible: bool,
    /// The phase that generated this model.
    pub phase: SearchPhase,
}

/// An edge of the search graph (cf. the paper's Figures 8 and 10).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchEdge {
    /// Index of the originating step.
    pub from: usize,
    /// Index of the resulting step.
    pub to: usize,
    /// The feature added (discovery) or removed (elimination).
    pub feature: String,
    /// The phase of the transition.
    pub phase: SearchPhase,
}

/// The output of a guided search: every explored model, the transitions between
/// them, and the minimal feasible feature sets found.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchGraph {
    /// Explored models in visit order (index 0 is the initial model).
    pub steps: Vec<SearchStep>,
    /// Transitions between explored models.
    pub edges: Vec<SearchEdge>,
    /// Feature sets of feasible models that could not be pruned further without
    /// becoming infeasible.
    pub minimal_feasible: Vec<Vec<String>>,
}

impl SearchGraph {
    /// Feature sets of every feasible model explored.
    pub fn feasible_feature_sets(&self) -> Vec<Vec<String>> {
        self.steps
            .iter()
            .filter(|s| s.feasible)
            .map(|s| s.features.clone())
            .collect()
    }

    /// Features present in every feasible explored model (empty when no
    /// explored model is feasible).
    pub fn essential_features(&self) -> Vec<String> {
        essential_feature_intersection(
            self.steps
                .iter()
                .filter(|s| s.feasible)
                .map(|s| &s.features),
        )
        .unwrap_or_default()
    }
}

/// Automated discovery/elimination search over a feature lattice.
///
/// `G` maps a feature set to the corresponding model cone — in the Haswell case
/// study this is the model-family generator from `counterpoint-models`.
#[deprecated(
    since = "0.1.0",
    note = "use `LatticeSearch`, the certificate-pruned engine this type now \
            delegates to (it adds parallel evaluation and cross-model \
            certificate reuse while producing the identical `SearchGraph`)"
)]
pub struct GuidedSearch<G>
where
    G: Fn(&FeatureSet) -> ModelCone,
{
    inner: crate::lattice::LatticeSearch<G>,
}

#[allow(deprecated)] // the shim implements the deprecated type it replaces
impl<G> GuidedSearch<G>
where
    G: Fn(&FeatureSet) -> ModelCone,
{
    /// Creates a search over the given feature universe.
    pub fn new<S: AsRef<str>>(generator: G, all_features: &[S]) -> GuidedSearch<G> {
        GuidedSearch {
            inner: crate::lattice::LatticeSearch::new(generator, all_features),
        }
    }

    /// Caps the number of models the search may evaluate (default 256).
    pub fn set_max_models(&mut self, limit: usize) {
        self.inner.set_max_models(limit);
    }

    /// Runs the two-phase search from an initial feature set.
    ///
    /// A thin shim: the work happens in
    /// [`LatticeSearch`](crate::lattice::LatticeSearch) (single-threaded, so
    /// no `Sync` bound is required of the generator), which produces the
    /// identical [`SearchGraph`].
    pub fn run(&self, initial: &FeatureSet, observations: &[Observation]) -> SearchGraph {
        self.inner.run_sequential(initial, observations)
    }
}

/// The original cold-start sequential search, kept verbatim as the
/// executable specification of the search semantics: every candidate model is
/// re-solved from scratch through [`FeasibilityChecker`], with no caches, no
/// certificate reuse and no parallelism.
///
/// [`LatticeSearch`](crate::lattice::LatticeSearch) must produce a
/// [`SearchGraph`] equal to this function's output on every input — the
/// differential test suite (`tests/search_equivalence.rs`) and the
/// `lattice_search` benchmark baseline both call it.  It is *not* deprecated:
/// it is the oracle, not an API to migrate away from.
pub fn reference_search<G, S>(
    generator: &G,
    all_features: &[S],
    max_models: usize,
    initial: &FeatureSet,
    observations: &[Observation],
) -> SearchGraph
where
    G: Fn(&FeatureSet) -> ModelCone,
    S: AsRef<str>,
{
    let all_features: Vec<String> = all_features
        .iter()
        .map(|f| f.as_ref().to_string())
        .collect();
    // One cold solve per (candidate model, observation) pair — the literal
    // inner loop of the original search, with no state carried anywhere.
    // `FeasibilityChecker::is_feasible` and the batched engine agree verdict
    // for verdict on every input, so this is the semantics oracle.
    let count_infeasible = |features: &FeatureSet| {
        let cone = generator(features);
        let checker = FeasibilityChecker::new(&cone);
        observations
            .iter()
            .filter(|o| !checker.is_feasible(o))
            .count()
    };

    let mut steps: Vec<SearchStep> = Vec::new();
    let mut edges: Vec<SearchEdge> = Vec::new();
    let mut evaluated: BTreeSet<Vec<String>> = BTreeSet::new();

    let record = |features: &FeatureSet,
                  infeasible: usize,
                  phase: SearchPhase,
                  steps: &mut Vec<SearchStep>| {
        steps.push(SearchStep {
            features: features.iter().cloned().collect(),
            infeasible_count: infeasible,
            feasible: infeasible == 0,
            phase,
        });
        steps.len() - 1
    };

    // Discovery phase.
    let mut current = initial.clone();
    let mut current_count = count_infeasible(&current);
    evaluated.insert(current.iter().cloned().collect());
    let mut current_idx = record(&current, current_count, SearchPhase::Discovery, &mut steps);

    while current_count > 0 && steps.len() < max_models {
        let mut best: Option<(String, usize)> = None;
        for feature in &all_features {
            if current.contains(feature) {
                continue;
            }
            let mut candidate = current.clone();
            candidate.insert(feature.clone());
            let count = count_infeasible(&candidate);
            if best.as_ref().is_none_or(|(_, c)| count < *c) {
                best = Some((feature.clone(), count));
            }
        }
        let Some((feature, count)) = best else { break };
        if count >= current_count {
            // No single feature helps; stop discovery.
            break;
        }
        current.insert(feature.clone());
        current_count = count;
        evaluated.insert(current.iter().cloned().collect());
        let new_idx = record(&current, count, SearchPhase::Discovery, &mut steps);
        edges.push(SearchEdge {
            from: current_idx,
            to: new_idx,
            feature,
            phase: SearchPhase::Discovery,
        });
        current_idx = new_idx;
    }

    // Elimination phase (only if discovery reached a feasible model).
    let mut minimal: Vec<Vec<String>> = Vec::new();
    if current_count == 0 {
        reference_eliminate(
            &count_infeasible,
            max_models,
            &current,
            current_idx,
            &mut steps,
            &mut edges,
            &mut evaluated,
            &mut minimal,
        );
    }

    SearchGraph {
        steps,
        edges,
        minimal_feasible: minimal,
    }
}

/// The elimination recursion of [`reference_search`] (the original
/// `GuidedSearch::eliminate`, verbatim).
#[allow(clippy::too_many_arguments)]
fn reference_eliminate<C>(
    count_infeasible: &C,
    max_models: usize,
    features: &FeatureSet,
    from_idx: usize,
    steps: &mut Vec<SearchStep>,
    edges: &mut Vec<SearchEdge>,
    evaluated: &mut BTreeSet<Vec<String>>,
    minimal: &mut Vec<Vec<String>>,
) where
    C: Fn(&FeatureSet) -> usize,
{
    let mut any_feasible_child = false;
    for feature in features.iter().cloned().collect::<Vec<_>>() {
        if steps.len() >= max_models {
            break;
        }
        let mut candidate = features.clone();
        candidate.remove(&feature);
        let key: Vec<String> = candidate.iter().cloned().collect();
        if evaluated.contains(&key) {
            continue;
        }
        evaluated.insert(key);
        let count = count_infeasible(&candidate);
        steps.push(SearchStep {
            features: candidate.iter().cloned().collect(),
            infeasible_count: count,
            feasible: count == 0,
            phase: SearchPhase::Elimination,
        });
        let new_idx = steps.len() - 1;
        edges.push(SearchEdge {
            from: from_idx,
            to: new_idx,
            feature: feature.clone(),
            phase: SearchPhase::Elimination,
        });
        if count == 0 {
            any_feasible_child = true;
            reference_eliminate(
                count_infeasible,
                max_models,
                &candidate,
                new_idx,
                steps,
                edges,
                evaluated,
                minimal,
            );
        }
    }
    if !any_feasible_child {
        let set: Vec<String> = features.iter().cloned().collect();
        if !minimal.contains(&set) {
            minimal.push(set);
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // the deprecated shims stay under test until they are removed
mod tests {
    use super::*;
    use counterpoint_mudd::{CounterSignature, CounterSpace};

    /// A toy feature lattice over two counters (x, y):
    /// - the base model only allows x (signature [1, 0]);
    /// - feature "Fy" adds a path incrementing y once per x ([1, 1]);
    /// - feature "Fboth" adds an independent y-only path ([0, 1]).
    fn toy_cone(features: &FeatureSet) -> ModelCone {
        let space = CounterSpace::new(&["x", "y"]);
        let mut sigs = vec![CounterSignature::from_counts(vec![1, 0])];
        if features.contains("Fy") {
            sigs.push(CounterSignature::from_counts(vec![1, 1]));
        }
        if features.contains("Fboth") {
            sigs.push(CounterSignature::from_counts(vec![0, 1]));
        }
        let n = sigs.len();
        ModelCone::from_signatures("toy", &space, sigs, n)
    }

    fn observations() -> Vec<Observation> {
        vec![
            Observation::exact("x-only", &[10.0, 0.0]),
            Observation::exact("balanced", &[10.0, 6.0]),
        ]
    }

    #[test]
    fn evaluate_models_counts_infeasible_observations() {
        let models = vec![
            ExplorationModel::new(
                "base",
                feature_set::<&str>(&[]),
                toy_cone(&feature_set::<&str>(&[])),
            ),
            ExplorationModel::new(
                "with-fy",
                feature_set(&["Fy"]),
                toy_cone(&feature_set(&["Fy"])),
            ),
        ];
        let evals = evaluate_models(&models, &observations());
        assert_eq!(evals[0].infeasible_count, 1);
        assert!(!evals[0].feasible);
        assert_eq!(
            evals[0].infeasible_observations,
            vec!["balanced".to_string()]
        );
        assert_eq!(evals[1].infeasible_count, 0);
        assert!(evals[1].feasible);
        assert_eq!(evals[1].total_observations, 2);
    }

    #[test]
    fn essential_features_intersects_feasible_models() {
        let models = vec![
            ExplorationModel::new("a", feature_set(&["Fy"]), toy_cone(&feature_set(&["Fy"]))),
            ExplorationModel::new(
                "b",
                feature_set(&["Fy", "Fboth"]),
                toy_cone(&feature_set(&["Fy", "Fboth"])),
            ),
            ExplorationModel::new(
                "c",
                feature_set::<&str>(&[]),
                toy_cone(&feature_set::<&str>(&[])),
            ),
        ];
        let evals = evaluate_models(&models, &observations());
        let essential = essential_features(&evals).unwrap();
        assert_eq!(essential, vec!["Fy".to_string()]);
    }

    #[test]
    fn essential_features_none_when_nothing_is_feasible() {
        let models = vec![ExplorationModel::new(
            "base",
            feature_set::<&str>(&[]),
            toy_cone(&feature_set::<&str>(&[])),
        )];
        let evals = evaluate_models(&models, &[Observation::exact("bad", &[1.0, 5.0])]);
        assert!(essential_features(&evals).is_none());
    }

    #[test]
    fn guided_search_discovers_and_minimises() {
        let search = GuidedSearch::new(toy_cone, &["Fy", "Fboth"]);
        let graph = search.run(&feature_set::<&str>(&[]), &observations());

        // The initial (empty) model is infeasible; discovery must add a feature.
        assert!(!graph.steps[0].feasible);
        assert!(graph.steps.iter().any(|s| s.feasible));
        // Both Fy and Fboth individually explain the data, so the minimal feasible
        // sets are singletons.
        assert!(!graph.minimal_feasible.is_empty());
        for set in &graph.minimal_feasible {
            assert_eq!(set.len(), 1);
        }
        // Edges connect consecutive discovery steps.
        assert!(graph
            .edges
            .iter()
            .any(|e| e.phase == SearchPhase::Discovery));
    }

    #[test]
    fn guided_search_on_already_feasible_model_goes_straight_to_elimination() {
        let search = GuidedSearch::new(toy_cone, &["Fy", "Fboth"]);
        let graph = search.run(&feature_set(&["Fy", "Fboth"]), &observations());
        assert!(graph.steps[0].feasible);
        assert!(graph
            .edges
            .iter()
            .all(|e| e.phase == SearchPhase::Elimination));
        // {} is infeasible, so minimal sets are {Fy} and/or {Fboth}.
        assert!(!graph.minimal_feasible.is_empty());
        for set in &graph.minimal_feasible {
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn search_graph_essential_features() {
        let search = GuidedSearch::new(toy_cone, &["Fy", "Fboth"]);
        let graph = search.run(&feature_set::<&str>(&[]), &observations());
        // Both Fy-only and Fboth-only models are feasible, so no feature is
        // essential across all feasible models.
        let essential = graph.essential_features();
        assert!(essential.is_empty() || essential.len() == 1);
        assert!(!graph.feasible_feature_sets().is_empty());
    }

    #[test]
    fn search_respects_model_budget() {
        let mut search = GuidedSearch::new(toy_cone, &["Fy", "Fboth"]);
        search.set_max_models(1);
        let graph = search.run(&feature_set::<&str>(&[]), &observations());
        assert_eq!(graph.steps.len(), 1);
    }

    #[test]
    fn feature_set_helper_builds_sorted_sets() {
        let set = feature_set(&["b", "a", "b"]);
        assert_eq!(set.len(), 2);
        assert!(set.contains("a"));
    }
}
