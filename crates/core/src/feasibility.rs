//! Feasibility testing: does an observation's confidence region intersect the model
//! cone?

use crate::cone::ModelCone;
use crate::constraints::{ConstraintSet, NamedConstraint};
use crate::observation::Observation;
use counterpoint_geometry::ConstraintSense;
use counterpoint_lp::{LinearProgram, Relation};
use serde::Serialize;

/// The result of testing one observation against one model.
#[derive(Clone, Debug, Serialize)]
pub struct FeasibilityReport {
    /// The model's name.
    pub model: String,
    /// The observation's name.
    pub observation: String,
    /// `true` if the confidence region intersects the model cone.
    pub feasible: bool,
    /// The model constraints the observation violates (populated only when a
    /// constraint set was supplied and the observation is infeasible).
    pub violated: Vec<NamedConstraint>,
}

/// Tests observations against a model cone with the linear program of the paper's
/// Appendix A.
///
/// The LP has one non-negative flow variable per distinct μpath counter signature
/// and, for every principal axis of the observation's confidence region, a pair of
/// constraints bounding the projection of the counter-flow combination onto that
/// axis by the region's extent.  The observation is feasible iff the LP is.
#[derive(Clone, Debug)]
pub struct FeasibilityChecker<'a> {
    cone: &'a ModelCone,
    /// Generators as `f64` vectors (column `p` of the counter-flow matrix).
    generators: Vec<Vec<f64>>,
}

impl<'a> FeasibilityChecker<'a> {
    /// Prepares a checker for the given model cone.
    pub fn new(cone: &'a ModelCone) -> FeasibilityChecker<'a> {
        let generators = cone
            .generator_cone()
            .generators()
            .iter()
            .map(|g| g.to_f64_vec())
            .collect();
        FeasibilityChecker { cone, generators }
    }

    /// The model cone under test.
    pub fn cone(&self) -> &ModelCone {
        self.cone
    }

    /// Returns `true` if the observation's confidence region intersects the model
    /// cone.
    ///
    /// # Panics
    ///
    /// Panics if the observation's dimension differs from the cone's.
    pub fn is_feasible(&self, observation: &Observation) -> bool {
        assert_eq!(
            observation.dimension(),
            self.cone.dimension(),
            "observation and model must share a counter space"
        );
        let region = observation.region();

        // Degenerate cone: only the origin is producible.
        if self.generators.is_empty() {
            return region.contains(&vec![0.0; self.cone.dimension()]);
        }

        // Scale the problem so right-hand sides are O(1): raw counter values can be
        // in the billions and would otherwise interact badly with the simplex
        // feasibility tolerance.
        let scale = region
            .center()
            .iter()
            .fold(1.0f64, |acc, v| acc.max(v.abs()));

        let num_flows = self.generators.len();
        let mut lp = LinearProgram::new(num_flows);

        for (axis, width) in region.axes().iter().zip(region.half_widths().iter()) {
            // Coefficient of flow p: axis · generator_p.
            let coeffs: Vec<f64> = self.generators.iter().map(|g| dot(axis, g)).collect();
            // Work with rescaled flows f' = f / scale so both the coefficients and
            // the right-hand sides stay O(1) regardless of the raw counter
            // magnitudes.
            let centre_proj = dot(axis, region.center());
            let lo = (centre_proj - width) / scale;
            let hi = (centre_proj + width) / scale;
            lp.add_constraint(&coeffs, Relation::Ge, lo);
            lp.add_constraint(&coeffs, Relation::Le, hi);
        }

        lp.is_feasible()
    }

    /// Tests the observation and, when it is infeasible and a constraint set is
    /// supplied, identifies which model constraints it violates at the confidence
    /// level.
    ///
    /// A constraint `a·v ≥ 0` is violated when even the most favourable point of
    /// the confidence region's bounding box has `a·v < 0`; an equality `a·v = 0` is
    /// violated when the box's projection onto `a` excludes zero.
    pub fn check(
        &self,
        observation: &Observation,
        constraints: Option<&ConstraintSet>,
    ) -> FeasibilityReport {
        let feasible = self.is_feasible(observation);
        let mut violated = Vec::new();
        if !feasible {
            if let Some(set) = constraints {
                let region = observation.region();
                let scale = region
                    .center()
                    .iter()
                    .fold(1.0f64, |acc, v| acc.max(v.abs()));
                let tol = 1e-9 * scale;
                for named in set.all_named() {
                    let coeffs: Vec<f64> = named
                        .constraint()
                        .coeffs()
                        .iter()
                        .map(|c| c.to_f64())
                        .collect();
                    let (lo, hi) = region.interval_along(&coeffs);
                    let broken = match named.constraint().sense() {
                        ConstraintSense::GreaterEqualZero => hi < -tol,
                        ConstraintSense::Equality => lo > tol || hi < -tol,
                    };
                    if broken {
                        violated.push(named.clone());
                    }
                }
            }
        }
        FeasibilityReport {
            model: self.cone.name().to_string(),
            observation: observation.name().to_string(),
            feasible,
            violated,
        }
    }

    /// Convenience: counts how many of the observations are infeasible for this
    /// model (the quantity reported per model in the paper's Tables 3, 5 and 7).
    pub fn count_infeasible(&self, observations: &[Observation]) -> usize {
        observations.iter().filter(|o| !self.is_feasible(o)).count()
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::deduce_constraints;
    use counterpoint_mudd::{dsl::compile_uop, CounterSpace};

    fn space() -> CounterSpace {
        CounterSpace::new(&["load.causes_walk", "load.pde$_miss"])
    }

    fn fig6a_cone() -> ModelCone {
        let mudd = compile_uop(
            "fig6a",
            r#"
            incr load.causes_walk;
            do LookupPde$;
            switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
            done;
            "#,
            &space(),
        )
        .unwrap();
        ModelCone::from_mudd(&mudd).unwrap()
    }

    fn fig6c_cone() -> ModelCone {
        // Refined model: PDE cache looked up before the walk; requests may abort.
        let mudd = compile_uop(
            "fig6c",
            r#"
            do LookupPde$;
            switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
            switch Abort { Yes => done; No => incr load.causes_walk };
            done;
            "#,
            &space(),
        )
        .unwrap();
        ModelCone::from_mudd(&mudd).unwrap()
    }

    #[test]
    fn exact_observations_inside_and_outside() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        assert!(checker.is_feasible(&Observation::exact("ok", &[10.0, 4.0])));
        assert!(checker.is_feasible(&Observation::exact("edge", &[10.0, 10.0])));
        assert!(!checker.is_feasible(&Observation::exact("bad", &[4.0, 10.0])));
    }

    #[test]
    fn refined_model_accepts_the_violating_observation() {
        // The observation that refutes Figure 6a is feasible for Figure 6c — the
        // whole point of the refinement loop.
        let obs = Observation::exact("microbench", &[4.0, 10.0]);
        assert!(!FeasibilityChecker::new(&fig6a_cone()).is_feasible(&obs));
        assert!(FeasibilityChecker::new(&fig6c_cone()).is_feasible(&obs));
    }

    #[test]
    fn large_counts_do_not_break_feasibility() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        assert!(checker.is_feasible(&Observation::exact("big", &[2.0e9, 1.5e9])));
        assert!(!checker.is_feasible(&Observation::exact("big-bad", &[1.5e9, 2.0e9])));
    }

    #[test]
    fn noisy_observation_near_the_boundary_is_feasible() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        // Samples whose mean slightly violates the constraint (pde$_miss exceeds
        // causes_walk by 0.3 on average) but whose confidence region, widened by
        // the sample noise, still overlaps the cone.
        let samples: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let base = 1000.0 + (i % 5) as f64;
                let wiggle = (i % 7) as f64 - 3.0;
                vec![base, base + 0.3 + wiggle]
            })
            .collect();
        let obs = Observation::from_samples("noisy", &samples, 0.99);
        assert!(checker.is_feasible(&obs));
    }

    #[test]
    fn far_off_noisy_observation_is_infeasible() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let samples: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let jitter = (i % 5) as f64;
                vec![100.0 + jitter, 500.0 + jitter]
            })
            .collect();
        let obs = Observation::from_samples("noisy-bad", &samples, 0.99);
        assert!(!checker.is_feasible(&obs));
    }

    #[test]
    fn report_identifies_the_violated_constraint() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let constraints = deduce_constraints(&cone);
        let report = checker.check(&Observation::exact("bad", &[4.0, 10.0]), Some(&constraints));
        assert!(!report.feasible);
        assert_eq!(report.model, "fig6a");
        assert_eq!(report.observation, "bad");
        assert_eq!(report.violated.len(), 1);
        assert!(report.violated[0]
            .text()
            .contains("load.pde$_miss <= load.causes_walk"));
    }

    #[test]
    fn report_for_feasible_observation_has_no_violations() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let constraints = deduce_constraints(&cone);
        let report = checker.check(&Observation::exact("ok", &[10.0, 4.0]), Some(&constraints));
        assert!(report.feasible);
        assert!(report.violated.is_empty());
    }

    #[test]
    fn count_infeasible_matches_individual_checks() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let observations = vec![
            Observation::exact("a", &[10.0, 4.0]),
            Observation::exact("b", &[4.0, 10.0]),
            Observation::exact("c", &[1.0, 2.0]),
        ];
        assert_eq!(checker.count_infeasible(&observations), 2);
    }

    #[test]
    fn zero_cone_only_accepts_zero() {
        let cone = ModelCone::from_signatures(
            "zero",
            &space(),
            vec![counterpoint_mudd::CounterSignature::zero(2)],
            1,
        );
        let checker = FeasibilityChecker::new(&cone);
        assert!(checker.is_feasible(&Observation::exact("origin", &[0.0, 0.0])));
        assert!(!checker.is_feasible(&Observation::exact("nonzero", &[1.0, 0.0])));
    }

    #[test]
    #[should_panic(expected = "share a counter space")]
    fn dimension_mismatch_panics() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let _ = checker.is_feasible(&Observation::exact("bad", &[1.0]));
    }
}
