//! Feasibility testing: does an observation's confidence region intersect the model
//! cone?

use crate::cone::ModelCone;
use crate::constraints::{ConstraintSet, NamedConstraint};
use crate::observation::Observation;
use counterpoint_lp::{LinearProgram, Relation, Tableau};
use counterpoint_telemetry as telemetry;
use serde::Serialize;

/// The result of testing one observation against one model.
#[derive(Clone, Debug, Serialize)]
pub struct FeasibilityReport {
    /// The model's name.
    pub model: String,
    /// The observation's name.
    pub observation: String,
    /// `true` if the confidence region intersects the model cone.
    pub feasible: bool,
    /// The model constraints the observation violates (populated only when a
    /// constraint set was supplied and the observation is infeasible).
    pub violated: Vec<NamedConstraint>,
}

/// Tests observations against a model cone with the linear program of the paper's
/// Appendix A.
///
/// The LP has one non-negative flow variable per distinct μpath counter signature
/// and, for every principal axis of the observation's confidence region, a pair of
/// constraints bounding the projection of the counter-flow combination onto that
/// axis by the region's extent.  The observation is feasible iff the LP is.
#[derive(Clone, Debug)]
pub struct FeasibilityChecker<'a> {
    cone: &'a ModelCone,
    /// Generators as `f64` vectors (column `p` of the counter-flow matrix),
    /// borrowed from the cone's memoized conversion.
    generators: &'a [Vec<f64>],
}

/// Coefficient magnitudes beyond this guard trigger rescaling of the LP rows.
///
/// The guard keeps the fast path bit-identical to the historical formulation
/// (no division touches the floats at all for ordinarily scaled models) while
/// protecting pathological cones — generators with entries in the billions —
/// from having genuine violations crushed below the simplex tolerance.
const MAGNITUDE_GUARD: f64 = 1e6;

/// The observation-independent half of the feasibility LP: the `axis ·
/// generator` coefficient matrix for one (cone, axes) pair, equilibrated so
/// every stored row is O(1) even when the generators carry huge entries.
///
/// Row `k` of the LP is `lo_k ≤ rows[k] · f ≤ hi_k` where the bounds are the
/// observation's extent along axis `k` divided by `scale · bound_divs[k]`
/// (`scale` being the per-observation magnitude normaliser).  [`BatchFeasibility`]
/// computes this matrix once per (cone, axes) pair and reuses it across every
/// observation sharing those axes; [`FeasibilityChecker::is_feasible`] builds
/// it per call, which keeps both paths on byte-identical arithmetic.
///
/// [`BatchFeasibility`]: crate::batch::BatchFeasibility
#[derive(Clone, Debug)]
pub(crate) struct ConeMatrix {
    /// One scaled coefficient row per confidence-region axis.
    pub(crate) rows: Vec<Vec<f64>>,
    /// Per-row divisor already applied to the coefficients; the observation
    /// bounds must be divided by the same factor (times the global scale).
    pub(crate) bound_divs: Vec<f64>,
}

impl ConeMatrix {
    /// An empty matrix, to be populated by
    /// [`build_sparse_into`](ConeMatrix::build_sparse_into).
    pub(crate) fn empty() -> ConeMatrix {
        ConeMatrix {
            rows: Vec::new(),
            bound_divs: Vec::new(),
        }
    }

    /// Computes the coefficient matrix `A[k][p] = axis_k · generator_p`, then
    /// equilibrates: a global coefficient scale `c` (largest magnitude, applied
    /// only beyond [`MAGNITUDE_GUARD`]) followed by per-row normalisation for
    /// rows whose magnitude still deviates from O(1) by more than the guard.
    pub(crate) fn build(axes: &[Vec<f64>], generators: &[Vec<f64>]) -> ConeMatrix {
        let mut matrix = ConeMatrix {
            rows: axes
                .iter()
                .map(|axis| generators.iter().map(|g| dot(axis, g)).collect())
                .collect(),
            bound_divs: Vec::new(),
        };
        matrix.equilibrate();
        matrix
    }

    /// Like [`build`](ConeMatrix::build), but from the sparse generator form
    /// (only the non-zero entries of each generator, in index order) and
    /// reusing `self`'s allocations.  Skipping a generator's zero entries adds
    /// only exact `±0.0` terms to each dot product, so the resulting matrix is
    /// bit-identical to the dense build — the batched engine relies on that to
    /// agree with [`FeasibilityChecker::is_feasible`] verdict for verdict.
    pub(crate) fn build_sparse_into(&mut self, axes: &[Vec<f64>], sparse: &[Vec<(usize, f64)>]) {
        self.rows.resize_with(axes.len(), Vec::new);
        for (row, axis) in self.rows.iter_mut().zip(axes) {
            row.clear();
            row.extend(
                sparse
                    .iter()
                    .map(|g| g.iter().map(|&(i, c)| axis[i] * c).sum::<f64>()),
            );
        }
        self.equilibrate();
    }

    /// The magnitude-guard pass shared by both builders (see [`build`]).
    ///
    /// [`build`]: ConeMatrix::build
    fn equilibrate(&mut self) {
        let cmax = self
            .rows
            .iter()
            .flatten()
            .fold(0.0f64, |acc, v| acc.max(v.abs()));
        let cscale = if cmax > MAGNITUDE_GUARD { cmax } else { 1.0 };
        self.bound_divs.clear();
        for row in &mut self.rows {
            let rmax = row.iter().fold(0.0f64, |acc, v| acc.max(v.abs())) / cscale;
            let row_scale =
                if rmax > MAGNITUDE_GUARD || (rmax > 0.0 && rmax < 1.0 / MAGNITUDE_GUARD) {
                    rmax
                } else {
                    1.0
                };
            let div = cscale * row_scale;
            if div != 1.0 {
                for v in row.iter_mut() {
                    *v /= div;
                }
            }
            self.bound_divs.push(row_scale);
        }
    }
}

/// The sparse form of a generator set: per generator, its non-zero entries as
/// `(index, value)` pairs in index order.  μpath counter signatures touch only
/// a few of the campaign's counters, so this cuts the per-observation
/// coefficient matmul from `O(d²·p)` to `O(d·nnz)`.
pub(crate) fn sparsify_generators(generators: &[Vec<f64>]) -> Vec<Vec<(usize, f64)>> {
    generators
        .iter()
        .map(|g| {
            g.iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(i, &v)| (i, v))
                .collect()
        })
        .collect()
}

/// The per-observation magnitude normaliser: the LP works with rescaled flows
/// `f' = f / scale` so the right-hand sides stay O(1) regardless of the raw
/// counter magnitudes (which can be in the billions).
pub(crate) fn observation_scale(region: &counterpoint_stats::ConfidenceRegion) -> f64 {
    region
        .center()
        .iter()
        .fold(1.0f64, |acc, v| acc.max(v.abs()))
}

/// The `(lo, hi)` bounds of LP row `k` for the given observation: the region's
/// extent along axis `k`, normalised by the global scale and the row's
/// equilibration divisor.
pub(crate) fn row_bounds(
    region: &counterpoint_stats::ConfidenceRegion,
    matrix: &ConeMatrix,
    k: usize,
    scale: f64,
) -> (f64, f64) {
    let width = region.half_widths()[k];
    // Axis-aligned regions (exact observations, independent noise) project the
    // centre onto component k directly — bit-identical to the dense dot, one
    // read instead of O(d) multiplies.
    let centre_proj = if region.standard_axes() {
        region.center()[k]
    } else {
        dot(&region.axes()[k], region.center())
    };
    let div = scale * matrix.bound_divs[k];
    ((centre_proj - width) / div, (centre_proj + width) / div)
}

impl<'a> FeasibilityChecker<'a> {
    /// Prepares a checker for the given model cone.
    pub fn new(cone: &'a ModelCone) -> FeasibilityChecker<'a> {
        FeasibilityChecker {
            cone,
            generators: &cone.generators_f64().dense,
        }
    }

    /// The model cone under test.
    pub fn cone(&self) -> &ModelCone {
        self.cone
    }

    /// The cone's generators as `f64` vectors (shared with the batched engine).
    pub(crate) fn generators(&self) -> &[Vec<f64>] {
        self.generators
    }

    /// Returns `true` if the observation's confidence region intersects the model
    /// cone.
    ///
    /// # Panics
    ///
    /// Panics if the observation's dimension differs from the cone's.
    pub fn is_feasible(&self, observation: &Observation) -> bool {
        assert_eq!(
            observation.dimension(),
            self.cone.dimension(),
            "observation and model must share a counter space"
        );
        let region = observation.region();

        // Degenerate cone: only the origin is producible.
        if self.generators.is_empty() {
            return region.contains(&vec![0.0; self.cone.dimension()]);
        }

        let matrix = ConeMatrix::build(region.axes(), self.generators);
        let scale = observation_scale(region);
        let num_flows = self.generators.len();
        let mut lo = Vec::with_capacity(matrix.rows.len());
        let mut hi = Vec::with_capacity(matrix.rows.len());
        for k in 0..matrix.rows.len() {
            let (l, h) = row_bounds(region, &matrix, k, scale);
            lo.push(l);
            hi.push(h);
        }

        // A cold dual-simplex solve on the band tableau — the same algorithm
        // the batched engine warm-starts, so the two paths agree by
        // construction.  (The historical two-phase primal remains as the
        // fallback; its ratio test tolerates near-zero pivots and can corrupt
        // the phase-1 optimum on ill-conditioned instances, which the dual's
        // largest-magnitude pivot selection avoids.)
        let mut tableau = Tableau::band(num_flows, &matrix.rows);
        match tableau.resolve(&lo, &hi) {
            Ok(feasible) => feasible,
            Err(_) => {
                let mut lp = LinearProgram::new(num_flows);
                for (k, row) in matrix.rows.iter().enumerate() {
                    lp.add_constraint(row, Relation::Ge, lo[k]);
                    lp.add_constraint(row, Relation::Le, hi[k]);
                }
                match lp.try_solve() {
                    Ok(outcome) => outcome.is_feasible(),
                    // Every solve path cycled out of its iteration budget.  A
                    // refutation needs a certificate and none exists, so the
                    // observation deterministically counts as not refuted —
                    // one degenerate enumerated cone must not abort a sweep.
                    Err(_) => {
                        telemetry::add(telemetry::Metric::LpInconclusiveVerdicts, 1);
                        true
                    }
                }
            }
        }
    }

    /// Tests the observation and, when it is infeasible and a constraint set is
    /// supplied, identifies which model constraints it violates at the confidence
    /// level.
    ///
    /// A constraint `a·v ≥ 0` is violated when even the most favourable point of
    /// the confidence region's bounding box has `a·v < 0`; an equality `a·v = 0` is
    /// violated when the box's projection onto `a` excludes zero.
    pub fn check(
        &self,
        observation: &Observation,
        constraints: Option<&ConstraintSet>,
    ) -> FeasibilityReport {
        let feasible = self.is_feasible(observation);
        let mut violated = Vec::new();
        if !feasible {
            if let Some(set) = constraints {
                violated = set
                    .violated_by(observation.region())
                    .into_iter()
                    .cloned()
                    .collect();
            }
        }
        FeasibilityReport {
            model: self.cone.name().to_string(),
            observation: observation.name().to_string(),
            feasible,
            violated,
        }
    }

    /// Convenience: counts how many of the observations are infeasible for this
    /// model (the quantity reported per model in the paper's Tables 3, 5 and 7).
    ///
    /// Routes through the warm-started [`BatchFeasibility`] engine — the
    /// verdicts are the ones [`is_feasible`] would return, reached with the
    /// coefficient matrix and LP basis shared across the batch.
    ///
    /// [`BatchFeasibility`]: crate::batch::BatchFeasibility
    /// [`is_feasible`]: FeasibilityChecker::is_feasible
    pub fn count_infeasible(&self, observations: &[Observation]) -> usize {
        crate::batch::BatchFeasibility::new(self.cone).count_infeasible(observations)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::deduce_constraints;
    use counterpoint_mudd::{dsl::compile_uop, CounterSpace};

    fn space() -> CounterSpace {
        CounterSpace::new(&["load.causes_walk", "load.pde$_miss"])
    }

    fn fig6a_cone() -> ModelCone {
        let mudd = compile_uop(
            "fig6a",
            r#"
            incr load.causes_walk;
            do LookupPde$;
            switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
            done;
            "#,
            &space(),
        )
        .unwrap();
        ModelCone::from_mudd(&mudd).unwrap()
    }

    fn fig6c_cone() -> ModelCone {
        // Refined model: PDE cache looked up before the walk; requests may abort.
        let mudd = compile_uop(
            "fig6c",
            r#"
            do LookupPde$;
            switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
            switch Abort { Yes => done; No => incr load.causes_walk };
            done;
            "#,
            &space(),
        )
        .unwrap();
        ModelCone::from_mudd(&mudd).unwrap()
    }

    #[test]
    fn exact_observations_inside_and_outside() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        assert!(checker.is_feasible(&Observation::exact("ok", &[10.0, 4.0])));
        assert!(checker.is_feasible(&Observation::exact("edge", &[10.0, 10.0])));
        assert!(!checker.is_feasible(&Observation::exact("bad", &[4.0, 10.0])));
    }

    #[test]
    fn refined_model_accepts_the_violating_observation() {
        // The observation that refutes Figure 6a is feasible for Figure 6c — the
        // whole point of the refinement loop.
        let obs = Observation::exact("microbench", &[4.0, 10.0]);
        assert!(!FeasibilityChecker::new(&fig6a_cone()).is_feasible(&obs));
        assert!(FeasibilityChecker::new(&fig6c_cone()).is_feasible(&obs));
    }

    #[test]
    fn large_counts_do_not_break_feasibility() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        assert!(checker.is_feasible(&Observation::exact("big", &[2.0e9, 1.5e9])));
        assert!(!checker.is_feasible(&Observation::exact("big-bad", &[1.5e9, 2.0e9])));
    }

    #[test]
    fn noisy_observation_near_the_boundary_is_feasible() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        // Samples whose mean slightly violates the constraint (pde$_miss exceeds
        // causes_walk by 0.3 on average) but whose confidence region, widened by
        // the sample noise, still overlaps the cone.
        let samples: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let base = 1000.0 + (i % 5) as f64;
                let wiggle = (i % 7) as f64 - 3.0;
                vec![base, base + 0.3 + wiggle]
            })
            .collect();
        let obs = Observation::from_samples("noisy", &samples, 0.99);
        assert!(checker.is_feasible(&obs));
    }

    #[test]
    fn far_off_noisy_observation_is_infeasible() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let samples: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let jitter = (i % 5) as f64;
                vec![100.0 + jitter, 500.0 + jitter]
            })
            .collect();
        let obs = Observation::from_samples("noisy-bad", &samples, 0.99);
        assert!(!checker.is_feasible(&obs));
    }

    #[test]
    fn report_identifies_the_violated_constraint() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let constraints = deduce_constraints(&cone);
        let report = checker.check(&Observation::exact("bad", &[4.0, 10.0]), Some(&constraints));
        assert!(!report.feasible);
        assert_eq!(report.model, "fig6a");
        assert_eq!(report.observation, "bad");
        assert_eq!(report.violated.len(), 1);
        assert!(report.violated[0]
            .text()
            .contains("load.pde$_miss <= load.causes_walk"));
    }

    #[test]
    fn report_for_feasible_observation_has_no_violations() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let constraints = deduce_constraints(&cone);
        let report = checker.check(&Observation::exact("ok", &[10.0, 4.0]), Some(&constraints));
        assert!(report.feasible);
        assert!(report.violated.is_empty());
    }

    #[test]
    fn count_infeasible_matches_individual_checks() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let observations = vec![
            Observation::exact("a", &[10.0, 4.0]),
            Observation::exact("b", &[4.0, 10.0]),
            Observation::exact("c", &[1.0, 2.0]),
        ];
        assert_eq!(checker.count_infeasible(&observations), 2);
    }

    #[test]
    fn zero_cone_only_accepts_zero() {
        let cone = ModelCone::from_signatures(
            "zero",
            &space(),
            vec![counterpoint_mudd::CounterSignature::zero(2)],
            1,
        );
        let checker = FeasibilityChecker::new(&cone);
        assert!(checker.is_feasible(&Observation::exact("origin", &[0.0, 0.0])));
        assert!(!checker.is_feasible(&Observation::exact("nonzero", &[1.0, 0.0])));
    }

    #[test]
    #[should_panic(expected = "share a counter space")]
    fn dimension_mismatch_panics() {
        let cone = fig6a_cone();
        let checker = FeasibilityChecker::new(&cone);
        let _ = checker.is_feasible(&Observation::exact("bad", &[1.0]));
    }

    /// A cone whose single generator mixes magnitudes across nine orders:
    /// (10⁹, 1).  Before the coefficient-aware rescaling, the global scale was
    /// derived from the observation center alone, so the y-axis violation of
    /// the off-ray observation below was crushed to ~1e-9 in LP units — under
    /// the simplex feasibility tolerance — and misreported as feasible.
    fn huge_coefficient_cone() -> ModelCone {
        ModelCone::from_signatures(
            "huge",
            &CounterSpace::new(&["x", "y"]),
            vec![counterpoint_mudd::CounterSignature::from_counts(vec![
                1_000_000_000,
                1,
            ])],
            1,
        )
    }

    #[test]
    fn huge_coefficients_do_not_hide_violations() {
        let cone = huge_coefficient_cone();
        let checker = FeasibilityChecker::new(&cone);
        // On the generator ray: feasible.
        assert!(checker.is_feasible(&Observation::exact("on", &[1.0e9, 1.0])));
        // A full counter off the ray in y: must be infeasible even though the
        // violation is one part in 10⁹ of the x magnitude.
        assert!(!checker.is_feasible(&Observation::exact("off", &[1.0e9, 0.0])));
        // And well clear of the ray in the other direction.
        assert!(!checker.is_feasible(&Observation::exact("far", &[1.0e9, 3.0])));
    }

    #[test]
    fn zero_center_with_huge_coefficients_is_feasible() {
        // A center of all zeros yields the neutral global scale (1.0); the
        // coefficient-derived row scaling must keep the LP well-conditioned on
        // its own.  The origin is in every cone, so this must stay feasible.
        let cone = huge_coefficient_cone();
        let checker = FeasibilityChecker::new(&cone);
        assert!(checker.is_feasible(&Observation::exact("origin", &[0.0, 0.0])));
        // Noisy all-zero-mean observation with huge half-widths: still contains
        // the origin, still feasible.
        let samples: Vec<Vec<f64>> = (0..16)
            .map(|i| {
                let swing = if i % 2 == 0 { 1.0e9 } else { -1.0e9 };
                vec![swing, swing * 1.0e-9]
            })
            .collect();
        let obs = Observation::from_samples("swing", &samples, 0.99);
        assert!(checker.is_feasible(&obs));
    }

    #[test]
    fn relatively_tiny_coefficients_do_not_hide_violations() {
        // The mirrored pathology: after the global coefficient scale divides by
        // the largest magnitude (10⁹), the x row's coefficients sit at 1e-9 and
        // the per-row equilibration must scale them back up so a violation in x
        // stays visible.
        let cone = ModelCone::from_signatures(
            "mirror",
            &CounterSpace::new(&["x", "y"]),
            vec![counterpoint_mudd::CounterSignature::from_counts(vec![
                1,
                1_000_000_000,
            ])],
            1,
        );
        let checker = FeasibilityChecker::new(&cone);
        assert!(checker.is_feasible(&Observation::exact("on", &[1.0, 1.0e9])));
        // y pins the flow to 1e-9·…, which forces x ≈ 1, not 0.
        assert!(!checker.is_feasible(&Observation::exact("off", &[0.0, 1.0e9])));
    }
}
