//! `LatticeSearch`: the parallel, certificate-pruned refinement engine behind
//! the paper's expert-guided search (Sections 5–6, Figures 8 and 10).
//!
//! The legacy `GuidedSearch` walked the feature lattice with one cold
//! [`FeasibilityChecker`](crate::FeasibilityChecker) solve per (candidate
//! model, observation) pair.  This engine keeps the *search semantics*
//! identical — the [`SearchGraph`] it emits is equal, node for node and edge
//! for edge, to the sequential reference
//! ([`reference_search`](crate::explore::reference_search)) — while changing
//! how every infeasible-observation count is obtained:
//!
//! * **Batched, warm-started solves.**  Each candidate model sweeps the
//!   observation set through one [`BatchFeasibility`] engine, so the
//!   `axis · generator` coefficient matrix is built once per (cone, axes)
//!   pair and the dual simplex warm-starts from the previous observation's
//!   basis instead of from scratch.
//! * **Cross-model certificate pruning.**  A Farkas certificate `c` that
//!   refuted some model satisfies `c · g ≥ 0` for that model's generators
//!   while the observation's whole confidence region sits strictly on the
//!   negative side.  The same direction refutes *any* model whose cone it
//!   contains — in particular every submodel reached by removing features —
//!   and containment is just `c · g ≥ 0` for the new model's generators, an
//!   `O(d · nnz)` check ([`BatchFeasibility::certificate_applies`]).  The
//!   engine keeps a bounded pool of harvested certificates; a pool hit settles
//!   an observation without ever touching the LP, which routinely eliminates
//!   whole sublattices' worth of solves during elimination.  Each pooled
//!   direction's *separated-observation bitmask* is model-independent, so it
//!   is precomputed once and pruning a model costs one containment check per
//!   direction plus a bit test per observation.
//! * **Cross-model witness reuse.**  The feasible side has its own sound
//!   shortcut: a witness cone point `Σ fⱼ·gⱼ` harvested from one model is a
//!   point of *any* model whose generator set contains the combination's
//!   support — an exact set-membership check — and the observations a scaled
//!   ray pierces are precomputed as a bitmask the same way.  Feasible
//!   observations, which certificates can never settle, then skip the LP too.
//! * **Parent→child basis handoff.**  The dual-simplex basis a parent model's
//!   sweep ended in is re-indexed onto the child model's generator columns
//!   (unmappable columns fall back to their slack) and seeds the child's first
//!   solve on matching axes ([`BatchFeasibility::set_warm_basis`]).
//! * **Deterministic parallel evaluation.**  The driver runs the exact
//!   sequential discovery/elimination recursion, but obtains the counts of
//!   each frontier — all single-feature additions of a discovery step, all
//!   single-feature removals of an elimination node — from a batch evaluator
//!   that fans the candidates across `std::thread` workers with the same
//!   index-slot merge discipline as `Campaign` and
//!   [`check_models_verdicts`](crate::batch::check_models_verdicts).  An
//!   infeasible-observation count is a pure function of the feature set
//!   (pruning is *sound*: a certificate hit is always a verdict the LP would
//!   reach too, with the same margin the batch engine applies internally), so
//!   the resulting graph — and any `Report` JSON embedding it — is
//!   byte-identical for every thread count and across repeated runs.
//!
//! What is *not* deterministic is the incidental work accounting: which
//! models happened to be settled from the pool depends on evaluation timing,
//! so [`LatticeStats`] is diagnostic output, not part of the result contract.

use crate::batch::{BatchFeasibility, FeasibilityVerdict, CERTIFICATE_MARGIN};
use crate::cone::ModelCone;
use crate::explore::{FeatureSet, SearchEdge, SearchGraph, SearchPhase, SearchStep};
use crate::feasibility::observation_scale;
use crate::observation::Observation;
use counterpoint_telemetry as telemetry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Upper bound on the shared certificate pool (most recently harvested
/// first).  Generously above the per-engine cache: the pool serves every
/// model of the search, not one cone.
const POOL_CAP: usize = 32;

/// Floor of the witness-ray pool cap.  The effective cap is
/// [`ray_pool_cap`]: wider than the certificate cap because one ray settles
/// only the observations its scaled direction actually pierces, and scaled
/// with the campaign because the dominant harvest is one self-witness ray per
/// observation.
const RAY_POOL_CAP: usize = 96;

/// The witness-ray pool cap for a campaign of `observations` observations:
/// roughly two rays per observation (its own self-witness plus room for
/// cross-observation rays), never below [`RAY_POOL_CAP`].
fn ray_pool_cap(observations: usize) -> usize {
    RAY_POOL_CAP.max(2 * observations)
}

/// Work accounting of one [`LatticeSearch`] run.
///
/// Diagnostic only: the counts of *what was computed how* depend on worker
/// timing (a model evaluated before a certificate lands in the pool pays for
/// its LPs; evaluated after, it may be pruned), so two runs of the same search
/// can differ here even though their [`SearchGraph`]s are byte-identical.
#[derive(Clone, Debug, Default)]
pub struct LatticeStats {
    /// Distinct models whose observation sweep was actually computed.
    pub models_evaluated: usize,
    /// Evaluation requests answered from the memo without any solving (the
    /// legacy search re-solved these from scratch).
    pub memoized_hits: usize,
    /// Total (model, observation) pairs decided, pruned or solved.
    pub observations_swept: usize,
    /// Observations settled by a pooled cross-model Farkas certificate —
    /// `O(d · nnz)` containment plus a bit test, no LP.
    pub certificate_pruned: usize,
    /// Observations settled feasible by a pooled cross-model witness ray —
    /// an exact support-containment check plus a bit test, no LP.
    pub witness_settled: usize,
    /// Observations that reached the batched LP engine.
    pub lp_tested: usize,
    /// Observations on which the warm engine failed to converge on every
    /// path and the verdict came from the cold reference solver instead
    /// (normally zero).
    pub inconclusive: usize,
    /// Child models whose first solve was seeded with a parent basis.
    pub warm_basis_handoffs: usize,
    /// Pooled Farkas certificates harvested under a *different* family key
    /// (see [`CertificatePool`]) that applied to a model of this search.
    pub cross_family_certificate_hits: usize,
    /// Pooled witness rays harvested under a different family key whose
    /// support this search's models contained.
    pub cross_family_witness_hits: usize,
    /// Certificates in the shared pool when the search finished.
    pub pool_certificates: usize,
    /// Witness rays in the shared pool when the search finished.
    pub pool_rays: usize,
    /// Per-model record of certificate prunes and witness settlements, in
    /// evaluation-request order — the soundness test suite re-checks these
    /// against the cold solver.
    pub pruned_models: Vec<PrunedModel>,
}

/// One model that had observations settled by the cross-model pool.
#[derive(Clone, Debug)]
pub struct PrunedModel {
    /// The model's feature set (sorted).
    pub features: Vec<String>,
    /// Indices (into the search's observation list) of the observations a
    /// pooled certificate refuted without an LP solve.
    pub pruned_observations: Vec<usize>,
    /// Indices of the observations a pooled witness ray settled feasible
    /// without an LP solve.
    pub witness_observations: Vec<usize>,
}

/// The warm state a parent model hands to its children: the parent's
/// generators (to re-index basis columns), the axes its tableau was bound to,
/// and the basis its sweep ended in.
#[derive(Clone, Debug)]
struct Handoff {
    generators: Vec<Vec<f64>>,
    axes: Vec<Vec<f64>>,
    basis: Vec<usize>,
}

/// A pooled Farkas certificate: the separating direction plus the bitmask of
/// observations whose whole confidence region it separates (with the engine's
/// margin).  The mask depends on the *observations* only — not on any model —
/// so it is computed once when the certificate enters the pool; pruning a
/// model then costs one `O(d · nnz)` containment check per pooled direction
/// plus a bit test per observation.
#[derive(Clone, Debug)]
struct PoolCertificate {
    direction: Vec<f64>,
    separated: Vec<u64>,
    /// Canonical key of the model family whose sweep harvested the entry
    /// (empty for a search without a shared pool).  Applying an entry whose
    /// origin differs from the current search's key is a *cross-family* hit.
    origin: Arc<str>,
}

/// A pooled witness ray: a cone point (as a unit ∞-norm ray) harvested from a
/// feasible solve, its support (the bit-patterns of the generators its flow
/// combination used), and the bitmask of observations whose bounding box a
/// positive scaling of the ray pierces (with the engine's margin).  The ray
/// is provably a point of any model containing every support generator —
/// an exact set-membership check — and then every masked observation is
/// feasible for that model without touching the LP.  Like certificate masks,
/// the pierce mask is observation-only and computed once.
#[derive(Clone, Debug)]
struct PoolRay {
    ray: Vec<f64>,
    support: Vec<Vec<u64>>,
    pierced: Vec<u64>,
    /// See [`PoolCertificate::origin`].
    origin: Arc<str>,
}

/// The cross-model reuse pool: refutation certificates and feasibility
/// witness rays, each capped MRU, shared by every worker of one search.
/// Entries are `Arc`ed so readers snapshot the pool with a pointer-copy clone
/// and run the `O(d · nnz)` containment scans *outside* the lock — workers
/// never serialize on each other's pruning phase.
#[derive(Debug, Default)]
struct SharedPool {
    certificates: Mutex<Vec<Arc<PoolCertificate>>>,
    rays: Mutex<Vec<Arc<PoolRay>>>,
}

/// A certificate/witness pool that outlives one search, shared *across* the
/// lattice searches of an enumerated model-family sweep.
///
/// Pooled entries carry per-observation bitmasks, so reuse is only sound when
/// every attached search runs over a byte-identical observation list; the
/// pool records a fingerprint of the first list it sees and a search over a
/// different list silently falls back to a private pool (soundness never
/// depends on a pool hit — a miss just costs the LP solve the hit would have
/// skipped).  Each entry is tagged with the canonical signature of the family
/// that harvested it; when an entry prunes or settles observations for a
/// search attached under a *different* family key, the engine counts a
/// cross-family hit ([`LatticeStats::cross_family_certificate_hits`] and the
/// `cross_family_certificate_hits` / `cross_family_witness_hits` telemetry
/// counters).
///
/// Cloning is cheap and shares the same underlying pool.  Attach with
/// [`LatticeSearch::set_shared_pool`].
#[derive(Clone, Debug, Default)]
pub struct CertificatePool {
    fingerprint: Arc<Mutex<Option<u64>>>,
    pool: Arc<SharedPool>,
}

impl CertificatePool {
    /// An empty pool.
    pub fn new() -> CertificatePool {
        CertificatePool::default()
    }

    /// Number of pooled Farkas certificates.
    pub fn num_certificates(&self) -> usize {
        self.pool
            .certificates
            .lock()
            .expect("certificate pool poisoned")
            .len()
    }

    /// Number of pooled witness rays.
    pub fn num_rays(&self) -> usize {
        self.pool.rays.lock().expect("ray pool poisoned").len()
    }

    /// Binds the pool to an observation list: the first caller installs its
    /// fingerprint, later callers get the shared pool only on an exact match.
    fn attach(&self, observations: &[Observation]) -> Option<Arc<SharedPool>> {
        let fp = observations_fingerprint(observations);
        let mut slot = self.fingerprint.lock().expect("pool fingerprint poisoned");
        match *slot {
            None => {
                *slot = Some(fp);
                Some(Arc::clone(&self.pool))
            }
            Some(bound) if bound == fp => Some(Arc::clone(&self.pool)),
            Some(_) => None,
        }
    }
}

/// An exact (bit-level) FNV-1a fingerprint of an observation list: names,
/// dimensions, region centers, axes and half-widths.  Pooled observation
/// masks are valid precisely for lists with equal fingerprints.
fn observations_fingerprint(observations: &[Observation]) -> u64 {
    fn eat(hash: &mut u64, bytes: &[u8]) {
        for &byte in bytes {
            *hash ^= u64::from(byte);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for observation in observations {
        eat(&mut hash, observation.name().as_bytes());
        eat(&mut hash, &[0x1f]);
        let region = observation.region();
        for v in region.center() {
            eat(&mut hash, &v.to_bits().to_le_bytes());
        }
        for axis in region.axes() {
            for v in axis {
                eat(&mut hash, &v.to_bits().to_le_bytes());
            }
        }
        for v in region.half_widths() {
            eat(&mut hash, &v.to_bits().to_le_bytes());
        }
    }
    hash
}

/// Computes the separated-observation bitmask of a direction: bit `i` is set
/// when observation `i`'s region lies strictly below the direction by at
/// least its margin.
fn separation_mask(direction: &[f64], observations: &[Observation], margins: &[f64]) -> Vec<u64> {
    let mut mask = vec![0u64; observations.len().div_ceil(64)];
    for (i, observation) in observations.iter().enumerate() {
        if observation.region().interval_along(direction).1 < -margins[i] {
            mask[i / 64] |= 1 << (i % 64);
        }
    }
    mask
}

/// Computes the pierced-observation bitmask of a ray: bit `i` is set when
/// some positive scaling of the ray lies inside observation `i`'s bounding
/// box with the engine's margin.
fn pierce_mask(ray: &[f64], observations: &[Observation], margins: &[f64]) -> Vec<u64> {
    let mut mask = vec![0u64; observations.len().div_ceil(64)];
    for (i, observation) in observations.iter().enumerate() {
        if crate::batch::ray_pierces_box(ray, observation.region(), margins[i]) {
            mask[i / 64] |= 1 << (i % 64);
        }
    }
    mask
}

/// Reads bit `i` of an observation mask.
fn mask_bit(mask: &[u64], i: usize) -> bool {
    mask[i / 64] & (1 << (i % 64)) != 0
}

/// The count provider the driver pulls from: a batch of candidate feature
/// sets plus the batch's parent model (for warm-state handoff), returning one
/// infeasible-observation count per candidate.
type BatchEval<'a> = dyn FnMut(&[FeatureSet], Option<&FeatureSet>) -> Vec<usize> + 'a;

/// The outcome of sweeping one candidate model over the observation set.
struct ModelOutcome {
    infeasible: usize,
    pruned: Vec<usize>,
    witnessed: Vec<usize>,
    inconclusive: usize,
    /// Applied pool certificates harvested under a different family key.
    cross_certificates: usize,
    /// Applied pool rays harvested under a different family key.
    cross_rays: usize,
    handoff: Option<Handoff>,
    got_warm_basis: bool,
}

/// Parallel certificate-pruned discovery/elimination search over a feature
/// lattice.
///
/// `G` maps a feature set to its model cone (in the Haswell case study, the
/// model-family generator from `counterpoint-models`).  The search semantics
/// are exactly those of the sequential reference — see the module docs for
/// what changes under the hood and why the output cannot.
///
/// # Example
///
/// ```
/// use counterpoint_core::{feature_set, FeatureSet, LatticeSearch, ModelCone, Observation};
/// use counterpoint_mudd::{CounterSignature, CounterSpace};
///
/// // A toy lattice: the base model emits x only; feature "Fy" adds a path
/// // incrementing y alongside x.
/// let generator = |features: &FeatureSet| {
///     let space = CounterSpace::new(&["x", "y"]);
///     let mut sigs = vec![CounterSignature::from_counts(vec![1, 0])];
///     if features.contains("Fy") {
///         sigs.push(CounterSignature::from_counts(vec![1, 1]));
///     }
///     let n = sigs.len();
///     ModelCone::from_signatures("toy", &space, sigs, n)
/// };
/// let observations = vec![Observation::exact("balanced", &[10.0, 6.0])];
/// let search = LatticeSearch::new(generator, &["Fy"]);
/// let graph = search.run(&FeatureSet::new(), &observations);
/// assert!(!graph.steps[0].feasible, "the base model cannot produce y counts");
/// assert_eq!(graph.essential_features(), vec!["Fy".to_string()]);
/// ```
pub struct LatticeSearch<G>
where
    G: Fn(&FeatureSet) -> ModelCone,
{
    generator: G,
    all_features: Vec<String>,
    max_models: usize,
    threads: usize,
    shared: Option<(CertificatePool, Arc<str>)>,
}

impl<G> LatticeSearch<G>
where
    G: Fn(&FeatureSet) -> ModelCone,
{
    /// Creates a search over the given feature universe (1 worker thread,
    /// 256-model budget).
    pub fn new<S: AsRef<str>>(generator: G, all_features: &[S]) -> LatticeSearch<G> {
        LatticeSearch {
            generator,
            all_features: all_features
                .iter()
                .map(|f| f.as_ref().to_string())
                .collect(),
            max_models: 256,
            threads: 1,
            shared: None,
        }
    }

    /// Caps the number of models the search may record (default 256).
    pub fn set_max_models(&mut self, limit: usize) {
        self.max_models = limit;
    }

    /// Attaches a cross-search [`CertificatePool`], tagging every entry this
    /// search harvests with `family` (the canonical signature of the model
    /// family being searched).  Entries harvested under a different family
    /// key that prune or settle observations here are counted as cross-family
    /// hits.  The search graph is unaffected — pool pruning is sound, so the
    /// counts are pure functions of the feature set with or without the pool.
    pub fn set_shared_pool(&mut self, pool: &CertificatePool, family: &str) {
        self.shared = Some((pool.clone(), Arc::from(family)));
    }

    /// Sets the worker-thread budget for frontier evaluation (`0` = the
    /// host's available parallelism; default 1).  The search graph is
    /// byte-identical for every value.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// The single-threaded entry point behind the deprecated `GuidedSearch`
    /// shim: no `Sync` bound on the generator, same graph as [`run`].
    ///
    /// [`run`]: LatticeSearch::run
    pub(crate) fn run_sequential(
        &self,
        initial: &FeatureSet,
        observations: &[Observation],
    ) -> SearchGraph {
        let mut evaluator = Evaluator::new(&self.generator, observations, self.shared.as_ref());
        self.drive(initial, &mut |sets, parent| {
            evaluator.counts_seq(sets, parent)
        })
    }

    /// The shared driver: the exact sequential discovery/elimination
    /// recursion, with every infeasible count obtained through `eval` (which
    /// memoises and may batch candidates across workers).
    fn drive(&self, initial: &FeatureSet, eval: &mut BatchEval<'_>) -> SearchGraph {
        let mut steps: Vec<SearchStep> = Vec::new();
        let mut edges: Vec<SearchEdge> = Vec::new();
        let mut evaluated: BTreeSet<Vec<String>> = BTreeSet::new();

        let record = |features: &FeatureSet,
                      infeasible: usize,
                      phase: SearchPhase,
                      steps: &mut Vec<SearchStep>| {
            steps.push(SearchStep {
                features: features.iter().cloned().collect(),
                infeasible_count: infeasible,
                feasible: infeasible == 0,
                phase,
            });
            steps.len() - 1
        };

        // Discovery: greedily add the feature that most reduces the number of
        // infeasible observations.  All of a step's candidates are independent,
        // so they are evaluated as one batch; the winner is chosen by the same
        // first-strict-minimum rule as the sequential reference.
        let mut current = initial.clone();
        let mut current_count = eval(std::slice::from_ref(&current), None)[0];
        evaluated.insert(current.iter().cloned().collect());
        let mut current_idx = record(&current, current_count, SearchPhase::Discovery, &mut steps);

        while current_count > 0 && steps.len() < self.max_models {
            let mut tried: Vec<String> = Vec::new();
            let mut candidates: Vec<FeatureSet> = Vec::new();
            for feature in &self.all_features {
                if current.contains(feature) {
                    continue;
                }
                let mut candidate = current.clone();
                candidate.insert(feature.clone());
                tried.push(feature.clone());
                candidates.push(candidate);
            }
            let counts = eval(&candidates, Some(&current));
            let mut best: Option<(usize, usize)> = None;
            for (i, &count) in counts.iter().enumerate() {
                if best.is_none_or(|(_, c)| count < c) {
                    best = Some((i, count));
                }
            }
            let Some((chosen, count)) = best else { break };
            if count >= current_count {
                // No single feature helps; stop discovery.
                break;
            }
            let feature = tried.swap_remove(chosen);
            current = candidates.swap_remove(chosen);
            current_count = count;
            evaluated.insert(current.iter().cloned().collect());
            let new_idx = record(&current, count, SearchPhase::Discovery, &mut steps);
            edges.push(SearchEdge {
                from: current_idx,
                to: new_idx,
                feature,
                phase: SearchPhase::Discovery,
            });
            current_idx = new_idx;
        }

        // Elimination (only if discovery reached a feasible model).
        let mut minimal: Vec<Vec<String>> = Vec::new();
        if current_count == 0 {
            self.eliminate(
                &current,
                current_idx,
                eval,
                &mut steps,
                &mut edges,
                &mut evaluated,
                &mut minimal,
            );
        }

        SearchGraph {
            steps,
            edges,
            minimal_feasible: minimal,
        }
    }

    /// The elimination recursion.  Identical bookkeeping to the sequential
    /// reference; the only addition is the speculative prefetch, which batches
    /// the node's children through `eval` before the sequential replay.  A
    /// count is a pure function of the feature set, so prefetching can waste
    /// work (on children a deeper recursion's budget exhaustion would have
    /// skipped) but can never change the graph.
    #[allow(clippy::too_many_arguments)]
    fn eliminate(
        &self,
        features: &FeatureSet,
        from_idx: usize,
        eval: &mut BatchEval<'_>,
        steps: &mut Vec<SearchStep>,
        edges: &mut Vec<SearchEdge>,
        evaluated: &mut BTreeSet<Vec<String>>,
        minimal: &mut Vec<Vec<String>>,
    ) {
        if steps.len() < self.max_models {
            let mut prefetch: Vec<FeatureSet> = Vec::new();
            for feature in features {
                let mut candidate = features.clone();
                candidate.remove(feature);
                if !evaluated.contains(&candidate.iter().cloned().collect::<Vec<_>>()) {
                    prefetch.push(candidate);
                }
            }
            // Sibling subtrees only ever record strict subsets of their own
            // root, so no sibling can be marked evaluated mid-loop: the
            // prefetch set is exactly what the loop below will request, capped
            // by the remaining budget to bound speculation.
            prefetch.truncate(self.max_models - steps.len());
            let _ = eval(&prefetch, Some(features));
        }
        let mut any_feasible_child = false;
        for feature in features.iter().cloned().collect::<Vec<_>>() {
            if steps.len() >= self.max_models {
                break;
            }
            let mut candidate = features.clone();
            candidate.remove(&feature);
            let key: Vec<String> = candidate.iter().cloned().collect();
            if evaluated.contains(&key) {
                continue;
            }
            evaluated.insert(key);
            let count = eval(std::slice::from_ref(&candidate), Some(features))[0];
            steps.push(SearchStep {
                features: candidate.iter().cloned().collect(),
                infeasible_count: count,
                feasible: count == 0,
                phase: SearchPhase::Elimination,
            });
            let new_idx = steps.len() - 1;
            edges.push(SearchEdge {
                from: from_idx,
                to: new_idx,
                feature: feature.clone(),
                phase: SearchPhase::Elimination,
            });
            if count == 0 {
                any_feasible_child = true;
                self.eliminate(&candidate, new_idx, eval, steps, edges, evaluated, minimal);
            }
        }
        if !any_feasible_child {
            let set: Vec<String> = features.iter().cloned().collect();
            if !minimal.contains(&set) {
                minimal.push(set);
            }
        }
    }
}

impl<G> LatticeSearch<G>
where
    G: Fn(&FeatureSet) -> ModelCone + Sync,
{
    /// Runs the two-phase search from an initial feature set.
    ///
    /// *Discovery* greedily adds the feature that most reduces the number of
    /// infeasible observations until a feasible model is found (or no feature
    /// helps).  *Elimination* then recursively removes features from the
    /// feasible candidate, keeping every removal that preserves feasibility
    /// and recording minimal feasible sets; subtrees under infeasible prunings
    /// are not explored further (the paper's empirical observation).
    pub fn run(&self, initial: &FeatureSet, observations: &[Observation]) -> SearchGraph {
        self.run_with_stats(initial, observations).0
    }

    /// Like [`run`](LatticeSearch::run), but also returns the engine's work
    /// accounting — how many models were memoised, certificate-pruned or
    /// LP-solved.  The graph is deterministic; the stats are diagnostic (see
    /// [`LatticeStats`]).
    pub fn run_with_stats(
        &self,
        initial: &FeatureSet,
        observations: &[Observation],
    ) -> (SearchGraph, LatticeStats) {
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.threads
        };
        let mut evaluator = Evaluator::new(&self.generator, observations, self.shared.as_ref());
        let graph = self.drive(initial, &mut |sets, parent| {
            evaluator.counts(sets, parent, threads)
        });
        (graph, evaluator.finish())
    }
}

/// The memoising batch evaluator shared by the sequential and parallel entry
/// points: one infeasible count per feature set, computed at most once.
struct Evaluator<'a, G> {
    generator: &'a G,
    observations: &'a [Observation],
    /// Per-observation certificate margin, `CERTIFICATE_MARGIN · scale` — the
    /// same criterion [`BatchFeasibility`] applies to its internal cache, so a
    /// pool hit is always a verdict the LP would reach too.
    margins: Vec<f64>,
    memo: BTreeMap<Vec<String>, usize>,
    handoffs: BTreeMap<Vec<String>, Handoff>,
    pool: Arc<SharedPool>,
    /// The family key this search tags harvested pool entries with (empty
    /// without a shared pool, so every entry's origin matches and no
    /// cross-family hit is ever counted).
    family: Arc<str>,
    stats: LatticeStats,
}

impl<'a, G> Evaluator<'a, G>
where
    G: Fn(&FeatureSet) -> ModelCone,
{
    fn new(
        generator: &'a G,
        observations: &'a [Observation],
        shared: Option<&(CertificatePool, Arc<str>)>,
    ) -> Evaluator<'a, G> {
        // A shared pool over a different observation list is silently
        // replaced by a private one: its masks would be unsound here.
        let (pool, family) = match shared {
            Some((pool, family)) => match pool.attach(observations) {
                Some(attached) => (attached, Arc::clone(family)),
                None => (Arc::new(SharedPool::default()), Arc::from("")),
            },
            None => (Arc::new(SharedPool::default()), Arc::from("")),
        };
        Evaluator {
            generator,
            observations,
            margins: observations
                .iter()
                .map(|o| CERTIFICATE_MARGIN * observation_scale(o.region()))
                .collect(),
            memo: BTreeMap::new(),
            handoffs: BTreeMap::new(),
            pool,
            family,
            stats: LatticeStats::default(),
        }
    }

    /// Evaluates a batch inline, without spawning workers (no `Sync` bound).
    fn counts_seq(&mut self, sets: &[FeatureSet], parent: Option<&FeatureSet>) -> Vec<usize> {
        let parent_handoff = self.parent_handoff(parent);
        let mut counts = Vec::with_capacity(sets.len());
        let mut evaluated = 0u64;
        let _span = telemetry::span("frontier_batch", &sets.len().to_string());
        for set in sets {
            let key: Vec<String> = set.iter().cloned().collect();
            if let Some(&count) = self.memo.get(&key) {
                self.stats.memoized_hits += 1;
                counts.push(count);
                continue;
            }
            let outcome = evaluate_model(
                self.generator,
                set,
                self.observations,
                &self.margins,
                &self.pool,
                &self.family,
                parent_handoff.as_ref(),
            );
            evaluated += 1;
            counts.push(outcome.infeasible);
            self.record(key, outcome);
        }
        telemetry::add(telemetry::Metric::FrontierBatches, 1);
        telemetry::observe(telemetry::Histogram::FrontierBatchSize, evaluated);
        counts
    }

    /// Looks up the warm state recorded for the batch's parent model.
    fn parent_handoff(&self, parent: Option<&FeatureSet>) -> Option<Handoff> {
        parent
            .and_then(|p| self.handoffs.get(&p.iter().cloned().collect::<Vec<_>>()))
            .cloned()
    }

    /// Folds one model's outcome into the memo and the stats.  The driver
    /// thread is the only caller, so the telemetry mirror of the pool-level
    /// work accounting lands in a single, stable order.
    fn record(&mut self, key: Vec<String>, outcome: ModelOutcome) {
        self.stats.models_evaluated += 1;
        self.stats.observations_swept += self.observations.len();
        self.stats.certificate_pruned += outcome.pruned.len();
        self.stats.witness_settled += outcome.witnessed.len();
        self.stats.lp_tested +=
            self.observations.len() - outcome.pruned.len() - outcome.witnessed.len();
        self.stats.inconclusive += outcome.inconclusive;
        self.stats.cross_family_certificate_hits += outcome.cross_certificates;
        self.stats.cross_family_witness_hits += outcome.cross_rays;
        if outcome.got_warm_basis {
            self.stats.warm_basis_handoffs += 1;
        }
        if telemetry::enabled() {
            telemetry::add(telemetry::Metric::FrontierModelsEvaluated, 1);
            telemetry::add(
                telemetry::Metric::CrossFamilyCertificateHits,
                outcome.cross_certificates as u64,
            );
            telemetry::add(
                telemetry::Metric::CrossFamilyWitnessHits,
                outcome.cross_rays as u64,
            );
            telemetry::add(
                telemetry::Metric::CertificatePrunes,
                outcome.pruned.len() as u64,
            );
            telemetry::add(
                telemetry::Metric::WitnessRaySettlements,
                outcome.witnessed.len() as u64,
            );
            telemetry::add(
                if outcome.got_warm_basis {
                    telemetry::Metric::WarmBasisHandoffHits
                } else {
                    telemetry::Metric::WarmBasisHandoffMisses
                },
                1,
            );
        }
        if !outcome.pruned.is_empty() || !outcome.witnessed.is_empty() {
            self.stats.pruned_models.push(PrunedModel {
                features: key.clone(),
                pruned_observations: outcome.pruned,
                witness_observations: outcome.witnessed,
            });
        }
        if let Some(handoff) = outcome.handoff {
            self.handoffs.insert(key.clone(), handoff);
        }
        self.memo.insert(key, outcome.infeasible);
    }

    fn finish(mut self) -> LatticeStats {
        self.stats.pool_certificates = self
            .pool
            .certificates
            .lock()
            .expect("certificate pool poisoned")
            .len();
        self.stats.pool_rays = self.pool.rays.lock().expect("ray pool poisoned").len();
        self.stats
    }
}

impl<G> Evaluator<'_, G>
where
    G: Fn(&FeatureSet) -> ModelCone + Sync,
{
    /// Evaluates a batch, fanning memo misses across up to `threads` workers.
    /// Results merge by candidate index, so the memo contents — and therefore
    /// every count the driver sees — are independent of worker timing.
    fn counts(
        &mut self,
        sets: &[FeatureSet],
        parent: Option<&FeatureSet>,
        threads: usize,
    ) -> Vec<usize> {
        let todo: Vec<&FeatureSet> = sets
            .iter()
            .filter(|s| {
                !self
                    .memo
                    .contains_key(&s.iter().cloned().collect::<Vec<_>>())
            })
            .collect();
        let workers = threads.min(todo.len());
        if workers <= 1 {
            return self.counts_seq(sets, parent);
        }
        let _span = telemetry::span("frontier_batch", &todo.len().to_string());
        telemetry::add(telemetry::Metric::FrontierBatches, 1);
        telemetry::observe(telemetry::Histogram::FrontierBatchSize, todo.len() as u64);
        self.stats.memoized_hits += sets.len() - todo.len();
        let parent_handoff = self.parent_handoff(parent);
        let slots: Vec<Mutex<Option<ModelOutcome>>> =
            todo.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        // Per-worker work accounting, read back in worker-index order after
        // the scope joins so the telemetry gauge layout is stable.
        let processed: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
        let generator = self.generator;
        let observations = self.observations;
        let margins = &self.margins;
        let pool = &self.pool;
        let family = &self.family;
        let handoff = parent_handoff.as_ref();
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let processed = &processed[worker];
                let (next, todo, slots) = (&next, &todo, &slots);
                scope.spawn(move || loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(set) = todo.get(idx) else {
                        break;
                    };
                    let outcome = evaluate_model(
                        generator,
                        set,
                        observations,
                        margins,
                        pool,
                        family,
                        handoff,
                    );
                    *slots[idx].lock().expect("search worker panicked") = Some(outcome);
                    processed.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        if telemetry::enabled() {
            for (worker, count) in processed.iter().enumerate() {
                telemetry::add_worker_frontier_models(worker, count.load(Ordering::Relaxed) as u64);
            }
        }
        for (set, slot) in todo.iter().zip(slots) {
            let outcome = slot
                .into_inner()
                .expect("search worker panicked")
                .expect("every candidate was scheduled");
            self.record(set.iter().cloned().collect(), outcome);
        }
        sets.iter()
            .map(|s| self.memo[&s.iter().cloned().collect::<Vec<_>>()])
            .collect()
    }
}

/// Sweeps one candidate model over the observation set: pool-certificate
/// prunes first, warm batched LP solves for the rest, fresh certificates back
/// into the pool.
fn evaluate_model<G>(
    generator: &G,
    features: &FeatureSet,
    observations: &[Observation],
    margins: &[f64],
    pool: &SharedPool,
    family: &Arc<str>,
    parent: Option<&Handoff>,
) -> ModelOutcome
where
    G: Fn(&FeatureSet) -> ModelCone,
{
    let cone = generator(features);
    let mut engine = BatchFeasibility::new(&cone);
    let generator_keys: BTreeSet<Vec<u64>> = engine_generators(&engine)
        .iter()
        .map(|g| generator_bits(g))
        .collect();

    // Certificate containment: of all pooled separating directions, keep the
    // ones every generator of *this* cone lies on the non-negative side of
    // (one O(d · nnz) pass per direction), and fold their precomputed
    // separated-observation masks together.  A set bit refutes its
    // observation with the engine's own margin criterion, so a prune is
    // always the verdict the LP would return.
    // Snapshots are pointer-copy clones of the `Arc`ed entries; the scans run
    // on them outside the locks so concurrent workers never queue behind each
    // other's containment checks.
    let certificate_snapshot: Vec<Arc<PoolCertificate>> = pool
        .certificates
        .lock()
        .expect("certificate pool poisoned")
        .clone();
    let ray_snapshot: Vec<Arc<PoolRay>> = pool.rays.lock().expect("ray pool poisoned").clone();
    let mut refuted_mask = vec![0u64; observations.len().div_ceil(64)];
    let mut cross_certificates = 0usize;
    for certificate in &certificate_snapshot {
        if engine.certificate_applies(&certificate.direction) {
            if certificate.origin.as_ref() != family.as_ref() {
                cross_certificates += 1;
            }
            for (acc, word) in refuted_mask.iter_mut().zip(&certificate.separated) {
                *acc |= word;
            }
        }
    }
    // Witness-ray containment: a pooled ray whose support generators are all
    // present in this cone (exact bit-level membership) is a point of this
    // cone, so every observation its pierce mask covers is feasible here too.
    let mut feasible_mask = vec![0u64; observations.len().div_ceil(64)];
    let mut cross_rays = 0usize;
    for ray in &ray_snapshot {
        if ray.support.iter().all(|g| generator_keys.contains(g)) {
            if ray.origin.as_ref() != family.as_ref() {
                cross_rays += 1;
            }
            for (acc, word) in feasible_mask.iter_mut().zip(&ray.pierced) {
                *acc |= word;
            }
        }
    }

    let mut got_warm_basis = false;
    if let Some(parent) = parent {
        if let Some(mapped) = map_basis(parent, engine_generators(&engine)) {
            engine.set_warm_basis(parent.axes.clone(), mapped);
            got_warm_basis = true;
        }
    }

    let mut infeasible = 0usize;
    let mut pruned: Vec<usize> = Vec::new();
    let mut witnessed: Vec<usize> = Vec::new();
    let mut inconclusive = 0usize;
    // Self-witness harvest: after each feasible decision, the tableau's
    // positive-flow combination is a cone point; when a scaled copy pierces
    // *this* observation's box (the engine's own margin criterion), the pair
    // (ray, {observation}) goes to the pool with a single-bit mask — O(1) to
    // build, and it settles the same observation for every later model that
    // contains the ray's support.
    let mut self_rays: Vec<(Vec<f64>, Vec<usize>, usize)> = Vec::new();
    for (i, observation) in observations.iter().enumerate() {
        if mask_bit(&refuted_mask, i) {
            infeasible += 1;
            pruned.push(i);
            continue;
        }
        if mask_bit(&feasible_mask, i) {
            witnessed.push(i);
            continue;
        }
        // The bool path: no per-observation evidence extraction (the engine
        // still harvests separating directions and witness rays into its
        // internal caches, which are drained into the pool once per model
        // below).
        match engine.decide_lenient(observation) {
            FeasibilityVerdict::Feasible { .. } => {
                if let Some((ray, support)) = engine.current_ray_with_support() {
                    if crate::batch::ray_pierces_box(&ray, observation.region(), margins[i]) {
                        self_rays.push((ray, support, i));
                    }
                }
            }
            FeasibilityVerdict::Refuted { .. } => infeasible += 1,
            // The warm engine ran out of iterations on every path.  Fall back
            // to the cold reference solver so the count stays a pure function
            // of the feature set (whether an observation ever *reaches* the
            // LP depends on timing-sensitive pool contents, so a pool-state-
            // dependent verdict here would break graph determinism).  On the
            // truly pathological instance the reference solver resolves
            // not-refuted deterministically, so one degenerate cone cannot
            // abort a sweep.
            FeasibilityVerdict::Inconclusive { .. } => {
                inconclusive += 1;
                if !crate::feasibility::FeasibilityChecker::new(&cone).is_feasible(observation) {
                    infeasible += 1;
                }
            }
        }
    }

    // Drain the engine's harvested evidence into the shared pool, most
    // recently useful first.  The observation masks are computed here, once
    // per new entry and outside the locks (a concurrent worker inserting the
    // same direction first merely wins the dedup race — the masks are
    // deterministic, so either copy is correct), and amortised over every
    // later model.
    let pooled_directions: BTreeSet<Vec<u64>> = certificate_snapshot
        .iter()
        .map(|p| generator_bits(&p.direction))
        .collect();
    let new_directions: Vec<Vec<f64>> = engine
        .farkas_certificates()
        .iter()
        .rev()
        .filter(|c| !pooled_directions.contains(&generator_bits(c)))
        .cloned()
        .collect();
    if !new_directions.is_empty() {
        let fresh: Vec<PoolCertificate> = new_directions
            .into_iter()
            .map(|direction| PoolCertificate {
                separated: separation_mask(&direction, observations, margins),
                direction,
                origin: Arc::clone(family),
            })
            .collect();
        let mut certificates = pool.certificates.lock().expect("certificate pool poisoned");
        for certificate in fresh {
            if !certificates
                .iter()
                .any(|p| p.direction == certificate.direction)
            {
                certificates.insert(0, Arc::new(certificate));
            }
        }
        certificates.truncate(POOL_CAP);
    }
    // Rays come from two harvests: the engine's internal MRU cache (few, but
    // worth a full cross-observation pierce mask each) and the per-solve self
    // rays collected above (many, each carrying its single known bit).
    // Identical rays merge by OR-ing masks, keyed by their exact bit patterns
    // so every merge is a hash lookup instead of an O(pool) vector scan.
    let snapshot_index: BTreeMap<Vec<u64>, usize> = ray_snapshot
        .iter()
        .enumerate()
        .rev() // first occurrence wins on (impossible) duplicate keys
        .map(|(i, p)| (generator_bits(&p.ray), i))
        .collect();
    let new_cached_rays: Vec<(Vec<f64>, Vec<usize>)> = engine
        .witness_rays_with_supports()
        .filter(|(ray, _)| !snapshot_index.contains_key(&generator_bits(ray)))
        .map(|(ray, support)| (ray.clone(), support.clone()))
        .collect();
    if !new_cached_rays.is_empty() || !self_rays.is_empty() {
        let generators = engine_generators(&engine);
        let key_of = |support: &[usize]| -> Vec<Vec<u64>> {
            support
                .iter()
                .map(|&j| generator_bits(&generators[j]))
                .collect()
        };
        let words = observations.len().div_ceil(64);
        let mut fresh: Vec<PoolRay> = Vec::new();
        let mut fresh_index: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
        for (ray, support) in new_cached_rays {
            let key = generator_bits(&ray);
            if fresh_index.contains_key(&key) {
                continue;
            }
            fresh_index.insert(key, fresh.len());
            fresh.push(PoolRay {
                pierced: pierce_mask(&ray, observations, margins),
                support: key_of(&support),
                ray,
                origin: Arc::clone(family),
            });
        }
        for (ray, support, obs) in self_rays {
            let key = generator_bits(&ray);
            if let Some(&at) = fresh_index.get(&key) {
                fresh[at].pierced[obs / 64] |= 1 << (obs % 64);
                continue;
            }
            // Already pooled with this observation's bit set: nothing to add.
            if let Some(&at) = snapshot_index.get(&key) {
                if mask_bit(&ray_snapshot[at].pierced, obs) {
                    continue;
                }
            }
            let mut pierced = vec![0u64; words];
            pierced[obs / 64] |= 1 << (obs % 64);
            fresh_index.insert(key, fresh.len());
            fresh.push(PoolRay {
                pierced,
                support: key_of(&support),
                ray,
                origin: Arc::clone(family),
            });
        }
        let cap = ray_pool_cap(observations.len());
        let mut rays = pool.rays.lock().expect("ray pool poisoned");
        let mut pool_index: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
        for (i, p) in rays.iter().enumerate() {
            pool_index.entry(generator_bits(&p.ray)).or_insert(i);
        }
        let mut newly: Vec<Arc<PoolRay>> = Vec::new();
        for ray in fresh {
            if let Some(&at) = pool_index.get(&generator_bits(&ray.ray)) {
                // `make_mut` clones only if a reader still holds the old
                // snapshot; the bits it saw remain valid either way.
                for (acc, word) in Arc::make_mut(&mut rays[at])
                    .pierced
                    .iter_mut()
                    .zip(&ray.pierced)
                {
                    *acc |= word;
                }
                continue;
            }
            newly.push(Arc::new(ray));
        }
        // Most recently harvested first, matching the historical insert-at-0
        // order (each successive insert landed in front of the previous one).
        newly.reverse();
        rays.splice(0..0, newly);
        rays.truncate(cap);
    }

    let handoff = engine.basis_handoff().map(|(axes, basis)| Handoff {
        generators: engine_generators(&engine).to_vec(),
        axes,
        basis,
    });
    ModelOutcome {
        infeasible,
        pruned,
        witnessed,
        inconclusive,
        cross_certificates,
        cross_rays,
        handoff,
        got_warm_basis,
    }
}

/// The engine's generator columns (dense), shared with [`map_basis`].
fn engine_generators<'e>(engine: &'e BatchFeasibility<'_>) -> &'e [Vec<f64>] {
    engine.generator_vectors()
}

/// Re-indexes a parent basis onto a child engine's columns: structural
/// columns map through exact generator identity (bit-level), slacks map by
/// row; columns with no counterpart become `usize::MAX`, which the tableau
/// skips during installation.  `None` when the child has no generators (the
/// degenerate cone never builds a tableau).
fn map_basis(parent: &Handoff, child_generators: &[Vec<f64>]) -> Option<Vec<usize>> {
    let child_n = child_generators.len();
    if child_n == 0 || parent.basis.len() != 2 * parent.axes.len() {
        return None;
    }
    let index: BTreeMap<Vec<u64>, usize> = child_generators
        .iter()
        .enumerate()
        .map(|(j, g)| (generator_bits(g), j))
        .collect();
    let parent_n = parent.generators.len();
    Some(
        parent
            .basis
            .iter()
            .map(|&col| {
                if col < parent_n {
                    index
                        .get(&generator_bits(&parent.generators[col]))
                        .copied()
                        .unwrap_or(usize::MAX)
                } else {
                    child_n + (col - parent_n)
                }
            })
            .collect(),
    )
}

/// A generator as an exact bit-pattern key (generators are deduplicated per
/// cone, so the key is injective within one model).
fn generator_bits(generator: &[f64]) -> Vec<u64> {
    generator.iter().map(|v| v.to_bits()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::reference_search;
    use crate::feature_set;
    use counterpoint_mudd::{CounterSignature, CounterSpace};

    /// The toy feature lattice of the explore tests: base allows x only,
    /// `Fy` adds [1, 1], `Fboth` adds [0, 1].
    fn toy_cone(features: &FeatureSet) -> ModelCone {
        let space = CounterSpace::new(&["x", "y"]);
        let mut sigs = vec![CounterSignature::from_counts(vec![1, 0])];
        if features.contains("Fy") {
            sigs.push(CounterSignature::from_counts(vec![1, 1]));
        }
        if features.contains("Fboth") {
            sigs.push(CounterSignature::from_counts(vec![0, 1]));
        }
        let n = sigs.len();
        ModelCone::from_signatures("toy", &space, sigs, n)
    }

    fn observations() -> Vec<Observation> {
        vec![
            Observation::exact("x-only", &[10.0, 0.0]),
            Observation::exact("balanced", &[10.0, 6.0]),
            Observation::exact("y-heavy", &[2.0, 10.0]),
        ]
    }

    #[test]
    fn matches_the_sequential_reference_on_the_toy_lattice() {
        let universe = ["Fy", "Fboth"];
        let observations = observations();
        for initial in [
            feature_set::<&str>(&[]),
            feature_set(&["Fy"]),
            feature_set(&["Fy", "Fboth"]),
        ] {
            let expected = reference_search(&toy_cone, &universe, 256, &initial, &observations);
            let search = LatticeSearch::new(toy_cone, &universe);
            assert_eq!(search.run(&initial, &observations), expected);
            assert_eq!(search.run_sequential(&initial, &observations), expected);
        }
    }

    #[test]
    fn thread_counts_do_not_change_the_graph() {
        let universe = ["Fy", "Fboth"];
        let observations = observations();
        let mut search = LatticeSearch::new(toy_cone, &universe);
        let baseline = search.run(&FeatureSet::new(), &observations);
        for threads in [0, 2, 8] {
            search.set_threads(threads);
            assert_eq!(
                search.run(&FeatureSet::new(), &observations),
                baseline,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn budget_is_respected() {
        let mut search = LatticeSearch::new(toy_cone, &["Fy", "Fboth"]);
        search.set_max_models(1);
        let graph = search.run(&FeatureSet::new(), &observations());
        assert_eq!(graph.steps.len(), 1);
        let expected = reference_search(
            &toy_cone,
            &["Fy", "Fboth"],
            1,
            &FeatureSet::new(),
            &observations(),
        );
        assert_eq!(graph, expected);
    }

    #[test]
    fn stats_account_for_every_observation() {
        // Start from the full feature set: elimination then descends through
        // {Fy} (refuted by the y-heavy observation) down to {}, and the
        // certificate harvested from {Fy}'s refutation must prune the same
        // observation for the submodel {}.
        let search = LatticeSearch::new(toy_cone, &["Fy", "Fboth"]);
        let (graph, stats) = search.run_with_stats(&feature_set(&["Fy", "Fboth"]), &observations());
        assert!(stats.models_evaluated >= graph.steps.len());
        assert_eq!(
            stats.observations_swept,
            stats.models_evaluated * observations().len()
        );
        assert_eq!(
            stats.observations_swept,
            stats.certificate_pruned + stats.witness_settled + stats.lp_tested
        );
        assert_eq!(stats.inconclusive, 0);
        // Elimination revisits the base model's children: the infeasible
        // refutations harvested on the way up must prune on the way down.
        assert!(
            stats.certificate_pruned > 0,
            "the toy search must reuse at least one certificate: {stats:?}"
        );
        for pruned in &stats.pruned_models {
            assert_eq!(
                pruned.pruned_observations.len(),
                pruned
                    .pruned_observations
                    .iter()
                    .collect::<BTreeSet<_>>()
                    .len()
            );
        }
    }

    #[test]
    fn shared_pool_prunes_across_families_without_changing_graphs() {
        let universe = ["Fy", "Fboth"];
        let observations = observations();
        let start = feature_set(&["Fy", "Fboth"]);

        // Private baseline: what each search produces without any sharing.
        let baseline = LatticeSearch::new(toy_cone, &universe).run(&start, &observations);

        let pool = CertificatePool::new();
        let mut first = LatticeSearch::new(toy_cone, &universe);
        first.set_shared_pool(&pool, "family-a");
        let (graph_a, stats_a) = first.run_with_stats(&start, &observations);
        assert_eq!(graph_a, baseline);
        assert_eq!(
            stats_a.cross_family_certificate_hits, 0,
            "the first family has no siblings to inherit from"
        );
        assert!(
            pool.num_certificates() > 0,
            "the first sweep must seed the shared pool"
        );

        let mut second = LatticeSearch::new(toy_cone, &universe);
        second.set_shared_pool(&pool, "family-b");
        let (graph_b, stats_b) = second.run_with_stats(&start, &observations);
        assert_eq!(graph_b, baseline, "pool sharing must not change the graph");
        assert!(
            stats_b.cross_family_certificate_hits > 0,
            "the second family must reuse certificates harvested by the first: {stats_b:?}"
        );
    }

    #[test]
    fn shared_pool_rejects_mismatched_observations() {
        let pool = CertificatePool::new();
        let mut first = LatticeSearch::new(toy_cone, &["Fy", "Fboth"]);
        first.set_shared_pool(&pool, "family-a");
        first.run(&feature_set(&["Fy", "Fboth"]), &observations());
        assert!(pool.num_certificates() > 0);

        // A search over a *different* observation set must fall back to a
        // private pool: the pooled bit masks are indexed by the observation
        // list the pool was first attached to.
        let other = vec![Observation::exact("different", &[1.0, 1.0])];
        let mut second = LatticeSearch::new(toy_cone, &["Fy", "Fboth"]);
        second.set_shared_pool(&pool, "family-b");
        let (graph, stats) = second.run_with_stats(&FeatureSet::new(), &other);
        let expected =
            LatticeSearch::new(toy_cone, &["Fy", "Fboth"]).run(&FeatureSet::new(), &other);
        assert_eq!(graph, expected);
        assert_eq!(stats.cross_family_certificate_hits, 0);
        assert_eq!(stats.cross_family_witness_hits, 0);
    }

    #[test]
    fn empty_universe_and_empty_observations_are_handled() {
        let empty_universe: [&str; 0] = [];
        let search = LatticeSearch::new(toy_cone, &empty_universe);
        let graph = search.run(&FeatureSet::new(), &observations());
        assert_eq!(graph.steps.len(), 1);
        assert!(graph.edges.is_empty());

        let search = LatticeSearch::new(toy_cone, &["Fy"]);
        let graph = search.run(&FeatureSet::new(), &[]);
        // Zero observations: everything is feasible, elimination runs.
        assert!(graph.steps[0].feasible);
        assert_eq!(graph.minimal_feasible, vec![Vec::<String>::new()]);
    }
}
