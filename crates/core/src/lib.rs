//! CounterPoint: reconciling hardware event counter data with microarchitectural
//! models.
//!
//! This crate is the paper's primary contribution, assembled from the substrate
//! crates:
//!
//! 1. A μDD (from [`counterpoint_mudd`]) is turned into a [`ModelCone`] — the set of
//!    all HEC value combinations producible by non-negative flows of μops over the
//!    diagram's μpaths (the *counter flow equation*).
//! 2. Noisy HEC measurements become [`Observation`]s carrying counter confidence
//!    regions (from [`counterpoint_stats`]).
//! 3. [`feasibility`] decides with a linear program whether an observation's
//!    confidence region intersects the model cone; if not, the expert's model is
//!    inconsistent with the hardware at the chosen confidence level.
//! 4. [`constraints`] deduces the explicit model constraints (facets of the cone)
//!    and identifies which ones an infeasible observation violates — the feedback
//!    the expert uses to refine the model.
//! 5. [`explore`] defines the discovery/elimination search semantics over a
//!    lattice of candidate microarchitectural features (paper, Section 5 and
//!    Appendix C), and [`lattice`] provides [`LatticeSearch`], the parallel
//!    certificate-pruned engine that executes them.
//!
//! # Quick start
//!
//! ```
//! use counterpoint_core::{FeasibilityChecker, ModelCone, Observation};
//! use counterpoint_mudd::{dsl::compile_uop, CounterSpace};
//!
//! let counters = CounterSpace::new(&["load.causes_walk", "load.pde$_miss"]);
//! // Figure 6a: the walker is initialised before the PDE cache is looked up, so
//! // pde$_miss can never exceed causes_walk.
//! let model = compile_uop("fig6a", r#"
//!     incr load.causes_walk;
//!     do LookupPde$;
//!     switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
//!     done;
//! "#, &counters).unwrap();
//!
//! let cone = ModelCone::from_mudd(&model).unwrap();
//! let checker = FeasibilityChecker::new(&cone);
//!
//! // An observation with more PDE-cache misses than walks refutes the model.
//! let infeasible = Observation::exact("microbench", &[100.0, 140.0]);
//! assert!(!checker.is_feasible(&infeasible));
//!
//! let feasible = Observation::exact("microbench", &[140.0, 100.0]);
//! assert!(checker.is_feasible(&feasible));
//! ```

pub mod batch;
pub mod cone;
pub mod constraints;
pub mod explore;
pub mod feasibility;
pub mod lattice;
pub mod observation;

pub use batch::{check_models, check_models_verdicts, BatchFeasibility, FeasibilityVerdict};
pub use cone::ModelCone;
pub use constraints::{deduce_constraints, ConstraintSet, NamedConstraint};
pub use explore::{
    essential_feature_intersection, feature_set, reference_search, ExplorationModel, FeatureSet,
    ModelEvaluation, SearchEdge, SearchGraph, SearchStep,
};
#[allow(deprecated)] // re-exported so downstream migrations stay source-compatible
pub use explore::{
    essential_features, evaluate_models, evaluate_models_with_threads, GuidedSearch,
};
pub use feasibility::{FeasibilityChecker, FeasibilityReport};
pub use lattice::{CertificatePool, LatticeSearch, LatticeStats, PrunedModel};
pub use observation::Observation;
