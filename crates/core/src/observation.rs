//! HEC observations: a workload's counter data plus its confidence region.

use counterpoint_stats::{ConfidenceRegion, NoiseModel};

/// One HEC observation: the counter data collected for one workload/configuration,
/// summarised as a counter confidence region.
///
/// Observations are what CounterPoint tests against model cones.  They can be built
/// from raw time-series samples (the normal, noisy path) or from exact counter
/// values (useful with noise-free simulated ground truth and in tests).
#[derive(Clone, Debug)]
pub struct Observation {
    name: String,
    region: ConfidenceRegion,
}

impl Observation {
    /// Builds an observation from time-series samples at the given confidence level
    /// using the paper's correlated confidence-region construction.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `confidence` is not in `(0, 1)`.
    pub fn from_samples(name: &str, samples: &[Vec<f64>], confidence: f64) -> Observation {
        Observation {
            name: name.to_string(),
            region: ConfidenceRegion::from_samples(samples, confidence, NoiseModel::Correlated),
        }
    }

    /// Builds an observation from time-series samples with an explicit noise model
    /// (used to compare correlated vs. independent regions, Figure 3d).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `confidence` is not in `(0, 1)`.
    pub fn from_samples_with_model(
        name: &str,
        samples: &[Vec<f64>],
        confidence: f64,
        noise_model: NoiseModel,
    ) -> Observation {
        Observation {
            name: name.to_string(),
            region: ConfidenceRegion::from_samples(samples, confidence, noise_model),
        }
    }

    /// Builds an exact (zero-width) observation from noise-free counter values.
    pub fn exact(name: &str, values: &[f64]) -> Observation {
        Observation {
            name: name.to_string(),
            region: ConfidenceRegion::exact(values),
        }
    }

    /// Wraps an already-constructed confidence region.
    pub fn from_region(name: &str, region: ConfidenceRegion) -> Observation {
        Observation {
            name: name.to_string(),
            region,
        }
    }

    /// The observation's name (workload / configuration label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The counter confidence region.
    pub fn region(&self) -> &ConfidenceRegion {
        &self.region
    }

    /// Number of counters.
    pub fn dimension(&self) -> usize {
        self.region.dimension()
    }

    /// The observation's central (sample-mean) counter values.
    pub fn mean(&self) -> &[f64] {
        self.region.center()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_observation() {
        let obs = Observation::exact("bench", &[10.0, 20.0]);
        assert_eq!(obs.name(), "bench");
        assert_eq!(obs.dimension(), 2);
        assert_eq!(obs.mean(), &[10.0, 20.0]);
        assert_eq!(obs.region().half_widths(), &[0.0, 0.0]);
    }

    #[test]
    fn from_samples_uses_correlated_model() {
        let samples: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let obs = Observation::from_samples("ts", &samples, 0.99);
        assert_eq!(obs.region().noise_model(), NoiseModel::Correlated);
        assert_eq!(obs.mean()[0], 24.5);
    }

    #[test]
    fn from_samples_with_explicit_model() {
        let samples: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let obs =
            Observation::from_samples_with_model("ts", &samples, 0.99, NoiseModel::Independent);
        assert_eq!(obs.region().noise_model(), NoiseModel::Independent);
    }

    #[test]
    fn from_region_wraps() {
        let region = ConfidenceRegion::exact(&[1.0]);
        let obs = Observation::from_region("wrapped", region);
        assert_eq!(obs.dimension(), 1);
    }
}
