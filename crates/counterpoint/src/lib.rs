//! CounterPoint — using hardware event counters to refute and refine
//! microarchitectural assumptions.
//!
//! This facade crate re-exports the whole CounterPoint workspace behind a single
//! dependency:
//!
//! * [`session`] — **the primary entry point**: typed [`Inquiry`] sessions
//!   running the whole refute→refine workflow, certificate-carrying
//!   [`Verdict`]s and serializable [`Report`]s,
//! * [`mudd`] — μpath Decision Diagrams (the model formalism) and their DSL,
//! * [`core`] — model cones, feasibility testing, constraint deduction and guided
//!   model exploration,
//! * [`stats`] — counter confidence regions and the statistics beneath them,
//! * [`geometry`], [`lp`], [`numeric`] — the exact-geometry and optimisation
//!   substrates,
//! * [`haswell`] — the functional Haswell MMU simulator and PMU multiplexing model
//!   used as the hardware stand-in,
//! * [`workloads`] — synthetic workload generators,
//! * [`collect`] — the counter-collection subsystem: pluggable acquisition
//!   backends, event-group scheduling, threaded measurement campaigns and trace
//!   record/replay (`--features perf` also compiles the Linux perf backend stub),
//! * [`models`] — the Haswell case-study model families (Tables 3, 5 and 7).
//!
//! The most common entry points are re-exported at the crate root.
//!
//! # Example
//!
//! Test an expert's model of the PDE cache against counter data and discover
//! that it must be refined (the running example of the paper's Figures 2
//! and 6), as one [`Inquiry`] session:
//!
//! ```
//! use counterpoint::{compile_uop, CounterSpace, Inquiry, ModelCone, Observation};
//!
//! let counters = CounterSpace::new(&["load.causes_walk", "load.pde$_miss"]);
//! let model = compile_uop("initial", r#"
//!     incr load.causes_walk;
//!     do LookupPde$;
//!     switch Pde$Status { Hit => pass; Miss => incr load.pde$_miss };
//!     done;
//! "#, &counters).unwrap();
//!
//! // Hardware reports more PDE-cache misses than walks: the model is refuted,
//! // and the verdict carries the Farkas certificate proving it.
//! let report = Inquiry::new()
//!     .observations(vec![Observation::exact("microbenchmark", &[1_000.0, 1_400.0])])
//!     .model("initial", ModelCone::from_mudd(&model).unwrap())
//!     .run()
//!     .unwrap();
//! let verdict = report.verdict("initial", "microbenchmark").unwrap();
//! assert!(verdict.is_refuted());
//! assert!(verdict.farkas_certificate().is_some());
//! ```

pub use counterpoint_collect as collect;
pub use counterpoint_core as core;
pub use counterpoint_geometry as geometry;
pub use counterpoint_haswell as haswell;
pub use counterpoint_lp as lp;
pub use counterpoint_models as models;
pub use counterpoint_mudd as mudd;
pub use counterpoint_numeric as numeric;
pub use counterpoint_session as session;
pub use counterpoint_stats as stats;
pub use counterpoint_telemetry as telemetry;
pub use counterpoint_workloads as workloads;

#[cfg(feature = "perf")]
pub use counterpoint_collect::LinuxPerfBackend;
pub use counterpoint_collect::{
    Campaign, CampaignCell, CollectError, CounterBackend, EventSchedule, IntervalSamples,
    ReplayBackend, SimBackend, Trace, TraceRecord, WorkloadRun,
};
pub use counterpoint_core::{
    check_models, check_models_verdicts, deduce_constraints, essential_feature_intersection,
    feature_set, reference_search, BatchFeasibility, ConstraintSet, ExplorationModel,
    FeasibilityChecker, FeasibilityReport, FeasibilityVerdict, FeatureSet, LatticeSearch,
    LatticeStats, ModelCone, ModelEvaluation, Observation, SearchGraph,
};
#[allow(deprecated)] // re-exported so downstream migrations stay source-compatible
pub use counterpoint_core::{
    essential_features, evaluate_models, evaluate_models_with_threads, GuidedSearch,
};
pub use counterpoint_mudd::dsl::compile_uop;
pub use counterpoint_mudd::{CounterSignature, CounterSpace, MuDd, MuDdBuilder};
pub use counterpoint_session::{Inquiry, Report, SessionError, Verdict};
pub use counterpoint_stats::{ConfidenceRegion, NoiseModel};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_usable() {
        let space = crate::CounterSpace::new(&["a", "b"]);
        assert_eq!(space.len(), 2);
        let region = crate::ConfidenceRegion::exact(&[1.0, 2.0]);
        assert_eq!(region.dimension(), 2);
    }
}
