//! Generator (V-) representation of model cones and conversion to constraints.

use crate::constraint::ConeConstraint;
use crate::dd::extreme_rays;
use counterpoint_numeric::{RatMatrix, RatVector, Rational};

/// The full constraint (H-) representation of a model cone: the equality constraints
/// spanning the cone's lineality-orthogonal deficit plus the facet inequalities.
///
/// Together these are exactly the *model constraints* of the paper: an observation
/// `v` lies in the model cone iff it satisfies every equality and every inequality.
#[derive(Clone, Debug)]
pub struct ConeFacets {
    /// Equality constraints `c·v = 0` (one per dimension missing from the span of
    /// the generators, e.g. `stlb_hit = stlb_hit_4k + stlb_hit_2m`).
    pub equalities: Vec<ConeConstraint>,
    /// Facet inequalities `c·v ≥ 0`.
    pub inequalities: Vec<ConeConstraint>,
}

impl ConeFacets {
    /// All constraints, equalities first.
    pub fn all(&self) -> Vec<ConeConstraint> {
        self.equalities
            .iter()
            .chain(self.inequalities.iter())
            .cloned()
            .collect()
    }

    /// Total number of constraints.
    pub fn len(&self) -> usize {
        self.equalities.len() + self.inequalities.len()
    }

    /// Returns `true` if there are no constraints at all (the cone is the whole
    /// space).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tests whether an exact point satisfies every constraint.
    pub fn contains(&self, v: &RatVector) -> bool {
        self.all().iter().all(|c| c.is_satisfied_by(v))
    }

    /// Returns the constraints violated by an exact point.
    pub fn violated_by(&self, v: &RatVector) -> Vec<ConeConstraint> {
        self.all()
            .into_iter()
            .filter(|c| !c.is_satisfied_by(v))
            .collect()
    }
}

/// A polyhedral cone given by its generators (the μpath counter signatures).
///
/// The cone is `{ Σ fᵢ·gᵢ : fᵢ ≥ 0 }` — exactly the model cone of the counter flow
/// equation.  Generators are normalised to primitive integer vectors and
/// deduplicated on construction, matching the first step of the paper's constraint
/// deduction procedure.
///
/// ```
/// use counterpoint_geometry::GeneratorCone;
/// use counterpoint_numeric::RatVector;
///
/// let cone = GeneratorCone::new(vec![
///     RatVector::from_i64(&[1, 0]),
///     RatVector::from_i64(&[1, 1]),
///     RatVector::from_i64(&[2, 2]), // duplicate direction of [1, 1]
/// ]);
/// assert_eq!(cone.generators().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GeneratorCone {
    dim: usize,
    generators: Vec<RatVector>,
}

impl GeneratorCone {
    /// Creates a cone from a list of generators, normalising and deduplicating.
    ///
    /// # Panics
    ///
    /// Panics if the generators do not all share the same dimension, or if the list
    /// is empty (an empty generator list has no well-defined ambient dimension; use
    /// [`GeneratorCone::zero`] instead).
    pub fn new(generators: Vec<RatVector>) -> GeneratorCone {
        assert!(
            !generators.is_empty(),
            "use GeneratorCone::zero(dim) for a cone with no generators"
        );
        let dim = generators[0].len();
        let mut out: Vec<RatVector> = Vec::with_capacity(generators.len());
        let mut seen: std::collections::BTreeSet<RatVector> = std::collections::BTreeSet::new();
        for g in generators {
            assert_eq!(g.len(), dim, "all generators must have the same dimension");
            let n = g.normalize_primitive();
            if n.is_zero() {
                continue;
            }
            if seen.insert(n.clone()) {
                out.push(n);
            }
        }
        GeneratorCone {
            dim,
            generators: out,
        }
    }

    /// Creates a cone from generators that already satisfy the invariants
    /// [`GeneratorCone::new`] establishes: every generator is primitive
    /// (integer components with gcd 1), non-zero, of dimension `dim`, and the
    /// list holds no duplicates.  Callers that normalise upstream in plain
    /// integer arithmetic (e.g. μpath counter signatures) use this to skip the
    /// per-generator `i128` gcd reductions; debug builds re-verify the
    /// invariants.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if any invariant is violated.
    pub fn from_primitive(dim: usize, generators: Vec<RatVector>) -> GeneratorCone {
        debug_assert!(
            generators
                .iter()
                .all(|g| g.len() == dim && !g.is_zero() && g.normalize_primitive() == *g),
            "generators must be primitive, non-zero, and of dimension {dim}"
        );
        debug_assert_eq!(
            generators
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            generators.len(),
            "generators must be deduplicated"
        );
        GeneratorCone { dim, generators }
    }

    /// The cone containing only the origin, in the given ambient dimension.
    pub fn zero(dim: usize) -> GeneratorCone {
        GeneratorCone {
            dim,
            generators: Vec::new(),
        }
    }

    /// Ambient dimension (number of counters).
    pub fn dimension(&self) -> usize {
        self.dim
    }

    /// The deduplicated, primitive generators.
    pub fn generators(&self) -> &[RatVector] {
        &self.generators
    }

    /// The dimension of the linear span of the generators.
    pub fn span_rank(&self) -> usize {
        if self.generators.is_empty() {
            return 0;
        }
        RatMatrix::from_rows(&self.generators).rank()
    }

    /// Computes the constraint (H-) representation of the cone.
    ///
    /// The procedure mirrors Section 6 of the paper:
    ///
    /// 1. signatures are normalised and deduplicated (done at construction),
    /// 2. Gaussian elimination identifies the equality constraints (the orthogonal
    ///    complement of the generators' span),
    /// 3. generators are re-expressed in a basis of their span, where the cone is
    ///    full-dimensional and pointed,
    /// 4. the extreme rays of the *polar* cone — computed with the
    ///    double-description method — give the facet normals, which are lifted back
    ///    to the ambient counter space.
    pub fn facets(&self) -> ConeFacets {
        if self.generators.is_empty() {
            // The zero cone: v = 0 for every coordinate.
            let equalities = (0..self.dim)
                .map(|i| ConeConstraint::equality(RatVector::basis(self.dim, i)))
                .collect();
            return ConeFacets {
                equalities,
                inequalities: Vec::new(),
            };
        }

        let gen_matrix = RatMatrix::from_rows(&self.generators);

        // Step 2: equality constraints — the nullspace of the generator matrix
        // (vectors orthogonal to every generator).
        let equalities: Vec<ConeConstraint> = gen_matrix
            .nullspace()
            .into_iter()
            .map(ConeConstraint::equality)
            .collect();

        // Step 3: basis of the span.
        let span_basis = gen_matrix.row_space_basis();
        let k = span_basis.len();
        // B is dim x k with columns the basis vectors.
        let b = RatMatrix::from_rows(&span_basis).transpose();
        let btb = b.transpose().mul_mat(&b);
        let btb_inv = btb
            .inverse()
            .expect("span basis is linearly independent, so B^T B is invertible");

        // Reduced generators: y = (B^T B)^{-1} B^T g.
        let reduce = btb_inv.mul_mat(&b.transpose());
        let reduced: Vec<RatVector> = self.generators.iter().map(|g| reduce.mul_vec(g)).collect();

        // Step 4: extreme rays of the polar cone { y : G_red · y <= 0 }.
        let reduced_matrix = RatMatrix::from_rows(&reduced);
        let inequalities = if k == 0 {
            Vec::new()
        } else {
            let polar_rays = extreme_rays(&reduced_matrix);
            // Lift each polar ray a back to counter space: c = B (B^T B)^{-1} a,
            // giving c·g = a·y_g <= 0 on the cone; flip the sign to present the
            // constraint as (−c)·v ≥ 0.
            let lift = b.mul_mat(&btb_inv);
            polar_rays
                .into_iter()
                .map(|a| ConeConstraint::inequality((-&lift.mul_vec(&a)).normalize_primitive()))
                .collect()
        };

        ConeFacets {
            equalities,
            inequalities,
        }
    }

    /// Tests (exactly) whether a point is a non-negative combination of the
    /// generators, by checking it against the facet representation.
    ///
    /// This is convenient for tests and small cones; production feasibility testing
    /// goes through the LP formulation in `counterpoint-core`, which also handles
    /// confidence regions.
    pub fn contains(&self, v: &RatVector) -> bool {
        assert_eq!(v.len(), self.dim, "point dimension mismatch");
        self.facets().contains(v)
    }

    /// Evaluates the counter flow equation for an explicit flow assignment: returns
    /// `Σ flow[i] · generator[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `flow.len()` differs from the number of generators or any flow is
    /// negative.
    pub fn flow_combination(&self, flow: &[Rational]) -> RatVector {
        assert_eq!(flow.len(), self.generators.len(), "flow length mismatch");
        let mut acc = RatVector::zeros(self.dim);
        for (f, g) in flow.iter().zip(self.generators.iter()) {
            assert!(!f.is_negative(), "flows must be non-negative");
            acc = &acc + &g.scale(*f);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_i64(v: &[i64]) -> RatVector {
        RatVector::from_i64(v)
    }

    #[test]
    fn construction_dedups_and_normalises() {
        let cone = GeneratorCone::new(vec![
            vec_i64(&[2, 0]),
            vec_i64(&[1, 0]),
            vec_i64(&[3, 3]),
            vec_i64(&[0, 0]),
        ]);
        assert_eq!(cone.generators().len(), 2);
        assert_eq!(cone.dimension(), 2);
        assert_eq!(cone.span_rank(), 2);
    }

    #[test]
    fn zero_cone_facets_are_equalities() {
        let cone = GeneratorCone::zero(3);
        let facets = cone.facets();
        assert_eq!(facets.equalities.len(), 3);
        assert!(facets.inequalities.is_empty());
        assert!(facets.contains(&vec_i64(&[0, 0, 0])));
        assert!(!facets.contains(&vec_i64(&[1, 0, 0])));
    }

    #[test]
    fn orthant_cone() {
        let cone = GeneratorCone::new(vec![vec_i64(&[1, 0]), vec_i64(&[0, 1])]);
        let facets = cone.facets();
        assert!(facets.equalities.is_empty());
        assert_eq!(facets.inequalities.len(), 2);
        assert!(facets.contains(&vec_i64(&[3, 5])));
        assert!(!facets.contains(&vec_i64(&[-1, 5])));
    }

    #[test]
    fn figure3a_cone_constraints() {
        // Counters: (causes_walk, walk_done, ret_stlb_miss).  μpaths:
        //   walk initiated, aborted:          (1, 0, 0)
        //   walk completes, μop squashed:     (1, 1, 0)
        //   walk completes, μop retires:      (1, 1, 1)
        let cone = GeneratorCone::new(vec![
            vec_i64(&[1, 0, 0]),
            vec_i64(&[1, 1, 0]),
            vec_i64(&[1, 1, 1]),
        ]);
        let facets = cone.facets();
        assert!(facets.equalities.is_empty());
        // Expect exactly: ret >= 0, ret <= walk_done, walk_done <= causes_walk.
        assert_eq!(facets.inequalities.len(), 3);
        let names = ["causes_walk", "walk_done", "ret_stlb_miss"];
        let rendered: Vec<String> = facets
            .inequalities
            .iter()
            .map(|c| c.render(&names))
            .collect();
        assert!(rendered.contains(&"0 <= ret_stlb_miss".to_string()));
        assert!(rendered.contains(&"ret_stlb_miss <= walk_done".to_string()));
        assert!(rendered.contains(&"walk_done <= causes_walk".to_string()));
        // The infeasible observation of Figure 3a (more retired misses than walks).
        assert!(!facets.contains(&vec_i64(&[2, 2, 3])));
        assert!(facets.contains(&vec_i64(&[3, 2, 2])));
    }

    #[test]
    fn rank_deficient_cone_produces_equalities() {
        // Generators all satisfy total = a + b, so the facets must include that
        // equality (cf. stlb_hit = stlb_hit_4k + stlb_hit_2m in the paper).
        let cone = GeneratorCone::new(vec![vec_i64(&[1, 0, 1]), vec_i64(&[0, 1, 1])]);
        let facets = cone.facets();
        assert_eq!(facets.equalities.len(), 1);
        assert_eq!(facets.inequalities.len(), 2);
        assert!(facets.contains(&vec_i64(&[2, 3, 5])));
        assert!(!facets.contains(&vec_i64(&[2, 3, 6])));
        assert!(!facets.contains(&vec_i64(&[-1, 6, 5])));
    }

    #[test]
    fn facets_and_generators_are_consistent() {
        // Every generator (and every non-negative combination) satisfies the facets.
        let gens = vec![
            vec_i64(&[1, 0, 0, 1]),
            vec_i64(&[1, 1, 0, 2]),
            vec_i64(&[1, 1, 1, 4]),
            vec_i64(&[0, 0, 1, 1]),
        ];
        let cone = GeneratorCone::new(gens.clone());
        let facets = cone.facets();
        for g in &gens {
            assert!(
                facets.contains(g),
                "generator {g:?} must satisfy its own facets"
            );
        }
        let combo = cone.flow_combination(&[
            Rational::from(2),
            Rational::new(1, 2),
            Rational::from(0),
            Rational::from(3),
        ]);
        assert!(facets.contains(&combo));
    }

    #[test]
    fn violated_by_reports_the_right_constraint() {
        let cone = GeneratorCone::new(vec![vec_i64(&[1, 0]), vec_i64(&[1, 1])]);
        let facets = cone.facets();
        // Point with more of counter 1 than counter 0 violates exactly one facet.
        let bad = vec_i64(&[1, 2]);
        let violated = facets.violated_by(&bad);
        assert_eq!(violated.len(), 1);
        assert_eq!(violated[0].render(&["x", "y"]), "y <= x");
    }

    #[test]
    fn single_ray_cone() {
        let cone = GeneratorCone::new(vec![vec_i64(&[1, 2, 3])]);
        let facets = cone.facets();
        // Span rank 1 -> 2 equalities; the ray direction itself needs one inequality
        // to exclude the negative direction.
        assert_eq!(facets.equalities.len(), 2);
        assert_eq!(facets.inequalities.len(), 1);
        assert!(facets.contains(&vec_i64(&[2, 4, 6])));
        assert!(!facets.contains(&vec_i64(&[-1, -2, -3])));
        assert!(!facets.contains(&vec_i64(&[1, 2, 4])));
    }

    #[test]
    #[should_panic(expected = "GeneratorCone::zero")]
    fn empty_generator_list_panics() {
        let _ = GeneratorCone::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "same dimension")]
    fn mismatched_dimensions_panic() {
        let _ = GeneratorCone::new(vec![vec_i64(&[1, 0]), vec_i64(&[1, 0, 0])]);
    }

    #[test]
    fn flow_combination_matches_counter_flow_equation() {
        let cone = GeneratorCone::new(vec![vec_i64(&[1, 0]), vec_i64(&[1, 1])]);
        let v = cone.flow_combination(&[Rational::from(3), Rational::from(2)]);
        assert_eq!(v, vec_i64(&[5, 2]));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_flow_panics() {
        let cone = GeneratorCone::new(vec![vec_i64(&[1, 0]), vec_i64(&[1, 1])]);
        let _ = cone.flow_combination(&[Rational::from(-1), Rational::from(2)]);
    }
}
