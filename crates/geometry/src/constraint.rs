//! Linear model constraints over counter values.

use counterpoint_numeric::{RatVector, Rational};
use std::fmt;

/// Whether a constraint is an equality or a `≥ 0` inequality.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConstraintSense {
    /// `coeffs · v = 0`.
    Equality,
    /// `coeffs · v ≥ 0`.
    GreaterEqualZero,
}

/// A single model constraint on the counter value vector `v`:
/// either `coeffs · v = 0` or `coeffs · v ≥ 0`.
///
/// Constraints are stored with primitive integer coefficient vectors (lowest terms,
/// gcd 1) so that structurally identical constraints compare equal, exactly as the
/// paper normalises μpath counter signatures before deduplication.
///
/// ```
/// use counterpoint_geometry::{ConeConstraint, ConstraintSense};
/// use counterpoint_numeric::RatVector;
///
/// // walk_done - ret_stlb_miss >= 0, i.e. ret_stlb_miss <= walk_done.
/// let c = ConeConstraint::inequality(RatVector::from_i64(&[0, 1, -1]));
/// assert_eq!(c.sense(), ConstraintSense::GreaterEqualZero);
/// assert!(c.is_satisfied_by(&RatVector::from_i64(&[5, 3, 2])));
/// assert!(!c.is_satisfied_by(&RatVector::from_i64(&[5, 1, 2])));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ConeConstraint {
    coeffs: RatVector,
    sense: ConstraintSense,
}

impl ConeConstraint {
    /// Creates an inequality constraint `coeffs · v ≥ 0`.
    pub fn inequality(coeffs: RatVector) -> ConeConstraint {
        ConeConstraint {
            coeffs: coeffs.normalize_primitive(),
            sense: ConstraintSense::GreaterEqualZero,
        }
    }

    /// Creates an equality constraint `coeffs · v = 0`.
    pub fn equality(coeffs: RatVector) -> ConeConstraint {
        ConeConstraint {
            coeffs: coeffs.normalize_primitive(),
            sense: ConstraintSense::Equality,
        }
    }

    /// The (primitive, integer) coefficient vector.
    pub fn coeffs(&self) -> &RatVector {
        &self.coeffs
    }

    /// The constraint sense.
    pub fn sense(&self) -> ConstraintSense {
        self.sense
    }

    /// Number of counters this constraint ranges over (the dimension of the
    /// coefficient vector).
    pub fn dimension(&self) -> usize {
        self.coeffs.len()
    }

    /// Number of counters with a non-zero coefficient — the paper reports this as
    /// the "number of HECs" participating in a constraint (Table 1).
    pub fn involved_counters(&self) -> usize {
        self.coeffs.iter().filter(|c| !c.is_zero()).count()
    }

    /// Evaluates `coeffs · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` has a different dimension.
    pub fn evaluate(&self, v: &RatVector) -> Rational {
        self.coeffs.dot(v)
    }

    /// Returns `true` if `v` satisfies the constraint exactly.
    pub fn is_satisfied_by(&self, v: &RatVector) -> bool {
        let val = self.evaluate(v);
        match self.sense {
            ConstraintSense::Equality => val.is_zero(),
            ConstraintSense::GreaterEqualZero => !val.is_negative(),
        }
    }

    /// Evaluates the constraint on an `f64` point, returning `coeffs · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` has a different dimension.
    pub fn evaluate_f64(&self, v: &[f64]) -> f64 {
        assert_eq!(v.len(), self.coeffs.len(), "constraint dimension mismatch");
        self.coeffs
            .iter()
            .zip(v.iter())
            .map(|(c, x)| c.to_f64() * x)
            .sum()
    }

    /// Returns `true` if the `f64` point satisfies the constraint within `tol`.
    pub fn is_satisfied_by_f64(&self, v: &[f64], tol: f64) -> bool {
        let val = self.evaluate_f64(v);
        match self.sense {
            ConstraintSense::Equality => val.abs() <= tol,
            ConstraintSense::GreaterEqualZero => val >= -tol,
        }
    }

    /// Renders the constraint in "lhs ≤ rhs" / "lhs = rhs" form using the supplied
    /// counter names, grouping negative coefficients on the left-hand side and
    /// positive ones on the right-hand side (the form used in the paper's Table 1).
    ///
    /// # Panics
    ///
    /// Panics if `names.len()` differs from the constraint dimension.
    pub fn render(&self, names: &[&str]) -> String {
        assert_eq!(
            names.len(),
            self.coeffs.len(),
            "name list dimension mismatch"
        );
        let mut lhs: Vec<String> = Vec::new();
        let mut rhs: Vec<String> = Vec::new();
        for (i, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            let mag = c.abs();
            let term = if mag == Rational::ONE {
                names[i].to_string()
            } else {
                format!("{mag}*{}", names[i])
            };
            if c.is_negative() {
                lhs.push(term);
            } else {
                rhs.push(term);
            }
        }
        let lhs = if lhs.is_empty() {
            "0".to_string()
        } else {
            lhs.join(" + ")
        };
        let rhs = if rhs.is_empty() {
            "0".to_string()
        } else {
            rhs.join(" + ")
        };
        match self.sense {
            ConstraintSense::Equality => format!("{lhs} = {rhs}"),
            ConstraintSense::GreaterEqualZero => format!("{lhs} <= {rhs}"),
        }
    }
}

impl fmt::Debug for ConeConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.sense {
            ConstraintSense::Equality => "=",
            ConstraintSense::GreaterEqualZero => ">=",
        };
        write!(f, "{:?} {op} 0", self.coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalises_coefficients() {
        let a = ConeConstraint::inequality(RatVector::from_i64(&[2, -4, 6]));
        let b = ConeConstraint::inequality(RatVector::from_i64(&[1, -2, 3]));
        assert_eq!(a, b);
        assert_eq!(a.coeffs(), &RatVector::from_i64(&[1, -2, 3]));
    }

    #[test]
    fn involved_counters_counts_nonzero() {
        let c = ConeConstraint::inequality(RatVector::from_i64(&[1, 0, -1, 0, 3]));
        assert_eq!(c.involved_counters(), 3);
        assert_eq!(c.dimension(), 5);
    }

    #[test]
    fn inequality_satisfaction() {
        let c = ConeConstraint::inequality(RatVector::from_i64(&[1, -1]));
        assert!(c.is_satisfied_by(&RatVector::from_i64(&[3, 2])));
        assert!(c.is_satisfied_by(&RatVector::from_i64(&[2, 2])));
        assert!(!c.is_satisfied_by(&RatVector::from_i64(&[1, 2])));
    }

    #[test]
    fn equality_satisfaction() {
        let c = ConeConstraint::equality(RatVector::from_i64(&[1, -1, -1]));
        assert!(c.is_satisfied_by(&RatVector::from_i64(&[5, 3, 2])));
        assert!(!c.is_satisfied_by(&RatVector::from_i64(&[5, 3, 3])));
    }

    #[test]
    fn f64_evaluation() {
        let c = ConeConstraint::inequality(RatVector::from_i64(&[1, -2]));
        assert_eq!(c.evaluate_f64(&[5.0, 2.0]), 1.0);
        assert!(c.is_satisfied_by_f64(&[5.0, 2.5], 1e-9));
        assert!(c.is_satisfied_by_f64(&[5.0, 2.5 + 1e-12], 1e-9));
        assert!(!c.is_satisfied_by_f64(&[5.0, 3.0], 1e-9));
        let eq = ConeConstraint::equality(RatVector::from_i64(&[1, -1]));
        assert!(eq.is_satisfied_by_f64(&[2.0, 2.0 + 1e-12], 1e-9));
        assert!(!eq.is_satisfied_by_f64(&[2.0, 3.0], 1e-9));
    }

    #[test]
    fn render_matches_paper_style() {
        // ret_stlb_miss <= walk_done   ==   [-1, 1] over (ret_stlb_miss, walk_done)
        let c = ConeConstraint::inequality(RatVector::from_i64(&[-1, 1]));
        assert_eq!(
            c.render(&["load.ret_stlb_miss", "load.walk_done"]),
            "load.ret_stlb_miss <= load.walk_done"
        );

        let eq = ConeConstraint::equality(RatVector::from_i64(&[1, -1, -1]));
        assert_eq!(
            eq.render(&["stlb_hit", "stlb_hit_4k", "stlb_hit_2m"]),
            "stlb_hit_4k + stlb_hit_2m = stlb_hit"
        );

        let scaled = ConeConstraint::inequality(RatVector::from_i64(&[-1, 3]));
        assert_eq!(
            scaled.render(&["walk_ref", "pde_miss"]),
            "walk_ref <= 3*pde_miss"
        );
    }

    #[test]
    fn render_handles_empty_sides() {
        let c = ConeConstraint::inequality(RatVector::from_i64(&[0, 1]));
        assert_eq!(c.render(&["a", "b"]), "0 <= b");
        let d = ConeConstraint::inequality(RatVector::from_i64(&[0, -1]));
        assert_eq!(d.render(&["a", "b"]), "b <= 0");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn render_with_wrong_names_panics() {
        let c = ConeConstraint::inequality(RatVector::from_i64(&[1, -1]));
        let _ = c.render(&["only_one"]);
    }
}
