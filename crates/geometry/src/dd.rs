//! The double-description method for pointed polyhedral cones.
//!
//! Given a cone in H-representation, `{ y : A·y ≤ 0 }`, the double-description
//! method computes its extreme rays (V-representation).  CounterPoint uses this as
//! the engine behind constraint deduction: the facet normals of a model cone are
//! exactly the extreme rays of its *polar* cone, which is given in H-representation
//! by the μpath counter signatures (see [`crate::GeneratorCone::facets`]).
//!
//! The paper implements a custom conic-hull routine because no off-the-shelf Python
//! library computes conic hulls and floating-point hull codes are ill-conditioned
//! for exact integer signatures; this module is the Rust equivalent, working purely
//! in exact rational arithmetic.

use counterpoint_numeric::{RatMatrix, RatVector, Rational};
use std::collections::BTreeSet;

/// A ray of the double-description computation together with the set of processed
/// constraints it is tight on (satisfies with equality).
#[derive(Clone, Debug)]
struct DdRay {
    dir: RatVector,
    tight: BTreeSet<usize>,
}

/// Computes the extreme rays of the pointed cone `{ y : A·y ≤ 0 }`.
///
/// The rows of `a` are the inward-facing... more precisely, each row `r` contributes
/// the halfspace `r·y ≤ 0`.  The cone must be *pointed*, which is guaranteed when
/// the rows of `a` span the full column space (`rank(a) == a.ncols()`).
///
/// Returned rays are normalised to primitive integer vectors and are pairwise
/// distinct.  The zero cone yields an empty list.
///
/// # Panics
///
/// Panics if `rank(a) < a.ncols()` (the cone would contain a line, which the
/// double-description bookkeeping here does not support — callers must first factor
/// out the lineality space, as [`crate::GeneratorCone::facets`] does).
///
/// # Example
///
/// ```
/// use counterpoint_geometry::extreme_rays;
/// use counterpoint_numeric::{RatMatrix, RatVector};
///
/// // The cone { y : -y0 <= 0, -y1 <= 0 } is the non-negative quadrant.
/// let a = RatMatrix::from_i64_rows(&[&[-1, 0], &[0, -1]]);
/// let rays = extreme_rays(&a);
/// assert_eq!(rays.len(), 2);
/// assert!(rays.contains(&RatVector::from_i64(&[1, 0])));
/// assert!(rays.contains(&RatVector::from_i64(&[0, 1])));
/// ```
pub fn extreme_rays(a: &RatMatrix) -> Vec<RatVector> {
    let k = a.ncols();
    let m = a.nrows();
    if k == 0 {
        return Vec::new();
    }
    assert!(
        a.rank() == k,
        "extreme_rays requires a pointed cone: rank({}) < dimension ({k})",
        a.rank()
    );

    // 1. Find k linearly independent rows to seed a simplicial cone.
    let basis_rows = independent_rows(a, k);
    let a_b = RatMatrix::from_rows(&basis_rows.iter().map(|&i| a.row(i)).collect::<Vec<_>>());
    let a_b_inv = a_b
        .inverse()
        .expect("independent rows must form an invertible matrix");

    // Initial rays: columns of -(A_B)^{-1}.  Ray j is tight on every basis row
    // except the j-th.
    let mut rays: Vec<DdRay> = Vec::with_capacity(k);
    for j in 0..k {
        let dir = (-&a_b_inv.col(j)).normalize_primitive();
        let mut tight: BTreeSet<usize> = basis_rows.iter().copied().collect();
        tight.remove(&basis_rows[j]);
        rays.push(DdRay { dir, tight });
    }

    // 2. Incrementally add the remaining halfspaces.
    let basis_set: BTreeSet<usize> = basis_rows.iter().copied().collect();
    for i in 0..m {
        if basis_set.contains(&i) {
            continue;
        }
        let normal = a.row(i);
        add_halfspace(&mut rays, &normal, i);
        if rays.is_empty() {
            return Vec::new();
        }
    }

    dedup_rays(rays.into_iter().map(|r| r.dir).collect())
}

/// Adds the halfspace `normal·y ≤ 0` (with global index `index`) to the current set
/// of extreme rays, generating new rays from adjacent (negative, positive) pairs.
fn add_halfspace(rays: &mut Vec<DdRay>, normal: &RatVector, index: usize) {
    let values: Vec<Rational> = rays.iter().map(|r| normal.dot(&r.dir)).collect();

    let mut neg: Vec<usize> = Vec::new();
    let mut zero: Vec<usize> = Vec::new();
    let mut pos: Vec<usize> = Vec::new();
    for (idx, v) in values.iter().enumerate() {
        if v.is_negative() {
            neg.push(idx);
        } else if v.is_zero() {
            zero.push(idx);
        } else {
            pos.push(idx);
        }
    }

    // Fast path: nothing violates the new halfspace.
    if pos.is_empty() {
        for &z in &zero {
            rays[z].tight.insert(index);
        }
        return;
    }

    let mut new_rays: Vec<DdRay> = Vec::new();
    for &p in &pos {
        for &n in &neg {
            if !adjacent(rays, p, n) {
                continue;
            }
            // new = (normal·r_p)·r_n - (normal·r_n)·r_p  (both coefficients > 0).
            let coeff_n = values[p];
            let coeff_p = -values[n];
            let dir =
                (&rays[n].dir.scale(coeff_n) + &rays[p].dir.scale(coeff_p)).normalize_primitive();
            let mut tight: BTreeSet<usize> = rays[p]
                .tight
                .intersection(&rays[n].tight)
                .copied()
                .collect();
            tight.insert(index);
            new_rays.push(DdRay { dir, tight });
        }
    }

    let mut kept: Vec<DdRay> = Vec::with_capacity(neg.len() + zero.len() + new_rays.len());
    for &n in &neg {
        kept.push(rays[n].clone());
    }
    for &z in &zero {
        let mut r = rays[z].clone();
        r.tight.insert(index);
        kept.push(r);
    }
    for nr in new_rays {
        if !kept.iter().any(|r| r.dir == nr.dir) {
            kept.push(nr);
        }
    }
    *rays = kept;
}

/// Combinatorial adjacency test: rays `p` and `n` are adjacent iff no *other* ray's
/// tight set contains the intersection of their tight sets.
fn adjacent(rays: &[DdRay], p: usize, n: usize) -> bool {
    let common: BTreeSet<usize> = rays[p]
        .tight
        .intersection(&rays[n].tight)
        .copied()
        .collect();
    for (idx, r) in rays.iter().enumerate() {
        if idx == p || idx == n {
            continue;
        }
        if common.is_subset(&r.tight) {
            return false;
        }
    }
    true
}

/// Greedily selects `k` linearly independent rows of `a` using incremental
/// elimination.
fn independent_rows(a: &RatMatrix, k: usize) -> Vec<usize> {
    let mut reduced: Vec<RatVector> = Vec::new();
    let mut chosen: Vec<usize> = Vec::new();
    for i in 0..a.nrows() {
        if chosen.len() == k {
            break;
        }
        let mut row = a.row(i);
        // Reduce against the rows already in the echelon set.
        for r in &reduced {
            let lead = leading_index(r).expect("reduced rows are non-zero");
            if !row[lead].is_zero() {
                let factor = row[lead] / r[lead];
                row = &row - &r.scale(factor);
            }
        }
        if !row.is_zero() {
            reduced.push(row);
            chosen.push(i);
        }
    }
    assert_eq!(chosen.len(), k, "failed to find {k} independent rows");
    chosen
}

fn leading_index(v: &RatVector) -> Option<usize> {
    (0..v.len()).find(|&i| !v[i].is_zero())
}

/// Removes duplicate directions (rays equal after primitive normalisation).
fn dedup_rays(rays: Vec<RatVector>) -> Vec<RatVector> {
    let mut out: Vec<RatVector> = Vec::with_capacity(rays.len());
    for r in rays {
        let n = r.normalize_primitive();
        if !out.contains(&n) {
            out.push(n);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut rays: Vec<RatVector>) -> Vec<Vec<i128>> {
        let mut v: Vec<Vec<i128>> = rays
            .drain(..)
            .map(|r| r.iter().map(|x| x.to_integer().unwrap()).collect())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn nonnegative_orthant_2d() {
        let a = RatMatrix::from_i64_rows(&[&[-1, 0], &[0, -1]]);
        let rays = extreme_rays(&a);
        assert_eq!(sorted(rays), vec![vec![0, 1], vec![1, 0]]);
    }

    #[test]
    fn nonnegative_orthant_3d() {
        let a = RatMatrix::from_i64_rows(&[&[-1, 0, 0], &[0, -1, 0], &[0, 0, -1]]);
        let rays = extreme_rays(&a);
        assert_eq!(
            sorted(rays),
            vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]]
        );
    }

    #[test]
    fn chain_cone_2d() {
        // { y : y0 <= y1 <= 0 } ... expressed as rows: y0 - y1 <= 0 and y1 <= 0.
        let a = RatMatrix::from_i64_rows(&[&[1, -1], &[0, 1]]);
        let rays = extreme_rays(&a);
        // Extreme rays: (-1, 0) and (-1, -1).
        assert_eq!(sorted(rays), vec![vec![-1, -1], vec![-1, 0]]);
    }

    #[test]
    fn redundant_halfspace_does_not_change_result() {
        let a = RatMatrix::from_i64_rows(&[&[-1, 0], &[0, -1]]);
        let with_redundant = RatMatrix::from_i64_rows(&[&[-1, 0], &[0, -1], &[-1, -1], &[-2, -1]]);
        assert_eq!(
            sorted(extreme_rays(&a)),
            sorted(extreme_rays(&with_redundant))
        );
    }

    #[test]
    fn square_based_cone_in_3d() {
        // Cone over a square: x >= 0 bounds... use { z >= |x|, z >= |y| } style:
        // rows: x - z <= 0, -x - z <= 0, y - z <= 0, -y - z <= 0.
        let a = RatMatrix::from_i64_rows(&[&[1, 0, -1], &[-1, 0, -1], &[0, 1, -1], &[0, -1, -1]]);
        let rays = extreme_rays(&a);
        assert_eq!(
            sorted(rays),
            vec![
                vec![-1, -1, 1],
                vec![-1, 1, 1],
                vec![1, -1, 1],
                vec![1, 1, 1]
            ]
        );
    }

    #[test]
    fn tight_cone_collapses_to_origin() {
        // y <= 0 and -y <= 0 and also x <= 0, -x <= 0 forces the zero cone.  The
        // rank is still 2 so the precondition holds, and every ray is eliminated.
        let a = RatMatrix::from_i64_rows(&[&[1, 0], &[-1, 0], &[0, 1], &[0, -1]]);
        let rays = extreme_rays(&a);
        assert!(rays.is_empty());
    }

    #[test]
    fn halfline_in_2d() {
        // { y : -y0 <= 0, y0 - y1 <= 0, y1 - y0 <= 0 } = the ray y0 = y1 >= 0.
        let a = RatMatrix::from_i64_rows(&[&[-1, 0], &[1, -1], &[-1, 1]]);
        let rays = extreme_rays(&a);
        assert_eq!(sorted(rays), vec![vec![1, 1]]);
    }

    #[test]
    fn rays_satisfy_all_halfspaces() {
        let a = RatMatrix::from_i64_rows(&[&[-3, 1, 0], &[1, -4, 0], &[0, 0, -1], &[-1, -1, 2]]);
        let rays = extreme_rays(&a);
        assert!(!rays.is_empty());
        for r in &rays {
            for i in 0..a.nrows() {
                assert!(
                    !a.row(i).dot(r).is_positive(),
                    "ray {r:?} violates halfspace {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "pointed cone")]
    fn non_pointed_cone_panics() {
        // Only one constraint in 2D: the cone contains a line.
        let a = RatMatrix::from_i64_rows(&[&[-1, 0]]);
        let _ = extreme_rays(&a);
    }

    #[test]
    fn zero_dimension_returns_empty() {
        let a = RatMatrix::zeros(0, 0);
        assert!(extreme_rays(&a).is_empty());
    }
}
