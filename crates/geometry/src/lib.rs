//! Exact polyhedral-cone geometry for CounterPoint.
//!
//! The *model cone* of a μpath Decision Diagram is the conic hull of the μpath
//! counter signatures (paper, Section 3).  The Minkowski–Weyl theorem guarantees an
//! equivalent description as a finite set of linear *model constraints* — equalities
//! and inequalities on counter values.  CounterPoint needs both representations: the
//! generator (V-) representation falls directly out of μpath enumeration and drives
//! LP feasibility testing, while the constraint (H-) representation is what gets
//! reported to the expert when an observation is infeasible.
//!
//! This crate converts between the two representations with exact rational
//! arithmetic:
//!
//! * [`ConeConstraint`] — a single model constraint (`c·v = 0` or `c·v ≥ 0`),
//! * [`extreme_rays`] — the double-description method for pointed cones given in
//!   H-representation,
//! * [`GeneratorCone`] — a cone given by its generators, with [`GeneratorCone::facets`]
//!   computing the full constraint set by running the double-description method on
//!   the polar cone inside the generators' linear span.
//!
//! # Example
//!
//! ```
//! use counterpoint_geometry::GeneratorCone;
//! use counterpoint_numeric::RatVector;
//!
//! // Figure 3a of the paper: three μpath signatures over
//! // (causes_walk, walk_done, ret_stlb_miss).
//! let cone = GeneratorCone::new(vec![
//!     RatVector::from_i64(&[1, 0, 0]), // walk initiated but never completes
//!     RatVector::from_i64(&[1, 1, 0]), // walk completes, μop squashed
//!     RatVector::from_i64(&[1, 1, 1]), // walk completes, μop retires
//! ]);
//! let facets = cone.facets();
//! // The cone implies ret_stlb_miss <= walk_done <= causes_walk (plus ret >= 0).
//! assert_eq!(facets.inequalities.len(), 3);
//! ```

pub mod cone;
pub mod constraint;
pub mod dd;

pub use cone::{ConeFacets, GeneratorCone};
pub use constraint::{ConeConstraint, ConstraintSense};
pub use dd::extreme_rays;
