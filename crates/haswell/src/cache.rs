//! A generic set-associative cache with LRU replacement.
//!
//! Used for three purposes in the Haswell substrate: the data-cache hierarchy that
//! classifies page-walker loads into `walk_ref.l1/l2/l3/mem`, the MMU's
//! paging-structure caches (PDE / PDPTE / PML4E), and the small hidden structures
//! (walker-result cache) behind the walk-bypass behaviour the paper uncovers.

/// A set-associative cache over abstract 64-bit keys with true-LRU replacement.
///
/// The cache stores keys only (it is a presence tracker, not a data store), which
/// is all a functional MMU simulation needs.
///
/// ```
/// use counterpoint_haswell::cache::SetAssocCache;
/// let mut cache = SetAssocCache::new(2, 2);
/// assert!(!cache.access(42));   // cold miss
/// assert!(cache.access(42));    // now a hit
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    /// `lines[set]` holds up to `ways` keys in LRU order (most recent last).
    lines: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> SetAssocCache {
        assert!(
            sets > 0 && ways > 0,
            "cache must have at least one set and one way"
        );
        SetAssocCache {
            sets,
            ways,
            lines: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// A convenience constructor for a fully-associative cache with `entries`
    /// entries.
    pub fn fully_associative(entries: usize) -> SetAssocCache {
        SetAssocCache::new(1, entries)
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_of(&self, key: u64) -> usize {
        // Multiplicative hashing spreads structured keys (page numbers, table
        // addresses) across sets.
        ((key.wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> 32) as usize % self.sets
    }

    /// Looks the key up *and* inserts it (allocate-on-miss).  Returns `true` on a
    /// hit.  On a hit the entry is promoted to most-recently-used.
    pub fn access(&mut self, key: u64) -> bool {
        let set = self.set_of(key);
        let lines = &mut self.lines[set];
        if let Some(pos) = lines.iter().position(|&k| k == key) {
            let k = lines.remove(pos);
            lines.push(k);
            self.hits += 1;
            true
        } else {
            if lines.len() == self.ways {
                lines.remove(0);
            }
            lines.push(key);
            self.misses += 1;
            false
        }
    }

    /// Looks the key up without modifying the cache.
    pub fn probe(&self, key: u64) -> bool {
        let set = self.set_of(key);
        self.lines[set].contains(&key)
    }

    /// Inserts the key without counting a hit or miss (used for fills driven by
    /// another structure, e.g. a prefetch filling the TLB).
    pub fn fill(&mut self, key: u64) {
        let set = self.set_of(key);
        let lines = &mut self.lines[set];
        if let Some(pos) = lines.iter().position(|&k| k == key) {
            let k = lines.remove(pos);
            lines.push(k);
            return;
        }
        if lines.len() == self.ways {
            lines.remove(0);
        }
        lines.push(key);
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        for set in &mut self.lines {
            set.clear();
        }
    }

    /// Number of entries currently resident.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss_behaviour() {
        let mut c = SetAssocCache::new(4, 2);
        assert_eq!(c.capacity(), 8);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        // Fully associative with 2 ways: the least recently used key is evicted.
        let mut c = SetAssocCache::fully_associative(2);
        c.access(1);
        c.access(2);
        c.access(1); // promote 1
        c.access(3); // evicts 2
        assert!(c.probe(1));
        assert!(!c.probe(2));
        assert!(c.probe(3));
    }

    #[test]
    fn probe_does_not_modify_state() {
        let mut c = SetAssocCache::fully_associative(2);
        c.access(1);
        assert!(c.probe(1));
        assert!(!c.probe(9));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn fill_inserts_without_counting() {
        let mut c = SetAssocCache::fully_associative(2);
        c.fill(7);
        assert!(c.probe(7));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        // Filling an existing key just promotes it.
        c.fill(8);
        c.fill(7);
        c.fill(9); // evicts 8 (7 was promoted)
        assert!(c.probe(7));
        assert!(!c.probe(8));
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(1);
        c.access(2);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.probe(1));
    }

    #[test]
    fn larger_working_set_than_capacity_causes_misses() {
        let mut c = SetAssocCache::new(16, 4);
        // First pass: all cold misses.
        for k in 0..1000u64 {
            c.access(k);
        }
        assert_eq!(c.misses(), 1000);
        // Second pass: the working set (1000) far exceeds capacity (64), so most
        // accesses still miss.
        for k in 0..1000u64 {
            c.access(k);
        }
        assert!(c.hits() < 200);
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut c = SetAssocCache::new(16, 4);
        for _ in 0..10 {
            for k in 0..32u64 {
                c.access(k);
            }
        }
        // 32 keys in a 64-entry cache: after the first pass everything hits.
        assert!(c.hits() >= 32 * 9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_ways_panics() {
        let _ = SetAssocCache::new(4, 0);
    }
}
