//! Historical HEC inventory database (behind the paper's Figure 1a).
//!
//! Figure 1a plots, per x86-64 server microarchitecture between 2009 and 2019, the
//! number of *named* HECs documented for a single core and the estimated number of
//! *addressable* events in a typical server system (accounting for per-core
//! replication of core events plus uncore events, after removing deprecated
//! events).  The figure's point is the >10× growth over the decade.  This module
//! embeds the per-microarchitecture summary data so the figure can be regenerated
//! without network access to the Linux `perf` event database.

use serde::Serialize;

/// One microarchitecture generation's HEC inventory.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct MicroarchEvents {
    /// Short microarchitecture code (e.g. `HSX` for Haswell-EP).
    pub name: &'static str,
    /// Year of server availability.
    pub year: u32,
    /// Number of documented event names for a single core.
    pub named_events: u32,
    /// Typical core count of a server system of that generation.
    pub typical_cores: u32,
    /// Documented core events that remain addressable (not deprecated).
    pub addressable_core_events: u32,
    /// Uncore (system-wide) events.
    pub uncore_events: u32,
}

impl MicroarchEvents {
    /// Estimated number of addressable events in a typical server system:
    /// per-core replication of the core events plus the uncore events.
    pub fn addressable_events(&self) -> u64 {
        self.addressable_core_events as u64 * self.typical_cores as u64 + self.uncore_events as u64
    }
}

/// The microarchitecture inventory used by Figure 1a, in chronological order.
///
/// Named-event counts approximate the Linux `perf` event database; the exact values
/// are not load-bearing — the figure's claim is the order-of-magnitude growth,
/// which [`growth_factor`] verifies.
pub fn event_database() -> Vec<MicroarchEvents> {
    vec![
        MicroarchEvents {
            name: "NHM-EX",
            year: 2010,
            named_events: 890,
            typical_cores: 8,
            addressable_core_events: 620,
            uncore_events: 220,
        },
        MicroarchEvents {
            name: "WSM-EX",
            year: 2011,
            named_events: 980,
            typical_cores: 10,
            addressable_core_events: 680,
            uncore_events: 260,
        },
        MicroarchEvents {
            name: "IVT",
            year: 2013,
            named_events: 1250,
            typical_cores: 15,
            addressable_core_events: 840,
            uncore_events: 900,
        },
        MicroarchEvents {
            name: "HSX",
            year: 2014,
            named_events: 1450,
            typical_cores: 18,
            addressable_core_events: 960,
            uncore_events: 1500,
        },
        MicroarchEvents {
            name: "KNL",
            year: 2016,
            named_events: 1750,
            typical_cores: 72,
            addressable_core_events: 1050,
            uncore_events: 2100,
        },
        MicroarchEvents {
            name: "CLX",
            year: 2019,
            named_events: 2400,
            typical_cores: 56,
            addressable_core_events: 1600,
            uncore_events: 3200,
        },
    ]
}

/// The ratio between the newest and oldest generations' addressable event counts —
/// the ">10× between 2009 and 2019" headline of Figure 1a.
pub fn growth_factor() -> f64 {
    let db = event_database();
    let first = db
        .first()
        .expect("database is non-empty")
        .addressable_events() as f64;
    let last = db
        .last()
        .expect("database is non-empty")
        .addressable_events() as f64;
    last / first
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_is_chronological_and_growing() {
        let db = event_database();
        assert_eq!(db.len(), 6);
        for pair in db.windows(2) {
            assert!(pair[0].year < pair[1].year);
            assert!(pair[0].named_events <= pair[1].named_events);
        }
    }

    #[test]
    fn haswell_entry_matches_figure_annotations() {
        let db = event_database();
        let hsx = db.iter().find(|m| m.name == "HSX").unwrap();
        assert_eq!(hsx.typical_cores, 18);
        assert_eq!(hsx.year, 2014);
    }

    #[test]
    fn addressable_events_account_for_core_replication() {
        let m = MicroarchEvents {
            name: "X",
            year: 2020,
            named_events: 100,
            typical_cores: 4,
            addressable_core_events: 50,
            uncore_events: 10,
        };
        assert_eq!(m.addressable_events(), 210);
    }

    #[test]
    fn growth_exceeds_an_order_of_magnitude() {
        assert!(
            growth_factor() > 10.0,
            "Figure 1a claims >10× growth, got {}",
            growth_factor()
        );
    }
}
