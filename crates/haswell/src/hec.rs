//! The Haswell address-translation hardware event counters (paper, Table 2).

use counterpoint_mudd::CounterSpace;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// Whether a μop (and therefore its HECs) is a load or a store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum AccessType {
    /// Load μops (`load.*` counters, `mem_uops_retired.all_loads`, ...).
    Load,
    /// Store μops (`store.*` counters).
    Store,
}

impl AccessType {
    /// The two access types, in canonical order.
    pub const ALL: [AccessType; 2] = [AccessType::Load, AccessType::Store];

    /// The prefix used in counter names (`load` / `store`).
    pub fn prefix(&self) -> &'static str {
        match self {
            AccessType::Load => "load",
            AccessType::Store => "store",
        }
    }
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

/// The counter groups of the paper's Table 2 / Figures 1b and 9.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum HecGroup {
    /// Retirement counters (`T.ret`, `T.ret_stlb_miss`) — 4 counters.
    Ret,
    /// Second-level TLB hit counters (`T.stlb_hit*`) — 6 counters.
    Stlb,
    /// Page-walk counters (`T.causes_walk`, `T.walk_done*`, `T.pde$_miss`) — 12
    /// counters.
    Walk,
    /// Page-walker memory-reference counters (`walk_ref.*`) — 4 counters.
    Refs,
}

impl HecGroup {
    /// All groups in the cumulative order used on the x-axes of Figures 1b and 9.
    pub const ALL: [HecGroup; 4] = [
        HecGroup::Ret,
        HecGroup::Stlb,
        HecGroup::Walk,
        HecGroup::Refs,
    ];

    /// Short label used in figures (`Ret`, `L2TLB`, `Walk`, `Refs`).
    pub fn label(&self) -> &'static str {
        match self {
            HecGroup::Ret => "Ret",
            HecGroup::Stlb => "L2TLB",
            HecGroup::Walk => "Walk",
            HecGroup::Refs => "Refs",
        }
    }

    /// The counter names belonging to this group.
    pub fn counters(&self) -> Vec<String> {
        match self {
            HecGroup::Ret => AccessType::ALL
                .iter()
                .flat_map(|t| vec![format!("{t}.ret"), format!("{t}.ret_stlb_miss")])
                .collect(),
            HecGroup::Stlb => AccessType::ALL
                .iter()
                .flat_map(|t| {
                    vec![
                        format!("{t}.stlb_hit"),
                        format!("{t}.stlb_hit_4k"),
                        format!("{t}.stlb_hit_2m"),
                    ]
                })
                .collect(),
            HecGroup::Walk => AccessType::ALL
                .iter()
                .flat_map(|t| {
                    vec![
                        format!("{t}.causes_walk"),
                        format!("{t}.walk_done"),
                        format!("{t}.walk_done_4k"),
                        format!("{t}.walk_done_2m"),
                        format!("{t}.walk_done_1g"),
                        format!("{t}.pde$_miss"),
                    ]
                })
                .collect(),
            HecGroup::Refs => vec![
                "walk_ref.l1".to_string(),
                "walk_ref.l2".to_string(),
                "walk_ref.l3".to_string(),
                "walk_ref.mem".to_string(),
            ],
        }
    }

    /// The full Linux-perf event name each of this paper's short names maps to
    /// (Table 2's "Full Event Name" column), for documentation purposes.
    pub fn perf_event_prefix(&self) -> &'static str {
        match self {
            HecGroup::Ret => "mem_uops_retired",
            HecGroup::Stlb | HecGroup::Walk => "dtlb_store_misses / dtlb_load_misses",
            HecGroup::Refs => "page_walker_loads",
        }
    }
}

/// The full 26-counter space of the paper's Table 2, in canonical order
/// (groups in `Ret`, `STLB`, `Walk`, `Refs` order).
pub fn full_counter_space() -> CounterSpace {
    let names: Vec<String> = HecGroup::ALL.iter().flat_map(|g| g.counters()).collect();
    CounterSpace::new(&names)
}

/// The counter space obtained by taking the first `n` groups of
/// [`HecGroup::ALL`] cumulatively — the x-axis of Figures 1b and 9.
///
/// # Panics
///
/// Panics if `n` is zero or greater than the number of groups.
pub fn cumulative_group_space(n: usize) -> CounterSpace {
    assert!(n >= 1 && n <= HecGroup::ALL.len(), "need 1..=4 groups");
    let names: Vec<String> = HecGroup::ALL[..n]
        .iter()
        .flat_map(|g| g.counters())
        .collect();
    CounterSpace::new(&names)
}

/// Counter name helpers (avoid typo-prone string formatting at call sites).
pub mod names {
    use super::AccessType;

    /// `T.ret`
    pub fn ret(t: AccessType) -> String {
        format!("{t}.ret")
    }
    /// `T.ret_stlb_miss`
    pub fn ret_stlb_miss(t: AccessType) -> String {
        format!("{t}.ret_stlb_miss")
    }
    /// `T.stlb_hit`
    pub fn stlb_hit(t: AccessType) -> String {
        format!("{t}.stlb_hit")
    }
    /// `T.stlb_hit_4k`
    pub fn stlb_hit_4k(t: AccessType) -> String {
        format!("{t}.stlb_hit_4k")
    }
    /// `T.stlb_hit_2m`
    pub fn stlb_hit_2m(t: AccessType) -> String {
        format!("{t}.stlb_hit_2m")
    }
    /// `T.causes_walk`
    pub fn causes_walk(t: AccessType) -> String {
        format!("{t}.causes_walk")
    }
    /// `T.walk_done`
    pub fn walk_done(t: AccessType) -> String {
        format!("{t}.walk_done")
    }
    /// `T.walk_done_4k`
    pub fn walk_done_4k(t: AccessType) -> String {
        format!("{t}.walk_done_4k")
    }
    /// `T.walk_done_2m`
    pub fn walk_done_2m(t: AccessType) -> String {
        format!("{t}.walk_done_2m")
    }
    /// `T.walk_done_1g`
    pub fn walk_done_1g(t: AccessType) -> String {
        format!("{t}.walk_done_1g")
    }
    /// `T.pde$_miss`
    pub fn pde_miss(t: AccessType) -> String {
        format!("{t}.pde$_miss")
    }
    /// `walk_ref.l1` / `.l2` / `.l3` / `.mem`
    pub fn walk_ref(level: usize) -> String {
        match level {
            1 => "walk_ref.l1".to_string(),
            2 => "walk_ref.l2".to_string(),
            3 => "walk_ref.l3".to_string(),
            _ => "walk_ref.mem".to_string(),
        }
    }
}

/// A mutable bag of counter values keyed by counter name.
///
/// This is the simulator's ground-truth accumulator; the PMU model samples it
/// periodically, and [`CounterValues::to_vector`] projects it onto any
/// [`CounterSpace`] for analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CounterValues {
    values: BTreeMap<String, u64>,
}

impl CounterValues {
    /// Creates an empty set of counter values.
    pub fn new() -> CounterValues {
        CounterValues::default()
    }

    /// Adds one to the named counter.
    pub fn increment(&mut self, name: &str) {
        *self.values.entry(name.to_string()).or_insert(0) += 1;
    }

    /// Adds `by` to the named counter.
    pub fn add(&mut self, name: &str, by: u64) {
        *self.values.entry(name.to_string()).or_insert(0) += by;
    }

    /// The current value of the named counter (zero if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Projects the values onto a counter space as an `f64` vector (counters not
    /// present default to zero).
    pub fn to_vector(&self, space: &CounterSpace) -> Vec<f64> {
        space.names().iter().map(|n| self.get(n) as f64).collect()
    }

    /// Component-wise difference `self - earlier`, projected onto a counter space.
    /// Used by the PMU to turn cumulative counts into per-interval increments.
    ///
    /// # Panics
    ///
    /// Panics if any counter decreased (counters are monotone).
    pub fn delta_vector(&self, earlier: &CounterValues, space: &CounterSpace) -> Vec<f64> {
        space
            .names()
            .iter()
            .map(|n| {
                let now = self.get(n);
                let before = earlier.get(n);
                assert!(now >= before, "counter {n} decreased");
                (now - before) as f64
            })
            .collect()
    }

    /// Total of all counters (mostly for sanity checks in tests).
    pub fn total(&self) -> u64 {
        self.values.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_has_26_counters_in_group_order() {
        let space = full_counter_space();
        assert_eq!(space.len(), 26);
        assert_eq!(space.name(0), "load.ret");
        assert!(space.contains("store.walk_done_1g"));
        assert!(space.contains("walk_ref.mem"));
        assert!(space.contains("load.pde$_miss"));
    }

    #[test]
    fn group_sizes_match_table2() {
        assert_eq!(HecGroup::Ret.counters().len(), 4);
        assert_eq!(HecGroup::Stlb.counters().len(), 6);
        assert_eq!(HecGroup::Walk.counters().len(), 12);
        assert_eq!(HecGroup::Refs.counters().len(), 4);
        let total: usize = HecGroup::ALL.iter().map(|g| g.counters().len()).sum();
        assert_eq!(total, 26);
    }

    #[test]
    fn cumulative_group_spaces_grow() {
        assert_eq!(cumulative_group_space(1).len(), 4);
        assert_eq!(cumulative_group_space(2).len(), 10);
        assert_eq!(cumulative_group_space(3).len(), 22);
        assert_eq!(cumulative_group_space(4).len(), 26);
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn zero_groups_panics() {
        let _ = cumulative_group_space(0);
    }

    #[test]
    fn group_labels_and_prefixes() {
        assert_eq!(HecGroup::Ret.label(), "Ret");
        assert_eq!(HecGroup::Stlb.label(), "L2TLB");
        assert!(HecGroup::Refs
            .perf_event_prefix()
            .contains("page_walker_loads"));
    }

    #[test]
    fn name_helpers_match_table2_names() {
        assert_eq!(names::causes_walk(AccessType::Load), "load.causes_walk");
        assert_eq!(names::pde_miss(AccessType::Store), "store.pde$_miss");
        assert_eq!(names::walk_ref(1), "walk_ref.l1");
        assert_eq!(names::walk_ref(4), "walk_ref.mem");
        assert_eq!(names::ret(AccessType::Load), "load.ret");
        assert_eq!(
            names::ret_stlb_miss(AccessType::Store),
            "store.ret_stlb_miss"
        );
        assert_eq!(names::stlb_hit_2m(AccessType::Load), "load.stlb_hit_2m");
        assert_eq!(names::walk_done_1g(AccessType::Load), "load.walk_done_1g");
    }

    #[test]
    fn access_type_display() {
        assert_eq!(AccessType::Load.to_string(), "load");
        assert_eq!(AccessType::Store.to_string(), "store");
        assert_eq!(AccessType::ALL.len(), 2);
    }

    #[test]
    fn counter_values_accumulate_and_project() {
        let mut values = CounterValues::new();
        values.increment("load.ret");
        values.increment("load.ret");
        values.add("walk_ref.l1", 5);
        assert_eq!(values.get("load.ret"), 2);
        assert_eq!(values.get("walk_ref.l1"), 5);
        assert_eq!(values.get("never.seen"), 0);
        assert_eq!(values.total(), 7);

        let space = CounterSpace::new(&["load.ret", "walk_ref.l1", "store.ret"]);
        assert_eq!(values.to_vector(&space), vec![2.0, 5.0, 0.0]);
        assert_eq!(values.iter().count(), 2);
    }

    #[test]
    fn delta_vector_subtracts_snapshots() {
        let mut earlier = CounterValues::new();
        earlier.add("load.ret", 10);
        let mut later = earlier.clone();
        later.add("load.ret", 7);
        later.add("store.ret", 3);
        let space = CounterSpace::new(&["load.ret", "store.ret"]);
        assert_eq!(later.delta_vector(&earlier, &space), vec![7.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "decreased")]
    fn delta_vector_rejects_decreasing_counters() {
        let mut earlier = CounterValues::new();
        earlier.add("load.ret", 10);
        let later = CounterValues::new();
        let space = CounterSpace::new(&["load.ret"]);
        let _ = later.delta_vector(&earlier, &space);
    }
}
