//! A functional Intel Haswell MMU simulator and PMU model.
//!
//! The paper's case study measures hardware event counters on a real Haswell Xeon
//! with Linux `perf`.  This reproduction cannot assume access to that hardware, so
//! this crate provides the closest synthetic equivalent that exercises the same
//! analysis code paths:
//!
//! * [`hec`] — the 26 address-translation HECs of the paper's Table 2, organised
//!   into the same groups (`Ret`, `STLB`, `Walk`, `Refs`),
//! * [`mem`] — virtual addresses, page sizes and memory accesses,
//! * [`cache`] — a generic set-associative cache used for the data-cache hierarchy
//!   that classifies page-walker loads (`walk_ref.l1/l2/l3/mem`) and for the MMU's
//!   paging-structure caches,
//! * [`tlb`] — the two-level TLB hierarchy and the paging-structure caches,
//! * [`mmu`] — the MMU simulator itself: page-table walks, walk merging (MSHRs),
//!   the load–store-queue TLB prefetcher with its cache-line trigger conditions,
//!   abortable prefetch walks (accessed-bit check), walk bypassing, and the
//!   optional PML4E (root-level) MMU cache — i.e. exactly the feature set the
//!   paper reverse-engineers,
//! * [`pmu`] — a perf-like PMU with a limited number of physical counters that
//!   multiplexes the requested logical events in time slices and extrapolates, so
//!   the resulting time-series samples carry realistic multiplexing noise,
//! * [`eventdb`] — the historical counter-count database behind Figure 1a.
//!
//! The simulator is functional (it models what happens, not cycle timing), which is
//! sufficient because CounterPoint's analysis consumes only event *counts*.
//!
//! # Example
//!
//! ```
//! use counterpoint_haswell::mmu::{HaswellMmu, MmuConfig};
//! use counterpoint_haswell::mem::{MemoryAccess, PageSize};
//!
//! let mut mmu = HaswellMmu::new(MmuConfig::haswell());
//! // Touch 1 MiB linearly with 64-byte strides.
//! for i in 0..16_384u64 {
//!     mmu.access(&MemoryAccess::load(i * 64), PageSize::Size4K);
//! }
//! let counts = mmu.counts();
//! assert!(counts.get("load.ret") >= 16_384);
//! assert!(counts.get("load.causes_walk") > 0);
//! ```

pub mod cache;
pub mod eventdb;
pub mod hec;
pub mod mem;
pub mod mmu;
pub mod pmu;
pub mod tlb;

pub use hec::{full_counter_space, AccessType, CounterValues, HecGroup};
pub use mem::{MemoryAccess, PageSize, VirtAddr};
pub use mmu::{HaswellMmu, MmuConfig};
pub use pmu::{MultiplexingPmu, PmuConfig};
