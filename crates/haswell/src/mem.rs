//! Virtual addresses, page sizes and memory accesses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual address in the simulated 48-bit x86-64 address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VirtAddr(pub u64);

/// x86-64 translation page sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageSize {
    /// 4 KiB pages (leaf at the PT level; 4-level walk).
    Size4K,
    /// 2 MiB pages (leaf at the PD level; 3-level walk).
    Size2M,
    /// 1 GiB pages (leaf at the PDPT level; 2-level walk).
    Size1G,
}

impl PageSize {
    /// All page sizes used in the case study's experiments.
    pub const ALL: [PageSize; 3] = [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G];

    /// Page size in bytes.
    pub fn bytes(&self) -> u64 {
        match self {
            PageSize::Size4K => 4 << 10,
            PageSize::Size2M => 2 << 20,
            PageSize::Size1G => 1 << 30,
        }
    }

    /// log2 of the page size.
    pub fn shift(&self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// Number of page-table levels a full (cache-cold) walk traverses to reach the
    /// leaf entry: 4 for 4 KiB, 3 for 2 MiB, 2 for 1 GiB.
    pub fn walk_levels(&self) -> usize {
        match self {
            PageSize::Size4K => 4,
            PageSize::Size2M => 3,
            PageSize::Size1G => 2,
        }
    }

    /// Short label used in reports (`4k`, `2m`, `1g`).
    pub fn label(&self) -> &'static str {
        match self {
            PageSize::Size4K => "4k",
            PageSize::Size2M => "2m",
            PageSize::Size1G => "1g",
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl VirtAddr {
    /// The raw address value.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// The virtual page number for the given page size.
    pub fn vpn(&self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }

    /// Index into the PML4 table (bits 47..39).
    pub fn pml4_index(&self) -> u64 {
        (self.0 >> 39) & 0x1ff
    }

    /// Index into the PDPT table (bits 38..30).
    pub fn pdpt_index(&self) -> u64 {
        (self.0 >> 30) & 0x1ff
    }

    /// Index into the PD table (bits 29..21).
    pub fn pd_index(&self) -> u64 {
        (self.0 >> 21) & 0x1ff
    }

    /// Index into the PT table (bits 20..12).
    pub fn pt_index(&self) -> u64 {
        (self.0 >> 12) & 0x1ff
    }

    /// The 64-byte cache-line index within the 4 KiB page (0..63) — the quantity
    /// the Haswell TLB prefetcher's trigger condition is defined over (lines 51/52
    /// for ascending streams, 8/7 for descending ones).
    pub fn cache_line_in_page(&self) -> u64 {
        (self.0 >> 6) & 0x3f
    }

    /// The tag identifying the region covered by a PDE-cache entry (a 2 MiB
    /// aligned region: bits 47..21).
    pub fn pde_region(&self) -> u64 {
        self.0 >> 21
    }

    /// The tag identifying the region covered by a PDPTE-cache entry (1 GiB).
    pub fn pdpte_region(&self) -> u64 {
        self.0 >> 30
    }

    /// The tag identifying the region covered by a PML4E-cache entry (512 GiB).
    pub fn pml4e_region(&self) -> u64 {
        self.0 >> 39
    }
}

impl From<u64> for VirtAddr {
    fn from(v: u64) -> Self {
        VirtAddr(v)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// One memory access issued by a workload: an address plus whether it is a store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// The accessed virtual address.
    pub addr: VirtAddr,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

impl MemoryAccess {
    /// A load of the given address.
    pub fn load(addr: u64) -> MemoryAccess {
        MemoryAccess {
            addr: VirtAddr(addr),
            is_store: false,
        }
    }

    /// A store to the given address.
    pub fn store(addr: u64) -> MemoryAccess {
        MemoryAccess {
            addr: VirtAddr(addr),
            is_store: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_properties() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Size1G.bytes(), 1024 * 1024 * 1024);
        assert_eq!(PageSize::Size4K.walk_levels(), 4);
        assert_eq!(PageSize::Size2M.walk_levels(), 3);
        assert_eq!(PageSize::Size1G.walk_levels(), 2);
        assert_eq!(PageSize::Size2M.label(), "2m");
        assert_eq!(PageSize::Size1G.to_string(), "1g");
        for size in PageSize::ALL {
            assert_eq!(1u64 << size.shift(), size.bytes());
        }
    }

    #[test]
    fn vpn_extraction() {
        let a = VirtAddr(0x1234_5678);
        assert_eq!(a.vpn(PageSize::Size4K), 0x1234_5678 >> 12);
        assert_eq!(a.vpn(PageSize::Size2M), 0x1234_5678 >> 21);
        assert_eq!(a.vpn(PageSize::Size1G), 0);
        assert_eq!(a.raw(), 0x1234_5678);
    }

    #[test]
    fn page_table_indices_decompose_the_address() {
        // Address with distinct indices at every level.
        let a = VirtAddr((3 << 39) | (5 << 30) | (7 << 21) | (11 << 12) | 0x123);
        assert_eq!(a.pml4_index(), 3);
        assert_eq!(a.pdpt_index(), 5);
        assert_eq!(a.pd_index(), 7);
        assert_eq!(a.pt_index(), 11);
    }

    #[test]
    fn cache_line_in_page_matches_prefetcher_trigger_lines() {
        // Byte offset 51 * 64 within a page is cache line 51.
        let base = 0x40_0000u64;
        assert_eq!(VirtAddr(base + 51 * 64).cache_line_in_page(), 51);
        assert_eq!(VirtAddr(base + 52 * 64).cache_line_in_page(), 52);
        assert_eq!(VirtAddr(base + 8 * 64).cache_line_in_page(), 8);
        assert_eq!(VirtAddr(base + 7 * 64 + 63).cache_line_in_page(), 7);
    }

    #[test]
    fn region_tags_nest() {
        let a = VirtAddr(0x0000_7fff_dead_beef);
        assert_eq!(a.pde_region() >> 9, a.pdpte_region());
        assert_eq!(a.pdpte_region() >> 9, a.pml4e_region());
    }

    #[test]
    fn memory_access_constructors() {
        let l = MemoryAccess::load(0x1000);
        let s = MemoryAccess::store(0x2000);
        assert!(!l.is_store);
        assert!(s.is_store);
        assert_eq!(l.addr, VirtAddr(0x1000));
        assert_eq!(VirtAddr::from(7u64).raw(), 7);
        assert_eq!(VirtAddr(0xff).to_string(), "0xff");
    }
}
