//! The functional Haswell MMU simulator.
//!
//! The simulator implements the feature set the paper reverse-engineers on real
//! Haswell hardware, so that the analysis layer has a ground truth exhibiting the
//! same qualitative behaviours:
//!
//! * a two-level TLB hierarchy and a four-level page table,
//! * paging-structure caches (PDE, PDPTE and the undocumented root-level PML4E
//!   cache) that shorten walks,
//! * **early paging-structure-cache lookup**: the PDE cache is consulted for every
//!   translation request *before* merge/abort decisions, so `pde$_miss` can exceed
//!   `causes_walk`,
//! * **walk merging**: while a walk to a virtual page is outstanding (its TLB fill
//!   has not yet become visible), further misses to the same page merge into it and
//!   cause no additional walk,
//! * a **load–store-queue TLB prefetcher** triggered by consecutive loads to cache
//!   lines 51→52 (ascending) or 8→7 (descending) of a 4 KiB page, which issues a
//!   next/previous-page translation; prefetch-induced walks **abort** when the
//!   target page's accessed bit is unset,
//! * **walk bypassing / replays**: demand walks that find the accessed bit unset
//!   are replayed non-speculatively, and the replay's memory references are not
//!   visible to the `walk_ref.*` counters — so some walks complete with zero
//!   counted walker references.
//!
//! Every translation event increments exactly the counters of one μpath of the
//! full-featured case-study model, which is what makes the feature-complete μDD
//! feasible for the simulated observations while feature-poor μDDs are refuted.

use crate::cache::SetAssocCache;
use crate::hec::{names, AccessType, CounterValues};
use crate::mem::{MemoryAccess, PageSize, VirtAddr};
use crate::tlb::{PagingStructureCaches, TlbHierarchy, TlbOutcome};
use std::collections::{HashMap, HashSet, VecDeque};

/// Configuration of the simulated MMU (which of the reverse-engineered features are
/// present, plus sizing knobs).
#[derive(Clone, Debug)]
pub struct MmuConfig {
    /// LSQ-side TLB prefetcher (trigger lines 51/52 ascending, 8/7 descending).
    pub tlb_prefetcher: bool,
    /// Merge misses to a page with an outstanding walk instead of walking again.
    pub walk_merging: bool,
    /// Root-level (PML4E) paging-structure cache present.
    pub pml4e_cache: bool,
    /// Replay-on-first-touch: walks that find the accessed bit unset complete
    /// without visible walker references.
    pub walk_replay: bool,
    /// Number of subsequent accesses for which a started walk remains outstanding
    /// (its TLB/PSC fills are not yet visible and misses to the page merge).
    pub walk_latency: u64,
    /// Use tiny TLBs (for tests that need to force misses with few accesses).
    pub tiny_tlbs: bool,
}

impl MmuConfig {
    /// The full-featured configuration matching the behaviours the paper uncovers
    /// on real Haswell hardware.
    pub fn haswell() -> MmuConfig {
        MmuConfig {
            tlb_prefetcher: true,
            walk_merging: true,
            pml4e_cache: true,
            walk_replay: true,
            walk_latency: 6,
            tiny_tlbs: false,
        }
    }

    /// A conventional-wisdom configuration with none of the undocumented features —
    /// the hardware the paper's initial model `m0` assumes.
    pub fn conventional() -> MmuConfig {
        MmuConfig {
            tlb_prefetcher: false,
            walk_merging: false,
            pml4e_cache: false,
            walk_replay: false,
            walk_latency: 0,
            tiny_tlbs: false,
        }
    }

    /// Haswell configuration with tiny TLBs (testing convenience).
    pub fn haswell_tiny() -> MmuConfig {
        MmuConfig {
            tiny_tlbs: true,
            ..MmuConfig::haswell()
        }
    }
}

/// Synthetic page-table address allocator: gives every page-table page a distinct
/// base address so walker references can be classified by the data-cache hierarchy.
#[derive(Clone, Debug, Default)]
struct PageTableLayout {
    tables: HashMap<(u8, u64), u64>,
    next_base: u64,
}

impl PageTableLayout {
    /// Address of the page-table entry consulted at `level` (4 = PML4 … 1 = PT) for
    /// a virtual address.
    fn entry_address(&mut self, level: u8, addr: VirtAddr) -> u64 {
        let (table_key, index) = match level {
            4 => (0, addr.pml4_index()),
            3 => (addr.pml4e_region(), addr.pdpt_index()),
            2 => (addr.pdpte_region(), addr.pd_index()),
            _ => (addr.pde_region(), addr.pt_index()),
        };
        let next = &mut self.next_base;
        let base = *self.tables.entry((level, table_key)).or_insert_with(|| {
            let b = 0x100_0000_0000 + *next * 0x1000;
            *next += 1;
            b
        });
        base + index * 8
    }
}

/// How a single memory access was resolved (returned for tests and tracing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in the first-level TLB.
    L1TlbHit,
    /// Hit in the second-level TLB.
    StlbHit,
    /// Missed both TLBs and merged into an outstanding walk.
    MissMerged,
    /// Missed both TLBs and performed a page-table walk with the given number of
    /// counted walker references.
    MissWalked(u32),
    /// Missed both TLBs; the walk was replayed (completed without counted
    /// references).
    MissReplayed,
}

/// The functional Haswell MMU simulator.
pub struct HaswellMmu {
    config: MmuConfig,
    tlb: TlbHierarchy,
    psc: PagingStructureCaches,
    /// Data-cache hierarchy used to classify walker loads (L1D, L2, L3).
    l1d: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    page_table: PageTableLayout,
    /// Pages (by `(vpn, page-shift)`) whose leaf PTE has the accessed bit set.
    accessed: HashSet<(u64, u32)>,
    /// Outstanding walks: `(key, visible_at_access_index, addr, size)`.
    outstanding: VecDeque<(u64, u64, VirtAddr, PageSize)>,
    /// Previous load's `(4K page, cache line)` for the prefetcher trigger.
    last_load_line: Option<(u64, u64)>,
    access_index: u64,
    counts: CounterValues,
    /// Number of merged walks (reported in EXPERIMENTS.md: "merging reduces the
    /// number of distinct walks by nearly half for some workloads").
    merged_walks: u64,
    prefetch_walks: u64,
    aborted_prefetches: u64,
    replayed_walks: u64,
}

impl HaswellMmu {
    /// Creates a simulator with the given configuration.
    pub fn new(config: MmuConfig) -> HaswellMmu {
        let tlb = if config.tiny_tlbs {
            TlbHierarchy::tiny()
        } else {
            TlbHierarchy::haswell()
        };
        let psc = PagingStructureCaches::new(config.pml4e_cache);
        HaswellMmu {
            config,
            tlb,
            psc,
            l1d: SetAssocCache::new(64, 8),
            l2: SetAssocCache::new(512, 8),
            l3: SetAssocCache::new(2048, 16),
            page_table: PageTableLayout::default(),
            accessed: HashSet::new(),
            outstanding: VecDeque::new(),
            last_load_line: None,
            access_index: 0,
            counts: CounterValues::new(),
            merged_walks: 0,
            prefetch_walks: 0,
            aborted_prefetches: 0,
            replayed_walks: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MmuConfig {
        &self.config
    }

    /// The accumulated hardware event counts.
    pub fn counts(&self) -> &CounterValues {
        &self.counts
    }

    /// Number of translation requests that merged into an outstanding walk.
    pub fn merged_walks(&self) -> u64 {
        self.merged_walks
    }

    /// Number of walks initiated by the TLB prefetcher.
    pub fn prefetch_walks(&self) -> u64 {
        self.prefetch_walks
    }

    /// Number of prefetch requests aborted due to an unset accessed bit.
    pub fn aborted_prefetches(&self) -> u64 {
        self.aborted_prefetches
    }

    /// Number of walks replayed (completed without counted walker references).
    pub fn replayed_walks(&self) -> u64 {
        self.replayed_walks
    }

    /// Total number of accesses processed.
    pub fn accesses(&self) -> u64 {
        self.access_index
    }

    /// Runs a whole access stream with a single page size.
    pub fn run<I: IntoIterator<Item = MemoryAccess>>(&mut self, accesses: I, size: PageSize) {
        for a in accesses {
            self.access(&a, size);
        }
    }

    /// Processes one memory access mapped with the given page size and returns how
    /// it was resolved.
    pub fn access(&mut self, access: &MemoryAccess, size: PageSize) -> AccessOutcome {
        self.access_index += 1;
        self.commit_outstanding();

        let t = if access.is_store {
            AccessType::Store
        } else {
            AccessType::Load
        };
        self.counts.increment(&names::ret(t));

        // Prefetcher trigger scan happens in the load/store queue, i.e. before the
        // TLB is consulted, and only for loads to 4 KiB-mapped regions.
        if self.config.tlb_prefetcher && !access.is_store && size == PageSize::Size4K {
            self.prefetcher_scan(access.addr);
        }

        match self.tlb.lookup(access.addr, size) {
            TlbOutcome::L1Hit => AccessOutcome::L1TlbHit,
            TlbOutcome::StlbHit => {
                self.counts.increment(&names::stlb_hit(t));
                match size {
                    PageSize::Size4K => self.counts.increment(&names::stlb_hit_4k(t)),
                    PageSize::Size2M => self.counts.increment(&names::stlb_hit_2m(t)),
                    PageSize::Size1G => {}
                }
                AccessOutcome::StlbHit
            }
            TlbOutcome::Miss => {
                self.counts.increment(&names::ret_stlb_miss(t));
                self.translation_request(t, access.addr, size, false)
            }
        }
    }

    /// Makes the fills of walks whose latency has elapsed visible.
    fn commit_outstanding(&mut self) {
        while let Some(&(_, visible_at, addr, size)) = self.outstanding.front() {
            if visible_at > self.access_index {
                break;
            }
            self.tlb.fill(addr, size);
            self.psc.fill_from_walk(addr, size);
            self.outstanding.pop_front();
        }
    }

    fn outstanding_contains(&self, key: u64) -> bool {
        self.outstanding.iter().any(|&(k, _, _, _)| k == key)
    }

    /// The LSQ scan that drives the TLB prefetcher: consecutive loads to cache
    /// lines 51→52 (ascending) or 8→7 (descending) within a 4 KiB page trigger a
    /// prefetch of the next / previous page.
    fn prefetcher_scan(&mut self, addr: VirtAddr) {
        let page = addr.vpn(PageSize::Size4K);
        let line = addr.cache_line_in_page();
        if let Some((prev_page, prev_line)) = self.last_load_line {
            if prev_page == page {
                if prev_line == 51 && line == 52 {
                    self.issue_prefetch(page.wrapping_add(1));
                } else if prev_line == 8 && line == 7 {
                    self.issue_prefetch(page.wrapping_sub(1));
                }
            }
        }
        self.last_load_line = Some((page, line));
    }

    fn issue_prefetch(&mut self, target_vpn: u64) {
        let addr = VirtAddr(target_vpn << PageSize::Size4K.shift());
        if self.tlb.contains(addr, PageSize::Size4K) {
            return;
        }
        self.translation_request(AccessType::Load, addr, PageSize::Size4K, true);
    }

    /// Handles a translation request that missed both TLB levels (demand miss or
    /// prefetch).
    fn translation_request(
        &mut self,
        t: AccessType,
        addr: VirtAddr,
        size: PageSize,
        is_prefetch: bool,
    ) -> AccessOutcome {
        let key = walk_key(addr, size);

        // Early paging-structure-cache lookup: the PDE cache is consulted for every
        // 4 KiB translation request, before the merge/abort decisions — this is the
        // behaviour that lets pde$_miss exceed causes_walk.
        let mut pde_hit = false;
        if size == PageSize::Size4K {
            pde_hit = self.psc.pde_hit(addr);
            if !pde_hit {
                self.counts.increment(&names::pde_miss(t));
            }
        }

        // Walk merging: a miss to a page with an outstanding walk does not start a
        // new walk.
        if self.config.walk_merging && self.outstanding_contains(key) {
            self.merged_walks += 1;
            return AccessOutcome::MissMerged;
        }

        let page_key = (addr.vpn(size), size.shift());
        let accessed_bit_set = self.accessed.contains(&page_key);

        // Prefetch-induced walks abort when the accessed bit of the target page is
        // unset (setting it speculatively could distort paging decisions).
        if is_prefetch && !accessed_bit_set {
            self.aborted_prefetches += 1;
            return AccessOutcome::MissMerged;
        }

        if is_prefetch {
            self.prefetch_walks += 1;
        }

        // The walk starts now and its fills become visible after the walk latency.
        let visible_at = self.access_index + self.config.walk_latency;
        self.outstanding.push_back((key, visible_at, addr, size));
        if self.config.walk_latency == 0 {
            // Immediate visibility keeps the no-merging configuration simple.
            self.tlb.fill(addr, size);
            self.psc.fill_from_walk(addr, size);
            self.outstanding.pop_back();
        }

        self.counts.increment(&names::causes_walk(t));

        // Replay-on-first-touch: the speculative walk observes an unset accessed
        // bit and is replayed non-speculatively; the replay's references are not
        // counted by walk_ref.*.
        let outcome = if self.config.walk_replay && !accessed_bit_set {
            self.replayed_walks += 1;
            AccessOutcome::MissReplayed
        } else {
            let refs = self.perform_walk_references(addr, size, pde_hit);
            AccessOutcome::MissWalked(refs)
        };

        self.counts.increment(&names::walk_done(t));
        match size {
            PageSize::Size4K => self.counts.increment(&names::walk_done_4k(t)),
            PageSize::Size2M => self.counts.increment(&names::walk_done_2m(t)),
            PageSize::Size1G => self.counts.increment(&names::walk_done_1g(t)),
        }

        self.accessed.insert(page_key);
        outcome
    }

    /// Issues the walker's memory references for a (non-replayed) walk, classifying
    /// each against the data-cache hierarchy, and returns how many were made.
    fn perform_walk_references(&mut self, addr: VirtAddr, size: PageSize, pde_hit: bool) -> u32 {
        let levels: Vec<u8> = match size {
            PageSize::Size4K => {
                if pde_hit {
                    vec![1]
                } else if self.psc.pdpte_hit(addr) {
                    vec![2, 1]
                } else if self.psc.pml4e_hit(addr) {
                    vec![3, 2, 1]
                } else {
                    vec![4, 3, 2, 1]
                }
            }
            PageSize::Size2M => {
                if self.psc.pdpte_hit(addr) {
                    vec![2]
                } else if self.psc.pml4e_hit(addr) {
                    vec![3, 2]
                } else {
                    vec![4, 3, 2]
                }
            }
            PageSize::Size1G => {
                if self.psc.pml4e_hit(addr) {
                    vec![3]
                } else {
                    vec![4, 3]
                }
            }
        };
        let mut refs = 0u32;
        for level in levels {
            let pte_line = self.page_table.entry_address(level, addr) >> 6;
            let counter = if self.l1d.access(pte_line) {
                names::walk_ref(1)
            } else if self.l2.access(pte_line) {
                names::walk_ref(2)
            } else if self.l3.access(pte_line) {
                names::walk_ref(3)
            } else {
                names::walk_ref(4)
            };
            self.counts.increment(&counter);
            refs += 1;
        }
        refs
    }
}

/// A key identifying the translation a walk resolves (page size included so 4 KiB
/// and 2 MiB mappings of the same address range do not alias).
fn walk_key(addr: VirtAddr, size: PageSize) -> u64 {
    (addr.vpn(size) << 2) | size.walk_levels() as u64 & 0x3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_accesses(bytes: u64, stride: u64) -> Vec<MemoryAccess> {
        (0..bytes / stride)
            .map(|i| MemoryAccess::load(i * stride))
            .collect()
    }

    #[test]
    fn every_access_retires() {
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        mmu.run(linear_accesses(1 << 20, 64), PageSize::Size4K);
        assert_eq!(mmu.counts().get("load.ret"), (1 << 20) / 64);
        assert_eq!(mmu.accesses(), (1 << 20) / 64);
    }

    #[test]
    fn stores_use_store_counters() {
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        let accesses: Vec<MemoryAccess> = (0..1000u64)
            .map(|i| MemoryAccess::store(i * 4096))
            .collect();
        mmu.run(accesses, PageSize::Size4K);
        assert_eq!(mmu.counts().get("store.ret"), 1000);
        assert_eq!(mmu.counts().get("load.ret"), 0);
        assert!(mmu.counts().get("store.causes_walk") > 0);
        assert_eq!(mmu.counts().get("load.causes_walk"), 0);
    }

    #[test]
    fn repeated_page_hits_the_tlb() {
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        let accesses: Vec<MemoryAccess> = (0..100).map(|_| MemoryAccess::load(0x1000)).collect();
        mmu.run(accesses, PageSize::Size4K);
        // Only accesses issued before the first walk's fill becomes visible can
        // miss, and only the first of them starts a walk.
        assert!(mmu.counts().get("load.ret_stlb_miss") <= MmuConfig::haswell().walk_latency + 1);
        assert_eq!(mmu.counts().get("load.causes_walk"), 1);
    }

    #[test]
    fn walks_complete_for_every_page_size() {
        for size in PageSize::ALL {
            let mut mmu = HaswellMmu::new(MmuConfig::haswell());
            let accesses: Vec<MemoryAccess> = (0..64u64)
                .map(|i| MemoryAccess::load(i * size.bytes()))
                .collect();
            mmu.run(accesses, size);
            let done = mmu
                .counts()
                .get(&format!("load.walk_done_{}", size.label()));
            assert!(done > 0, "no completed walks for {size}");
            assert_eq!(mmu.counts().get("load.walk_done"), done);
        }
    }

    #[test]
    fn merging_produces_more_retired_misses_than_walks() {
        // Several consecutive misses to the same page within the walk latency merge
        // into a single walk (stride small enough to revisit the page, footprint
        // large enough to defeat the TLB; prefetcher disabled from triggering by
        // the 256-byte stride which skips lines 51/52 adjacency).
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        let accesses: Vec<MemoryAccess> = (0..200_000u64)
            .map(|i| MemoryAccess::load(i * 256))
            .collect();
        mmu.run(accesses, PageSize::Size4K);
        assert!(mmu.merged_walks() > 0);
        assert!(
            mmu.counts().get("load.ret_stlb_miss") > mmu.counts().get("load.walk_done"),
            "merging should make retired STLB misses exceed completed walks"
        );
    }

    #[test]
    fn disabling_merging_restores_one_walk_per_miss() {
        let mut config = MmuConfig::haswell();
        config.walk_merging = false;
        config.tlb_prefetcher = false;
        let mut mmu = HaswellMmu::new(config);
        let accesses: Vec<MemoryAccess> = (0..100_000u64)
            .map(|i| MemoryAccess::load(i * 256))
            .collect();
        mmu.run(accesses, PageSize::Size4K);
        assert_eq!(mmu.merged_walks(), 0);
        assert_eq!(
            mmu.counts().get("load.ret_stlb_miss"),
            mmu.counts().get("load.causes_walk")
        );
    }

    #[test]
    fn early_pde_lookup_lets_pde_misses_exceed_walks() {
        // Pairs of accesses to two lines of the same random-ish page: the second
        // access merges but still looks up the (cold) PDE cache.
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        let mut accesses = Vec::new();
        for i in 0..60_000u64 {
            // Spread pages across many 2 MiB regions so the PDE cache keeps missing.
            let page = (i * 977) % 500_000;
            let base = page * 4096;
            accesses.push(MemoryAccess::load(base));
            accesses.push(MemoryAccess::load(base + 128));
        }
        mmu.run(accesses, PageSize::Size4K);
        assert!(
            mmu.counts().get("load.pde$_miss") > mmu.counts().get("load.causes_walk"),
            "early PSC lookup + merging should let pde$_miss ({}) exceed causes_walk ({})",
            mmu.counts().get("load.pde$_miss"),
            mmu.counts().get("load.causes_walk")
        );
    }

    #[test]
    fn prefetcher_walks_without_retired_misses() {
        // A linear 64-byte-stride scan walks each page once via the prefetcher in
        // the steady state; run two passes so accessed bits are set and prefetch
        // walks are not aborted.
        let footprint = 8 << 20; // 8 MiB > TLB reach
        let pass = linear_accesses(footprint, 64);
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        mmu.run(pass.clone(), PageSize::Size4K);
        let misses_first = mmu.counts().get("load.ret_stlb_miss");
        mmu.run(pass.clone(), PageSize::Size4K);
        mmu.run(pass, PageSize::Size4K);
        assert!(
            mmu.prefetch_walks() > 0,
            "prefetcher should have issued walks"
        );
        // In the steady state most pages are covered by prefetch, so walks exceed
        // retired STLB misses accumulated after the first pass.
        let misses_total = mmu.counts().get("load.ret_stlb_miss");
        let walks = mmu.counts().get("load.causes_walk");
        assert!(
            walks > misses_total - misses_first,
            "prefetch-induced walks ({walks}) should exceed demand misses after warm-up"
        );
    }

    #[test]
    fn prefetches_to_untouched_pages_abort() {
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        // Single pass: every prefetch targets a page whose accessed bit is unset.
        mmu.run(linear_accesses(4 << 20, 64), PageSize::Size4K);
        assert!(mmu.aborted_prefetches() > 0);
        assert_eq!(mmu.prefetch_walks(), 0);
    }

    #[test]
    fn descending_streams_also_trigger_the_prefetcher() {
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        let footprint: u64 = 4 << 20;
        let descending: Vec<MemoryAccess> = (0..footprint / 64)
            .map(|i| MemoryAccess::load(footprint - 64 - i * 64))
            .collect();
        // Two passes: first sets accessed bits, second prefetches successfully.
        mmu.run(descending.clone(), PageSize::Size4K);
        mmu.run(descending, PageSize::Size4K);
        assert!(mmu.prefetch_walks() > 0);
    }

    #[test]
    fn first_touch_walks_are_replayed_without_refs() {
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        // Touch many distinct pages exactly once with a large stride (no prefetch,
        // no merging opportunities).
        let accesses: Vec<MemoryAccess> = (0..50_000u64)
            .map(|i| MemoryAccess::load(i * 4096))
            .collect();
        mmu.run(accesses, PageSize::Size4K);
        assert!(mmu.replayed_walks() > 0);
        let total_refs: u64 = (1..=4).map(|l| mmu.counts().get(&names::walk_ref(l))).sum();
        let walks = mmu.counts().get("load.causes_walk");
        assert!(
            total_refs < walks,
            "replayed walks should leave walk_ref ({total_refs}) below causes_walk ({walks})"
        );
    }

    #[test]
    fn disabling_replay_makes_every_walk_reference_memory() {
        let mut config = MmuConfig::haswell();
        config.walk_replay = false;
        config.tlb_prefetcher = false;
        let mut mmu = HaswellMmu::new(config);
        let accesses: Vec<MemoryAccess> = (0..20_000u64)
            .map(|i| MemoryAccess::load(i * 4096))
            .collect();
        mmu.run(accesses, PageSize::Size4K);
        let total_refs: u64 = (1..=4).map(|l| mmu.counts().get(&names::walk_ref(l))).sum();
        assert!(total_refs >= mmu.counts().get("load.causes_walk"));
    }

    #[test]
    fn pml4e_cache_shortens_one_gig_walks() {
        let run_refs = |pml4e: bool| {
            let mut config = MmuConfig::haswell();
            config.pml4e_cache = pml4e;
            config.walk_replay = false;
            config.tlb_prefetcher = false;
            let mut mmu = HaswellMmu::new(config);
            // Two 1 GiB pages accessed alternately; the 4-entry 1G L1 TLB holds
            // them, so force misses by touching many distinct 1G pages.
            let accesses: Vec<MemoryAccess> = (0..2_000u64)
                .map(|i| MemoryAccess::load((i % 64) << 30))
                .collect();
            mmu.run(accesses, PageSize::Size1G);
            (1..=4)
                .map(|l| mmu.counts().get(&names::walk_ref(l)))
                .sum::<u64>()
        };
        assert!(run_refs(true) < run_refs(false));
    }

    #[test]
    fn stlb_hits_are_counted_with_their_page_size() {
        let mut mmu = HaswellMmu::new(MmuConfig::haswell_tiny());
        // Access enough 4K pages to overflow the tiny L1 but stay within the STLB.
        let accesses: Vec<MemoryAccess> = (0..4u64)
            .cycle()
            .take(200)
            .map(|p| MemoryAccess::load(p * 4096))
            .collect();
        mmu.run(accesses, PageSize::Size4K);
        assert_eq!(
            mmu.counts().get("load.stlb_hit"),
            mmu.counts().get("load.stlb_hit_4k")
        );
    }

    #[test]
    fn conventional_configuration_has_no_undocumented_behaviour() {
        let mut mmu = HaswellMmu::new(MmuConfig::conventional());
        mmu.run(linear_accesses(4 << 20, 64), PageSize::Size4K);
        assert_eq!(mmu.merged_walks(), 0);
        assert_eq!(mmu.prefetch_walks(), 0);
        assert_eq!(mmu.aborted_prefetches(), 0);
        assert_eq!(mmu.replayed_walks(), 0);
        // Without merging or prefetching, misses and walks line up exactly.
        assert_eq!(
            mmu.counts().get("load.ret_stlb_miss"),
            mmu.counts().get("load.causes_walk")
        );
        let total_refs: u64 = (1..=4).map(|l| mmu.counts().get(&names::walk_ref(l))).sum();
        assert!(total_refs >= mmu.counts().get("load.causes_walk"));
    }

    #[test]
    fn access_outcome_reflects_resolution() {
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        let first = mmu.access(&MemoryAccess::load(0x5000), PageSize::Size4K);
        assert!(matches!(
            first,
            AccessOutcome::MissReplayed | AccessOutcome::MissWalked(_)
        ));
        // Walk latency has not elapsed: a second access to the same page merges.
        let second = mmu.access(&MemoryAccess::load(0x5040), PageSize::Size4K);
        assert_eq!(second, AccessOutcome::MissMerged);
        // After enough unrelated accesses the fill becomes visible and we hit.
        for i in 0..10u64 {
            mmu.access(
                &MemoryAccess::load(0x9000_0000 + i * 4096),
                PageSize::Size4K,
            );
        }
        let third = mmu.access(&MemoryAccess::load(0x5080), PageSize::Size4K);
        assert_eq!(third, AccessOutcome::L1TlbHit);
    }
}
