//! A perf-like PMU model with counter multiplexing.
//!
//! Real x86-64 cores expose only a handful of physical counters (4 per hyperthread
//! on Haswell, 8 with SMT off), so measuring more logical events forces the kernel
//! to time-multiplex them: each event is counted only during its share of the
//! measurement interval and the observed value is extrapolated by the
//! enabled/running time ratio.  The extrapolation is noisy because program phases
//! are not uniform across the interval — and the noise grows as more events are
//! multiplexed, which is exactly the effect behind the paper's Figure 1c and the
//! motivation for counter confidence regions.
//!
//! [`MultiplexingPmu`] reproduces this: it takes the per-interval ground-truth
//! increments from the simulator, splits each interval into scheduling slices with
//! phase-dependent intensity, counts each event only on the slices its group is
//! scheduled on, and extrapolates.

use crate::hec::CounterValues;
use crate::mem::{MemoryAccess, PageSize};
use crate::mmu::HaswellMmu;
use counterpoint_mudd::CounterSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// PMU configuration.
#[derive(Clone, Debug)]
pub struct PmuConfig {
    /// Number of physical counters available simultaneously (Haswell: 4 with SMT
    /// enabled, 8 with SMT disabled).
    pub physical_counters: usize,
    /// Number of scheduling slices per measurement interval.
    pub slices_per_interval: usize,
    /// Relative phase non-uniformity across slices (0 = perfectly uniform program,
    /// larger values = burstier program and therefore noisier extrapolation).
    pub phase_variation: f64,
    /// RNG seed (the model is deterministic given the seed).
    pub seed: u64,
}

impl Default for PmuConfig {
    fn default() -> Self {
        PmuConfig {
            physical_counters: 4,
            slices_per_interval: 50,
            phase_variation: 0.25,
            seed: 0xC0FFEE,
        }
    }
}

impl PmuConfig {
    /// A noise-free PMU: as many physical counters as needed and uniform phases.
    pub fn noiseless() -> PmuConfig {
        PmuConfig {
            physical_counters: usize::MAX,
            slices_per_interval: 1,
            phase_variation: 0.0,
            seed: 0,
        }
    }
}

/// Number of multiplexing rounds (event groups that take turns on the physical
/// counters) needed to observe `num_events` logical events on
/// `physical_counters` physical counters.
///
/// This is the scheduling kernel shared by [`MultiplexingPmu`] and the
/// `counterpoint-collect` event-schedule planner: one round when everything
/// fits, `ceil(events / counters)` rounds otherwise.
pub fn multiplexing_rounds(num_events: usize, physical_counters: usize) -> usize {
    num_events.div_ceil(physical_counters.max(1))
}

/// Runs an access stream on a simulator, splitting it into chunks of
/// `len / intervals` accesses, and returns the noise-free per-interval counter
/// increments over `space` — the ground truth a PMU model samples from.
///
/// `intervals` is the *requested* interval count: when the access count is not
/// divisible by it the trailing remainder becomes one extra (shorter) row, and
/// when there are fewer accesses than intervals fewer rows come back — callers
/// must size from the returned vector, not from `intervals`.
///
/// # Panics
///
/// Panics if `intervals` is zero.
pub fn ground_truth_intervals(
    mmu: &mut HaswellMmu,
    accesses: &[MemoryAccess],
    page_size: PageSize,
    space: &CounterSpace,
    intervals: usize,
) -> Vec<Vec<f64>> {
    assert!(intervals > 0, "need at least one measurement interval");
    let chunk = (accesses.len() / intervals).max(1);
    let mut true_increments = Vec::with_capacity(intervals);
    let mut previous: CounterValues = mmu.counts().clone();
    for slice in accesses.chunks(chunk) {
        for a in slice {
            mmu.access(a, page_size);
        }
        let now = mmu.counts().clone();
        true_increments.push(now.delta_vector(&previous, space));
        previous = now;
    }
    true_increments
}

/// The multiplexing PMU model.
#[derive(Clone, Debug)]
pub struct MultiplexingPmu {
    config: PmuConfig,
}

impl MultiplexingPmu {
    /// Creates a PMU with the given configuration.
    pub fn new(config: PmuConfig) -> MultiplexingPmu {
        MultiplexingPmu { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PmuConfig {
        &self.config
    }

    /// Converts per-interval ground-truth increments into the samples a perf-style
    /// tool would report when `num_events` logical events are programmed.
    ///
    /// Each returned row corresponds to one measurement interval; each column to
    /// one counter of the input rows.  When the number of events fits in the
    /// physical counters the samples equal the ground truth; otherwise each event
    /// is observed on a subset of slices and extrapolated.
    ///
    /// # Panics
    ///
    /// Panics if `num_events` is zero or the input rows have inconsistent lengths.
    pub fn sample_intervals(
        &self,
        true_increments: &[Vec<f64>],
        num_events: usize,
    ) -> Vec<Vec<f64>> {
        assert!(num_events > 0, "at least one event must be programmed");
        let groups = multiplexing_rounds(num_events, self.config.physical_counters);
        self.sample_intervals_assigned(true_increments, groups, |event_idx| event_idx % groups)
    }

    /// Like [`sample_intervals`](MultiplexingPmu::sample_intervals), but with an
    /// explicit multiplexing schedule: `rounds` scheduling rounds, with column
    /// `event_idx` of the input counted only on the slices assigned to round
    /// `round_of(event_idx)`.
    ///
    /// This is the entry point the `counterpoint-collect` event-schedule planner
    /// drives; the default round-robin schedule of `sample_intervals` is the
    /// special case `round_of = |e| e % rounds`.
    ///
    /// # Panics
    ///
    /// Panics if the input rows have inconsistent lengths or `round_of` returns
    /// a round `>= rounds`.
    pub fn sample_intervals_assigned(
        &self,
        true_increments: &[Vec<f64>],
        rounds: usize,
        round_of: impl Fn(usize) -> usize,
    ) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let slices = self.config.slices_per_interval.max(1);
        let groups = rounds.max(1);

        let dim = true_increments.first().map(|r| r.len()).unwrap_or(0);
        let mut samples = Vec::with_capacity(true_increments.len());
        for row in true_increments {
            assert_eq!(row.len(), dim, "inconsistent interval dimensions");
            // Phase intensity profile of this interval: how much of the interval's
            // activity falls into each slice (sums to 1).
            let mut weights: Vec<f64> = (0..slices)
                .map(|_| (1.0 + self.config.phase_variation * rng.gen_range(-1.0..1.0)).max(0.05))
                .collect();
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }

            let mut sampled_row = Vec::with_capacity(row.len());
            for (event_idx, &value) in row.iter().enumerate() {
                if groups <= 1 {
                    sampled_row.push(value);
                    continue;
                }
                // The event's group is scheduled on every `groups`-th slice.
                let group = round_of(event_idx);
                assert!(group < groups, "round {group} out of range (< {groups})");
                let mut observed_fraction = 0.0;
                let mut active_slices = 0usize;
                for (slice, w) in weights.iter().enumerate() {
                    if slice % groups == group {
                        observed_fraction += w;
                        active_slices += 1;
                    }
                }
                if active_slices == 0 || observed_fraction <= 0.0 {
                    sampled_row.push(0.0);
                    continue;
                }
                // perf extrapolates by time-enabled / time-running, i.e. assumes the
                // observed slices are representative.
                let time_fraction = active_slices as f64 / slices as f64;
                let observed = value * observed_fraction;
                sampled_row.push(observed / time_fraction);
            }
            samples.push(sampled_row);
        }
        samples
    }

    /// Runs an access stream on a simulator, splitting it into roughly
    /// `intervals` chunks (see [`ground_truth_intervals`] for the exact row
    /// count), and returns the multiplexed per-interval samples over `space`.
    ///
    /// This is the simulated equivalent of `perf stat -I` on the real machine.
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is zero.
    pub fn collect(
        &self,
        mmu: &mut HaswellMmu,
        accesses: &[MemoryAccess],
        page_size: PageSize,
        space: &CounterSpace,
        intervals: usize,
    ) -> Vec<Vec<f64>> {
        let true_increments = ground_truth_intervals(mmu, accesses, page_size, space, intervals);
        self.sample_intervals(&true_increments, space.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmu::MmuConfig;

    fn uniform_intervals(n: usize, dim: usize, value: f64) -> Vec<Vec<f64>> {
        vec![vec![value; dim]; n]
    }

    #[test]
    fn no_multiplexing_returns_ground_truth() {
        let pmu = MultiplexingPmu::new(PmuConfig {
            physical_counters: 8,
            ..PmuConfig::default()
        });
        let truth = uniform_intervals(5, 4, 100.0);
        let samples = pmu.sample_intervals(&truth, 4);
        assert_eq!(samples, truth);
    }

    #[test]
    fn noiseless_config_is_exact_even_with_many_events() {
        let pmu = MultiplexingPmu::new(PmuConfig::noiseless());
        let truth = uniform_intervals(3, 26, 1234.0);
        let samples = pmu.sample_intervals(&truth, 26);
        assert_eq!(samples, truth);
    }

    #[test]
    fn multiplexing_preserves_expected_magnitude() {
        let pmu = MultiplexingPmu::new(PmuConfig::default());
        let truth = uniform_intervals(200, 26, 10_000.0);
        let samples = pmu.sample_intervals(&truth, 26);
        for row in &samples {
            for &v in row {
                // Extrapolated values stay within a factor of ~2 of the truth and
                // are never negative.
                assert!(v >= 0.0);
                assert!(v > 3_000.0 && v < 30_000.0, "implausible extrapolation {v}");
            }
        }
        // The mean across many intervals converges near the truth.
        let mean: f64 = samples.iter().map(|r| r[0]).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10_000.0).abs() / 10_000.0 < 0.2);
    }

    #[test]
    fn noise_grows_with_the_number_of_multiplexed_events() {
        let spread = |num_events: usize| {
            let pmu = MultiplexingPmu::new(PmuConfig::default());
            let truth = uniform_intervals(300, num_events, 10_000.0);
            let samples = pmu.sample_intervals(&truth, num_events);
            let values: Vec<f64> = samples.iter().map(|r| r[0]).collect();
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let var =
                values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
            var.sqrt()
        };
        let few = spread(4);
        let many = spread(26);
        assert!(
            many > few,
            "multiplexing noise should grow with active events (4 -> {few}, 26 -> {many})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let truth = uniform_intervals(10, 12, 500.0);
        let a = MultiplexingPmu::new(PmuConfig::default()).sample_intervals(&truth, 12);
        let b = MultiplexingPmu::new(PmuConfig::default()).sample_intervals(&truth, 12);
        assert_eq!(a, b);
        let c = MultiplexingPmu::new(PmuConfig {
            seed: 42,
            ..PmuConfig::default()
        })
        .sample_intervals(&truth, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn collect_produces_one_row_per_interval() {
        let space = crate::hec::full_counter_space();
        let pmu = MultiplexingPmu::new(PmuConfig::noiseless());
        let mut mmu = HaswellMmu::new(MmuConfig::haswell());
        let accesses: Vec<MemoryAccess> =
            (0..10_000u64).map(|i| MemoryAccess::load(i * 64)).collect();
        let samples = pmu.collect(&mut mmu, &accesses, PageSize::Size4K, &space, 8);
        assert_eq!(samples.len(), 8);
        assert_eq!(samples[0].len(), 26);
        // Noiseless sampling sums back to the ground truth.
        let ret_idx = space.index_of("load.ret").unwrap();
        let total_ret: f64 = samples.iter().map(|r| r[ret_idx]).sum();
        assert_eq!(total_ret, 10_000.0);
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn zero_events_panics() {
        let pmu = MultiplexingPmu::new(PmuConfig::default());
        let _ = pmu.sample_intervals(&[], 0);
    }

    #[test]
    fn multiplexing_rounds_formula() {
        assert_eq!(multiplexing_rounds(4, 4), 1);
        assert_eq!(multiplexing_rounds(5, 4), 2);
        assert_eq!(multiplexing_rounds(26, 4), 7);
        assert_eq!(multiplexing_rounds(26, usize::MAX), 1);
        assert_eq!(multiplexing_rounds(3, 0), 3);
    }

    #[test]
    fn explicit_round_robin_schedule_matches_default() {
        let truth = uniform_intervals(50, 26, 10_000.0);
        let pmu = MultiplexingPmu::new(PmuConfig::default());
        let default = pmu.sample_intervals(&truth, 26);
        let rounds = multiplexing_rounds(26, pmu.config().physical_counters);
        let explicit = pmu.sample_intervals_assigned(&truth, rounds, |e| e % rounds);
        assert_eq!(default, explicit);
    }

    #[test]
    fn collect_equals_ground_truth_plus_sampling() {
        let space = crate::hec::full_counter_space();
        let pmu = MultiplexingPmu::new(PmuConfig::default());
        let accesses: Vec<MemoryAccess> = (0..20_000u64)
            .map(|i| MemoryAccess::load(i * 4096))
            .collect();
        let mut mmu_a = HaswellMmu::new(MmuConfig::haswell());
        let collected = pmu.collect(&mut mmu_a, &accesses, PageSize::Size4K, &space, 6);
        let mut mmu_b = HaswellMmu::new(MmuConfig::haswell());
        let truth = ground_truth_intervals(&mut mmu_b, &accesses, PageSize::Size4K, &space, 6);
        assert_eq!(collected, pmu.sample_intervals(&truth, space.len()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_round_panics() {
        let pmu = MultiplexingPmu::new(PmuConfig::default());
        let truth = uniform_intervals(2, 4, 10.0);
        let _ = pmu.sample_intervals_assigned(&truth, 2, |_| 5);
    }
}
