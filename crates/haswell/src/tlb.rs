//! The Haswell TLB hierarchy and paging-structure caches.

use crate::cache::SetAssocCache;
use crate::mem::{PageSize, VirtAddr};

/// The first-level data TLBs (per page size) plus the shared second-level TLB
/// (STLB).
///
/// Haswell's documented organisation is approximated: a 64-entry 4-way L1 DTLB for
/// 4 KiB pages, 32 entries for 2 MiB, 4 entries for 1 GiB, and a 1024-entry 8-way
/// STLB shared by 4 KiB and 2 MiB translations (1 GiB translations are not held in
/// the STLB).
#[derive(Clone, Debug)]
pub struct TlbHierarchy {
    l1_4k: SetAssocCache,
    l1_2m: SetAssocCache,
    l1_1g: SetAssocCache,
    stlb: SetAssocCache,
}

/// Outcome of a TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the first-level TLB: no translation activity at all.
    L1Hit,
    /// Miss in L1 but hit in the STLB (only possible for 4 KiB / 2 MiB pages).
    StlbHit,
    /// Miss in both levels: a translation request must be sent to the MMU.
    Miss,
}

impl TlbHierarchy {
    /// Creates the hierarchy with Haswell-like sizes.
    pub fn haswell() -> TlbHierarchy {
        TlbHierarchy {
            l1_4k: SetAssocCache::new(16, 4),
            l1_2m: SetAssocCache::new(8, 4),
            l1_1g: SetAssocCache::fully_associative(4),
            stlb: SetAssocCache::new(128, 8),
        }
    }

    /// Creates a tiny hierarchy (useful in tests to force misses quickly).
    pub fn tiny() -> TlbHierarchy {
        TlbHierarchy {
            l1_4k: SetAssocCache::new(2, 2),
            l1_2m: SetAssocCache::new(1, 2),
            l1_1g: SetAssocCache::fully_associative(1),
            stlb: SetAssocCache::new(4, 2),
        }
    }

    fn l1_for(&mut self, size: PageSize) -> &mut SetAssocCache {
        match size {
            PageSize::Size4K => &mut self.l1_4k,
            PageSize::Size2M => &mut self.l1_2m,
            PageSize::Size1G => &mut self.l1_1g,
        }
    }

    /// Looks up a translation, updating LRU state and filling on miss resolution
    /// being the caller's responsibility (call [`TlbHierarchy::fill`] when the walk
    /// completes).
    pub fn lookup(&mut self, addr: VirtAddr, size: PageSize) -> TlbOutcome {
        let vpn = addr.vpn(size);
        if self.l1_for(size).probe(vpn) {
            self.l1_for(size).fill(vpn); // promote
            return TlbOutcome::L1Hit;
        }
        if size != PageSize::Size1G && self.stlb.probe(vpn ^ stlb_tag_salt(size)) {
            self.stlb.fill(vpn ^ stlb_tag_salt(size));
            // An STLB hit refills the L1 TLB.
            self.l1_for(size).fill(vpn);
            return TlbOutcome::StlbHit;
        }
        TlbOutcome::Miss
    }

    /// Installs a completed translation into the L1 TLB and (for 4 KiB / 2 MiB
    /// pages) the STLB.
    pub fn fill(&mut self, addr: VirtAddr, size: PageSize) {
        let vpn = addr.vpn(size);
        self.l1_for(size).fill(vpn);
        if size != PageSize::Size1G {
            self.stlb.fill(vpn ^ stlb_tag_salt(size));
        }
    }

    /// Returns `true` if the translation is currently present in either level
    /// (without updating any state).
    pub fn contains(&self, addr: VirtAddr, size: PageSize) -> bool {
        let vpn = addr.vpn(size);
        let l1 = match size {
            PageSize::Size4K => &self.l1_4k,
            PageSize::Size2M => &self.l1_2m,
            PageSize::Size1G => &self.l1_1g,
        };
        if l1.probe(vpn) {
            return true;
        }
        size != PageSize::Size1G && self.stlb.probe(vpn ^ stlb_tag_salt(size))
    }
}

/// Disambiguates 4 KiB and 2 MiB entries sharing the STLB.
fn stlb_tag_salt(size: PageSize) -> u64 {
    match size {
        PageSize::Size4K => 0,
        PageSize::Size2M => 0x8000_0000_0000_0000,
        PageSize::Size1G => 0x4000_0000_0000_0000,
    }
}

/// The MMU's paging-structure caches: the PDE cache, the PDPTE cache, and the
/// (optional, undocumented) PML4E cache whose presence the paper infers.
#[derive(Clone, Debug)]
pub struct PagingStructureCaches {
    pde: SetAssocCache,
    pdpte: SetAssocCache,
    pml4e: Option<SetAssocCache>,
}

impl PagingStructureCaches {
    /// Creates the paging-structure caches.  `with_pml4e` controls whether the
    /// root-level cache exists (it does on the simulated ground truth; candidate
    /// models may or may not include it).
    pub fn new(with_pml4e: bool) -> PagingStructureCaches {
        PagingStructureCaches {
            pde: SetAssocCache::fully_associative(32),
            pdpte: SetAssocCache::fully_associative(16),
            pml4e: with_pml4e.then(|| SetAssocCache::fully_associative(8)),
        }
    }

    /// Probes the PDE cache (2 MiB-region granularity) without modifying it.
    pub fn pde_hit(&self, addr: VirtAddr) -> bool {
        self.pde.probe(addr.pde_region())
    }

    /// Probes the PDPTE cache (1 GiB-region granularity).
    pub fn pdpte_hit(&self, addr: VirtAddr) -> bool {
        self.pdpte.probe(addr.pdpte_region())
    }

    /// Probes the PML4E cache (512 GiB-region granularity).  Always a miss when the
    /// structure is absent.
    pub fn pml4e_hit(&self, addr: VirtAddr) -> bool {
        self.pml4e
            .as_ref()
            .is_some_and(|c| c.probe(addr.pml4e_region()))
    }

    /// Returns `true` if the root-level cache is present.
    pub fn has_pml4e_cache(&self) -> bool {
        self.pml4e.is_some()
    }

    /// Fills every level covering the address after a successful walk for a page of
    /// the given size (a 1 GiB walk never touches the PD level, so it cannot fill
    /// the PDE cache).
    pub fn fill_from_walk(&mut self, addr: VirtAddr, size: PageSize) {
        if let Some(pml4e) = self.pml4e.as_mut() {
            pml4e.fill(addr.pml4e_region());
        }
        if size != PageSize::Size1G {
            self.pdpte.fill(addr.pdpte_region());
        }
        if size == PageSize::Size4K {
            self.pde.fill(addr.pde_region());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_hit_after_fill() {
        let mut tlb = TlbHierarchy::haswell();
        let addr = VirtAddr(0x1000);
        assert_eq!(tlb.lookup(addr, PageSize::Size4K), TlbOutcome::Miss);
        tlb.fill(addr, PageSize::Size4K);
        assert_eq!(tlb.lookup(addr, PageSize::Size4K), TlbOutcome::L1Hit);
        assert!(tlb.contains(addr, PageSize::Size4K));
    }

    #[test]
    fn stlb_backs_up_the_l1() {
        let mut tlb = TlbHierarchy::tiny();
        // Fill many 4K pages: the tiny L1 (4 entries) evicts early ones, but the
        // tiny STLB (8 entries) still holds some of them.
        for page in 0..6u64 {
            tlb.fill(VirtAddr(page << 12), PageSize::Size4K);
        }
        let outcomes: Vec<TlbOutcome> = (0..6u64)
            .map(|page| tlb.lookup(VirtAddr(page << 12), PageSize::Size4K))
            .collect();
        assert!(outcomes.contains(&TlbOutcome::StlbHit) || outcomes.contains(&TlbOutcome::L1Hit));
    }

    #[test]
    fn one_gig_pages_never_hit_the_stlb() {
        let mut tlb = TlbHierarchy::tiny();
        // Fill two 1G pages into a 1-entry L1 1G TLB: the first is evicted and,
        // because 1G entries are not kept in the STLB, it misses entirely.
        tlb.fill(VirtAddr(0), PageSize::Size1G);
        tlb.fill(VirtAddr(1 << 30), PageSize::Size1G);
        assert_eq!(tlb.lookup(VirtAddr(0), PageSize::Size1G), TlbOutcome::Miss);
        assert_eq!(
            tlb.lookup(VirtAddr(1 << 30), PageSize::Size1G),
            TlbOutcome::L1Hit
        );
    }

    #[test]
    fn page_sizes_do_not_alias_in_the_stlb() {
        let mut tlb = TlbHierarchy::haswell();
        // VPN 5 as a 4K page and VPN 5 as a 2M page are different translations.
        tlb.fill(VirtAddr(5 << 12), PageSize::Size4K);
        assert_eq!(
            tlb.lookup(VirtAddr(5 << 21), PageSize::Size2M),
            TlbOutcome::Miss
        );
    }

    #[test]
    fn stlb_hit_refills_l1() {
        let mut tlb = TlbHierarchy::tiny();
        let addr = VirtAddr(0x7000_0000);
        tlb.fill(addr, PageSize::Size4K);
        // Evict from the tiny L1 by filling other pages in the same set range.
        for page in 1..5u64 {
            tlb.fill(VirtAddr(page << 12), PageSize::Size4K);
        }
        // If it now hits in the STLB, the next lookup must be an L1 hit.
        if tlb.lookup(addr, PageSize::Size4K) == TlbOutcome::StlbHit {
            assert_eq!(tlb.lookup(addr, PageSize::Size4K), TlbOutcome::L1Hit);
        }
    }

    #[test]
    fn psc_fill_and_probe_per_level() {
        let mut psc = PagingStructureCaches::new(true);
        let addr = VirtAddr(0x0000_1234_5678_9000);
        assert!(!psc.pde_hit(addr));
        assert!(!psc.pdpte_hit(addr));
        assert!(!psc.pml4e_hit(addr));
        psc.fill_from_walk(addr, PageSize::Size4K);
        assert!(psc.pde_hit(addr));
        assert!(psc.pdpte_hit(addr));
        assert!(psc.pml4e_hit(addr));
        // A different 2M region misses the PDE cache but may hit upper levels.
        let sibling = VirtAddr(addr.raw() + (2 << 20));
        assert!(!psc.pde_hit(sibling));
        assert!(psc.pdpte_hit(sibling));
    }

    #[test]
    fn one_gig_walks_do_not_fill_lower_psc_levels() {
        let mut psc = PagingStructureCaches::new(true);
        let addr = VirtAddr(0x40_0000_0000);
        psc.fill_from_walk(addr, PageSize::Size1G);
        assert!(!psc.pde_hit(addr));
        assert!(!psc.pdpte_hit(addr));
        assert!(psc.pml4e_hit(addr));
    }

    #[test]
    fn pml4e_cache_can_be_absent() {
        let mut psc = PagingStructureCaches::new(false);
        assert!(!psc.has_pml4e_cache());
        let addr = VirtAddr(0x123_4567_8000);
        psc.fill_from_walk(addr, PageSize::Size4K);
        assert!(!psc.pml4e_hit(addr));
        assert!(psc.pde_hit(addr));
    }
}
