//! The checked-in exemption list (`ci/lint_allow.toml`) and its parser.
//!
//! A deliberately small TOML subset — `[[allow]]` tables of quoted-string
//! key/value pairs plus `#` comment lines — parsed by hand so the lint stays
//! dependency-free.  Every entry must name a rule, a path glob, and a
//! non-empty justification; entries that match no current finding are
//! *stale* and fail the lint, so the allowlist can never silently outlive
//! the code it excuses.

use std::fmt;
use std::path::Path;

/// One `[[allow]]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (`"D1"` … `"D5"`).
    pub rule: String,
    /// Path glob the entry applies to (`*` within a segment, `**` across
    /// segments), matched against repo-relative forward-slash paths.
    pub path: String,
    /// Optional substring that must occur in the finding's source line,
    /// narrowing the exemption to specific code.
    pub contains: Option<String>,
    /// Human-readable reason the exemption is sound.  Required.
    pub justification: String,
    /// 1-based line of the `[[allow]]` header, for diagnostics.
    pub line: u32,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule {} at {}", self.rule, self.path)?;
        if let Some(c) = &self.contains {
            write!(f, " (contains {c:?})")?;
        }
        Ok(())
    }
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the TOML-subset text.  `origin` names the source in errors.
    pub fn parse(text: &str, origin: &str) -> Result<Allowlist, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<(AllowEntry, u32)> = None;
        let finish = |current: &mut Option<(AllowEntry, u32)>,
                      entries: &mut Vec<AllowEntry>|
         -> Result<(), String> {
            if let Some((entry, at)) = current.take() {
                if entry.rule.is_empty() || entry.path.is_empty() {
                    return Err(format!(
                        "{origin}:{at}: [[allow]] entry needs both `rule` and `path`"
                    ));
                }
                if entry.justification.trim().is_empty() {
                    return Err(format!(
                        "{origin}:{at}: [[allow]] entry for rule {} needs a non-empty `justification`",
                        entry.rule
                    ));
                }
                entries.push(entry);
            }
            Ok(())
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut current, &mut entries)?;
                current = Some((
                    AllowEntry {
                        rule: String::new(),
                        path: String::new(),
                        contains: None,
                        justification: String::new(),
                        line: lineno,
                    },
                    lineno,
                ));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "{origin}:{lineno}: expected `key = \"value\"`, got {line:?}"
                ));
            };
            let Some((entry, _)) = current.as_mut() else {
                return Err(format!(
                    "{origin}:{lineno}: key/value pair before the first [[allow]]"
                ));
            };
            let value = unquote(value.trim())
                .ok_or_else(|| format!("{origin}:{lineno}: value must be a quoted string"))?;
            match key.trim() {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "contains" => entry.contains = Some(value),
                "justification" => entry.justification = value,
                other => {
                    return Err(format!("{origin}:{lineno}: unknown key {other:?}"));
                }
            }
        }
        finish(&mut current, &mut entries)?;
        Ok(Allowlist { entries })
    }

    /// Loads and parses the allowlist file.  A missing file is an error —
    /// the lint requires the allowlist to be checked in, even if empty.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Allowlist::parse(&text, &path.display().to_string())
    }
}

/// Strips surrounding double quotes, resolving `\\` and `\"` escapes.
fn unquote(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else if c == '"' {
            return None; // an unescaped quote means `s` was not one string
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Matches `path` against `pattern`: `/`-separated segments, `*` matching
/// within a segment, `**` matching any number of whole segments.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    fn segs(p: &str) -> Vec<&str> {
        p.split('/').filter(|s| !s.is_empty()).collect()
    }
    fn match_segs(pat: &[&str], path: &[&str]) -> bool {
        match pat.first() {
            None => path.is_empty(),
            Some(&"**") => (0..=path.len()).any(|k| match_segs(&pat[1..], &path[k..])),
            Some(&p) => {
                !path.is_empty() && match_seg(p, path[0]) && match_segs(&pat[1..], &path[1..])
            }
        }
    }
    fn match_seg(pat: &str, s: &str) -> bool {
        let (pb, sb) = (pat.as_bytes(), s.as_bytes());
        fn rec(p: &[u8], s: &[u8]) -> bool {
            match p.first() {
                None => s.is_empty(),
                Some(b'*') => (0..=s.len()).any(|k| rec(&p[1..], &s[k..])),
                Some(&c) => !s.is_empty() && s[0] == c && rec(&p[1..], &s[1..]),
            }
        }
        rec(pb, sb)
    }
    match_segs(&segs(pattern), &segs(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let text = r#"
# header comment
[[allow]]
rule = "D2"
path = "crates/bench/**"
justification = "bench timing never reaches Report bytes"

[[allow]]
rule = "D1"
path = "crates/core/src/*.rs"
contains = "memo"
justification = "sorted before emission"
"#;
        let list = Allowlist::parse(text, "test.toml").unwrap();
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[0].rule, "D2");
        assert_eq!(list.entries[1].contains.as_deref(), Some("memo"));
    }

    #[test]
    fn rejects_missing_justification() {
        let text = "[[allow]]\nrule = \"D1\"\npath = \"x\"\n";
        assert!(Allowlist::parse(text, "t")
            .unwrap_err()
            .contains("justification"));
    }

    #[test]
    fn rejects_unknown_keys_and_bare_values() {
        assert!(Allowlist::parse("[[allow]]\nfoo = \"x\"\n", "t").is_err());
        assert!(Allowlist::parse("[[allow]]\nrule = D1\n", "t").is_err());
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match(
            "crates/bench/**",
            "crates/bench/src/bin/experiments.rs"
        ));
        assert!(glob_match("crates/*/src/lib.rs", "crates/core/src/lib.rs"));
        assert!(!glob_match("crates/*/lib.rs", "crates/core/src/lib.rs"));
        assert!(glob_match("tests/*.rs", "tests/end_to_end.rs"));
        assert!(glob_match(
            "crates/session/src/inquiry.rs",
            "crates/session/src/inquiry.rs"
        ));
        assert!(!glob_match(
            "crates/session/src/inquiry.rs",
            "crates/session/src/report.rs"
        ));
    }
}
