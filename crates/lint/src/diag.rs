//! Diagnostic rendering: a clippy-style text report and a machine-readable
//! JSON document (hand-rolled writer; all strings escaped, order stable).

use crate::allowlist::AllowEntry;
use crate::rules::{rule_info, Finding};
use crate::LintOutcome;
use std::fmt::Write as _;

/// Renders one finding in the familiar `error[ID]: …` shape with a source
/// excerpt and caret underline.
pub fn render_finding(f: &Finding) -> String {
    let info = rule_info(f.rule).expect("finding carries a registered rule id");
    let lineno = f.line.to_string();
    let gutter = " ".repeat(lineno.len());
    let caret_pad = " ".repeat(f.col.saturating_sub(1) as usize);
    let carets = "^".repeat(f.width.max(1) as usize);
    let mut out = String::new();
    let _ = writeln!(out, "error[{}]: {}", f.rule, info.title);
    let _ = writeln!(out, "{gutter}--> {}:{}:{}", f.path, f.line, f.col);
    let _ = writeln!(out, "{gutter} |");
    let _ = writeln!(out, "{lineno} | {}", f.excerpt);
    let _ = writeln!(out, "{gutter} | {caret_pad}{carets}");
    let _ = writeln!(out, "{gutter} = help: {}", info.help);
    out
}

/// Renders the full text report: active findings, stale allowlist entries,
/// and a one-line summary.
pub fn render_report(outcome: &LintOutcome, allow_entries: &[AllowEntry]) -> String {
    let mut out = String::new();
    for f in &outcome.active {
        out.push_str(&render_finding(f));
        out.push('\n');
    }
    for &idx in &outcome.stale_entries {
        let e = &allow_entries[idx];
        let _ = writeln!(
            out,
            "error[stale-allow]: allowlist entry matches no finding: {e}\n  --> ci/lint_allow.toml:{}\n   = help: the code it excused is gone; delete the entry\n",
            e.line
        );
    }
    let _ =
        writeln!(
        out,
        "counterpoint-lint: {} file(s), {} finding(s), {} allowlisted, {} stale allowlist entr{}",
        outcome.files_scanned,
        outcome.active.len(),
        outcome.suppressed.len(),
        outcome.stale_entries.len(),
        if outcome.stale_entries.len() == 1 { "y" } else { "ies" },
    );
    out
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding, justification: Option<&str>) -> String {
    let mut out = format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"width\":{},\"excerpt\":\"{}\"",
        f.rule,
        json_escape(&f.path),
        f.line,
        f.col,
        f.width,
        json_escape(f.excerpt.trim()),
    );
    if let Some(j) = justification {
        let _ = write!(out, ",\"justification\":\"{}\"", json_escape(j));
    }
    out.push('}');
    out
}

/// Renders the machine-readable report consumed by CI (`--emit json`).
pub fn render_json(outcome: &LintOutcome, allow_entries: &[AllowEntry]) -> String {
    let active: Vec<String> = outcome
        .active
        .iter()
        .map(|f| finding_json(f, None))
        .collect();
    let suppressed: Vec<String> = outcome
        .suppressed
        .iter()
        .map(|(f, idx)| finding_json(f, Some(&allow_entries[*idx].justification)))
        .collect();
    let stale: Vec<String> = outcome
        .stale_entries
        .iter()
        .map(|&idx| {
            let e = &allow_entries[idx];
            format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{}}}",
                json_escape(&e.rule),
                json_escape(&e.path),
                e.line
            )
        })
        .collect();
    format!(
        "{{\"version\":1,\"files_scanned\":{},\"findings\":[{}],\"allowlisted\":[{}],\"stale_allow_entries\":[{}]}}\n",
        outcome.files_scanned,
        active.join(","),
        suppressed.join(","),
        stale.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn finding_renders_with_caret() {
        let f = Finding {
            rule: "D1",
            path: "crates/core/src/x.rs".to_string(),
            line: 3,
            col: 5,
            width: 7,
            excerpt: "    HashMap::new();".to_string(),
        };
        let text = render_finding(&f);
        assert!(text.contains("error[D1]"));
        assert!(text.contains("--> crates/core/src/x.rs:3:5"));
        assert!(text.contains("    ^^^^^^^"));
    }
}
