//! A minimal, dependency-free Rust lexer.
//!
//! The lexer understands exactly as much Rust as the rule engine needs to be
//! sound: comments (line, nested block, doc), every string-literal shape
//! (plain, byte, C, and raw with any number of `#` guards), character and
//! byte-character literals, lifetimes, identifiers, numbers, and single-
//! character punctuation.  Everything that is *not* an identifier token can
//! therefore never be mistaken for code by a rule — `"unsafe"` inside a
//! string or a comment stays inert.

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime or loop label such as `'a` (including the quote).
    Lifetime,
    /// Numeric literal (integers and floats, lexed loosely).
    Number,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`.
    Str,
    /// Character or byte-character literal: `'x'`, `b'\n'`.
    Char,
    /// `//` comment, including doc comments `///` and `//!`.
    LineComment,
    /// `/* … */` comment (nesting-aware), including doc `/** … */`.
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its byte span and 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// The token's text within the source it was lexed from.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// `true` for line and block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// `true` for doc comments (`///`, `//!`, `/**`, `/*!`).
    pub fn is_doc_comment(&self, src: &str) -> bool {
        let t = self.text(src);
        self.is_comment()
            && (t.starts_with("///")
                || t.starts_with("//!")
                || t.starts_with("/**")
                || t.starts_with("/*!"))
    }
}

/// Character-indexed cursor over the source with line/column tracking.
struct Cursor {
    chars: Vec<(usize, char)>,
    len: usize,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Cursor {
        Cursor {
            chars: src.char_indices().collect(),
            len: src.len(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    /// Character `k` positions ahead, if any.
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).map(|&(_, c)| c)
    }

    /// Byte offset of the current character (or the source length at EOF).
    fn byte(&self) -> usize {
        self.chars.get(self.i).map_or(self.len, |&(b, _)| b)
    }

    /// Consumes one character, updating line/column counters.
    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.i)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a token stream.  Never fails: malformed input (for
/// example an unterminated string) degrades into a token that extends to the
/// end of the file, which keeps the rule engine conservative rather than
/// panicky.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek(0) {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let (start, line, col) = (cur.byte(), cur.line, cur.col);
        let kind = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if let Some(kind) = try_lex_prefixed_literal(&mut cur, c) {
            kind
        } else if is_ident_start(c) {
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            TokenKind::Ident
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else if c == '"' {
            lex_string(&mut cur);
            TokenKind::Str
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else {
            cur.bump();
            TokenKind::Punct
        };
        tokens.push(Token {
            kind,
            start,
            end: cur.byte(),
            line,
            col,
        });
    }
    tokens
}

/// Handles the literal prefixes `r`, `b`, `br`, `c`, `cr` when they in fact
/// introduce a literal; returns `None` when `c` starts a plain identifier.
fn try_lex_prefixed_literal(cur: &mut Cursor, c: char) -> Option<TokenKind> {
    let (raw_at, quote_at) = match (c, cur.peek(1)) {
        ('r', Some('"' | '#')) => (Some(0), None),
        ('b' | 'c', Some('r')) if matches!(cur.peek(2), Some('"' | '#')) => (Some(1), None),
        ('b' | 'c', Some('"')) => (None, Some(1)),
        ('b', Some('\'')) => {
            cur.bump(); // `b`
            lex_quote_char(cur);
            return Some(TokenKind::Char);
        }
        _ => return None,
    };
    if let Some(prefix_len) = raw_at {
        for _ in 0..=prefix_len {
            cur.bump(); // the `r` / `br` / `cr` prefix
        }
        let mut guards = 0usize;
        while cur.peek(0) == Some('#') {
            guards += 1;
            cur.bump();
        }
        if cur.peek(0) != Some('"') {
            // `r#ident` raw identifier (or stray `#`s): treat as an identifier.
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            return Some(TokenKind::Ident);
        }
        cur.bump(); // opening quote
        loop {
            match cur.bump() {
                None => break,
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < guards && cur.peek(0) == Some('#') {
                        seen += 1;
                        cur.bump();
                    }
                    if seen == guards {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        Some(TokenKind::Str)
    } else {
        let _ = quote_at;
        cur.bump(); // the `b` / `c` prefix
        lex_string(cur);
        Some(TokenKind::Str)
    }
}

fn lex_line_comment(cur: &mut Cursor) -> TokenKind {
    while cur.peek(0).is_some_and(|c| c != '\n') {
        cur.bump();
    }
    TokenKind::LineComment
}

fn lex_block_comment(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // `/`
    cur.bump(); // `*`
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
    TokenKind::BlockComment
}

fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None | Some('"') => break,
            Some('\\') => {
                cur.bump();
            }
            Some(_) => {}
        }
    }
}

fn lex_number(cur: &mut Cursor) -> TokenKind {
    // Loose: digits, radix prefixes, underscores and type suffixes all fold
    // into one `Number` token; `0..n` must not swallow the range dots.
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
    }
    TokenKind::Number
}

/// Disambiguates `'a` (lifetime/label) from `'x'` / `'\n'` (char literal).
fn lex_quote(cur: &mut Cursor) -> TokenKind {
    if cur.peek(1) == Some('\\') || cur.peek(2) == Some('\'') {
        lex_quote_char(cur);
        TokenKind::Char
    } else if cur.peek(1).is_some_and(is_ident_start) {
        cur.bump(); // quote
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        TokenKind::Lifetime
    } else {
        lex_quote_char(cur);
        TokenKind::Char
    }
}

fn lex_quote_char(cur: &mut Cursor) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None | Some('\'') => break,
            Some('\\') => {
                cur.bump();
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = texts("let x = y.z();");
        assert_eq!(toks[0], (TokenKind::Ident, "let".to_string()));
        assert_eq!(toks[3], (TokenKind::Ident, "y".to_string()));
        assert_eq!(toks[4], (TokenKind::Punct, ".".to_string()));
    }

    #[test]
    fn strings_swallow_keywords() {
        let toks = texts(r#"let s = "unsafe { HashMap }";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || (t != "unsafe" && t != "HashMap")));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r####"let s = r##"inner "# quote"##; let t = 1;"####;
        let toks = texts(src);
        let raw = toks.iter().find(|(k, _)| *k == TokenKind::Str).unwrap();
        assert!(raw.1.contains("inner"));
        assert_eq!(toks.last().unwrap().1, ";");
    }

    #[test]
    fn nested_block_comments() {
        let toks = texts("/* outer /* unsafe */ still */ fn f() {}");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "fn".to_string()));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = texts("fn f<'a>(x: &'a str) { let c = 'u'; let q = '\\''; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn byte_literals() {
        let toks = texts(r##"let b = b"bytes"; let c = b'x'; let r = br#"raw"#;"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            1
        );
    }

    #[test]
    fn raw_identifiers() {
        let toks = texts("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn line_and_col_positions() {
        let src = "fn f() {\n    unsafe {}\n}\n";
        let toks = lex(src);
        let u = toks
            .iter()
            .find(|t| t.text(src) == "unsafe")
            .expect("unsafe token");
        assert_eq!((u.line, u.col), (2, 5));
    }

    #[test]
    fn doc_comment_detection() {
        let src = "/// docs\n//! inner\n// plain\n/** block */\nfn f() {}";
        let toks = lex(src);
        assert!(toks[0].is_doc_comment(src));
        assert!(toks[1].is_doc_comment(src));
        assert!(!toks[2].is_doc_comment(src));
        assert!(toks[3].is_doc_comment(src));
    }
}
