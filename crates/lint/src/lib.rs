//! `counterpoint-lint`: the workspace's determinism & soundness static
//! analysis.
//!
//! CounterPoint's credibility rests on two invariants the test suites only
//! check dynamically: serialized output (Reports, SearchGraphs, traces,
//! goldens) must be byte-identical across runs and thread counts, and every
//! certificate-backed verdict must be sound.  This crate enforces the source
//! -level hazards behind those invariants *before* a single test runs, with
//! a hand-rolled lexer ([`lexer`]) and five rules ([`rules::RULES`]):
//!
//! | id | invariant |
//! |----|-----------|
//! | D1 | no `HashMap`/`HashSet` in crates that feed serialized output |
//! | D2 | no wall-clock / thread-identity observation outside telemetry |
//! | D3 | every `unsafe` carries a `// SAFETY:` / `# Safety` justification |
//! | D4 | no unordered float reductions in cross-thread merge files |
//! | D5 | no nondeterministic un-skipped fields in `Serialize` types |
//!
//! Exemptions live in `ci/lint_allow.toml` ([`allowlist`]), each with a
//! mandatory justification; entries that no longer match any finding are
//! *stale* and fail the lint.  The `counterpoint-lint` binary walks
//! `crates/`, `tests/`, and `examples/` and exits nonzero on any
//! unallowlisted finding.

pub mod allowlist;
pub mod diag;
pub mod lexer;
pub mod rules;

use allowlist::{glob_match, Allowlist};
use rules::Finding;
use std::io;
use std::path::{Path, PathBuf};

/// The result of linting a file tree against an allowlist.
#[derive(Clone, Debug, Default)]
pub struct LintOutcome {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings not covered by the allowlist — these fail the lint.
    pub active: Vec<Finding>,
    /// Findings suppressed by the allowlist, with the entry index that
    /// claimed each.
    pub suppressed: Vec<(Finding, usize)>,
    /// Indices of allowlist entries that matched no finding — these fail
    /// the lint too.
    pub stale_entries: Vec<usize>,
}

impl LintOutcome {
    /// `true` when the tree is clean: no active findings, no stale entries.
    pub fn is_clean(&self) -> bool {
        self.active.is_empty() && self.stale_entries.is_empty()
    }
}

/// Collects every `.rs` file under `root`'s `crates/`, `tests/`, and
/// `examples/` directories, in sorted (deterministic) order.  Directories
/// named `target` (build artifacts) or `fixtures` (the lint's own
/// deliberately-bad test corpus) are skipped.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && name != "fixtures" {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Splits raw findings into allowlisted and active, and reports stale
/// allowlist entries.  The first matching entry (file order) claims a
/// finding.
pub fn apply_allowlist(findings: Vec<Finding>, allow: &Allowlist) -> LintOutcome {
    let mut outcome = LintOutcome::default();
    let mut matched = vec![false; allow.entries.len()];
    for finding in findings {
        let claimed = allow.entries.iter().position(|e| {
            e.rule == finding.rule
                && glob_match(&e.path, &finding.path)
                && e.contains
                    .as_ref()
                    .is_none_or(|c| finding.excerpt.contains(c.as_str()))
        });
        match claimed {
            Some(idx) => {
                matched[idx] = true;
                outcome.suppressed.push((finding, idx));
            }
            None => outcome.active.push(finding),
        }
    }
    outcome.stale_entries = (0..allow.entries.len()).filter(|&i| !matched[i]).collect();
    outcome
}

/// Lints the whole tree under `root` against `allow`.
pub fn lint_tree(root: &Path, allow: &Allowlist) -> io::Result<LintOutcome> {
    let files = collect_rs_files(root)?;
    let mut findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(file)?;
        findings.extend(rules::lint_source(&rel, &src));
    }
    let mut outcome = apply_allowlist(findings, allow);
    outcome.files_scanned = files.len();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_claims_and_staleness() {
        let allow = Allowlist::parse(
            "[[allow]]\nrule = \"D1\"\npath = \"crates/core/**\"\njustification = \"test\"\n\
             [[allow]]\nrule = \"D2\"\npath = \"crates/none/**\"\njustification = \"stale\"\n",
            "t",
        )
        .unwrap();
        let findings =
            rules::lint_source("crates/core/src/x.rs", "use std::collections::HashMap;\n");
        let outcome = apply_allowlist(findings, &allow);
        assert!(outcome.active.is_empty());
        assert_eq!(outcome.suppressed.len(), 1);
        assert_eq!(outcome.stale_entries, vec![1]);
        assert!(!outcome.is_clean());
    }
}
