//! The `counterpoint-lint` binary: walks `crates/`, `tests/`, and
//! `examples/` under the workspace root, runs rules D1–D5, applies
//! `ci/lint_allow.toml`, and exits nonzero on any unallowlisted finding or
//! stale allowlist entry.
//!
//! ```text
//! counterpoint-lint [--root DIR] [--allowlist FILE] [--emit text|json] [--out FILE]
//! ```

use counterpoint_lint::allowlist::Allowlist;
use counterpoint_lint::diag::{render_json, render_report};
use counterpoint_lint::lint_tree;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    emit_json: bool,
    out: Option<PathBuf>,
}

const USAGE: &str =
    "usage: counterpoint-lint [--root DIR] [--allowlist FILE] [--emit text|json] [--out FILE]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        allowlist: None,
        emit_json: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--allowlist" => args.allowlist = Some(PathBuf::from(value("--allowlist")?)),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--emit" => match value("--emit")?.as_str() {
                "json" => args.emit_json = true,
                "text" => args.emit_json = false,
                other => return Err(format!("unknown --emit mode {other:?}\n{USAGE}")),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let allow_path = args
        .allowlist
        .clone()
        .unwrap_or_else(|| args.root.join("ci/lint_allow.toml"));
    let allow = Allowlist::load(&allow_path)?;
    let outcome = lint_tree(&args.root, &allow).map_err(|e| format!("walk failed: {e}"))?;
    let json = render_json(&outcome, &allow.entries);
    if let Some(out) = &args.out {
        std::fs::write(out, &json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    }
    if args.emit_json {
        print!("{json}");
        eprint!("{}", render_report(&outcome, &allow.entries));
    } else {
        print!("{}", render_report(&outcome, &allow.entries));
    }
    Ok(outcome.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("counterpoint-lint: {message}");
            ExitCode::from(2)
        }
    }
}
