//! The determinism & soundness rules (D1–D5) and the engine that runs them
//! over a lexed file.
//!
//! Every rule is purely lexical over the token stream from [`crate::lexer`]:
//! no type information, no macro expansion.  Where the true property is
//! semantic (for example "this map's iteration order reaches serialized
//! output"), the rule over-approximates and the checked-in allowlist
//! (`ci/lint_allow.toml`) carries the justified exceptions — a sound default
//! for invariants whose silent violation corrupts golden suites.

use crate::lexer::{lex, Token, TokenKind};

/// Static metadata of one rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Machine-readable rule id (`"D1"` … `"D5"`).
    pub id: &'static str,
    /// One-line title used as the diagnostic headline.
    pub title: &'static str,
    /// Remediation hint appended to every diagnostic.
    pub help: &'static str,
}

/// The rule registry, in report order.
pub const RULES: [RuleInfo; 5] = [
    RuleInfo {
        id: "D1",
        title: "hash-ordered container in a crate that feeds serialized output",
        help: "iteration order of HashMap/HashSet is nondeterministic; use BTreeMap/BTreeSet, \
               or sort before emission and allowlist with a justification",
    },
    RuleInfo {
        id: "D2",
        title: "wall-clock or thread-identity observation outside counterpoint-telemetry",
        help: "route timing through counterpoint-telemetry (or the StageTimings allowlist); \
               observed time must never influence Report bytes",
    },
    RuleInfo {
        id: "D3",
        title: "`unsafe` without an immediately-preceding `// SAFETY:` comment",
        help: "state the safety argument in a `// SAFETY:` comment directly above the block, \
               or a `# Safety` doc section on the unsafe fn",
    },
    RuleInfo {
        id: "D4",
        title: "unordered floating-point reduction in a cross-thread merge file",
        help: "route the reduction through the deterministic dot4/dot4_diff kernels, \
               or allowlist with a justification that the order is fixed",
    },
    RuleInfo {
        id: "D5",
        title: "nondeterministic field type in a `Serialize` type without `#[serde(skip)]`",
        help:
            "mark the field `#[serde(skip)]` or replace the type with an ordered/deterministic one",
    },
];

/// Looks up a rule's metadata by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// One finding: a rule violation anchored to a source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`"D1"` … `"D5"`).
    pub rule: &'static str,
    /// Repo-relative path of the offending file (forward slashes).
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column (in characters) of the offending token.
    pub col: u32,
    /// Width of the offending token in characters (for the caret underline).
    pub width: u32,
    /// The full source line the finding anchors to.
    pub excerpt: String,
}

/// Crates whose serialized output (Reports, SearchGraphs, traces, goldens)
/// must be byte-identical across runs and thread counts: rule D1 applies to
/// every file under these roots.
pub const D1_CRATES: [&str; 6] = [
    "crates/core/",
    "crates/session/",
    "crates/lp/",
    "crates/geometry/",
    "crates/models/",
    "crates/mudd/",
];

/// Files that participate in cross-thread merges of floating-point results:
/// rule D4 applies to exactly these paths.
pub const D4_FILES: [&str; 2] = ["crates/core/src/lattice.rs", "crates/lp/src/factor.rs"];

/// The only crate allowed to observe wall-clock time and thread identity.
pub const D2_EXEMPT_PREFIX: &str = "crates/telemetry/";

/// Field/container type names rule D5 rejects inside `Serialize` types.
const D5_BAD_TYPES: [&str; 4] = ["HashMap", "HashSet", "Instant", "SystemTime"];

/// Runs every rule over one file.  `path` must be repo-relative with forward
/// slashes — the crate-scoped rules key off it.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    // Indices of non-comment tokens, for the rules that look at code shape.
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut findings = Vec::new();
    d1_hash_containers(path, src, &tokens, &sig, &mut findings);
    d2_time_observation(path, src, &tokens, &sig, &mut findings);
    d3_undocumented_unsafe(path, src, &tokens, &mut findings);
    d4_unordered_reduction(path, src, &tokens, &sig, &mut findings);
    d5_serialized_nondeterminism(path, src, &tokens, &sig, &mut findings);
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

fn push(findings: &mut Vec<Finding>, rule: &'static str, path: &str, src: &str, tok: &Token) {
    findings.push(Finding {
        rule,
        path: path.to_string(),
        line: tok.line,
        col: tok.col,
        width: tok.text(src).chars().count().max(1) as u32,
        excerpt: source_line(src, tok.line),
    });
}

/// The 1-based line `line` of `src`, without its trailing newline.
fn source_line(src: &str, line: u32) -> String {
    src.lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .to_string()
}

/// D1: any `HashMap`/`HashSet` identifier in a serialization-feeding crate.
/// Presence (not just iteration) is flagged: a lookup-only map is one
/// innocent-looking `for (k, v) in` away from nondeterministic output.
fn d1_hash_containers(
    path: &str,
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    findings: &mut Vec<Finding>,
) {
    if !D1_CRATES.iter().any(|c| path.starts_with(c)) {
        return;
    }
    for &i in sig {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && matches!(t.text(src), "HashMap" | "HashSet") {
            push(findings, "D1", path, src, t);
        }
    }
}

/// D2: `Instant`, `SystemTime`, or `thread::current` anywhere outside the
/// telemetry crate.
fn d2_time_observation(
    path: &str,
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    findings: &mut Vec<Finding>,
) {
    if path.starts_with(D2_EXEMPT_PREFIX) {
        return;
    }
    for (k, &i) in sig.iter().enumerate() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text(src) {
            "Instant" | "SystemTime" => push(findings, "D2", path, src, t),
            "thread" => {
                let after: Vec<&str> = sig[k + 1..]
                    .iter()
                    .take(3)
                    .map(|&j| tokens[j].text(src))
                    .collect();
                if after == [":", ":", "current"] {
                    push(findings, "D2", path, src, t);
                }
            }
            _ => {}
        }
    }
}

/// D3: every `unsafe` keyword must carry a justification — a `// SAFETY:`
/// comment immediately above the statement/item (attributes and visibility
/// may intervene), or a `# Safety` section in the item's doc comment.
fn d3_undocumented_unsafe(path: &str, src: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && t.text(src) == "unsafe"
            && !safety_documented(src, tokens, i)
        {
            push(findings, "D3", path, src, t);
        }
    }
}

/// Walks backwards from `tokens[unsafe_idx]` looking for a SAFETY
/// justification, skipping (a) code earlier on the same line (`return unsafe
/// { … }`), (b) attributes `#[…]`, and (c) declaration modifiers.
fn safety_documented(src: &str, tokens: &[Token], unsafe_idx: usize) -> bool {
    let line = tokens[unsafe_idx].line;
    let mut j = unsafe_idx as isize - 1;
    while j >= 0 {
        let t = &tokens[j as usize];
        if t.line == line && !t.is_comment() {
            j -= 1;
        } else {
            break;
        }
    }
    loop {
        if j < 0 {
            return false;
        }
        let t = &tokens[j as usize];
        if t.is_comment() {
            if t.is_doc_comment(src) {
                // Scan the contiguous doc block for a `# Safety` section.
                let mut k = j;
                let mut found = false;
                while k >= 0 {
                    let tk = &tokens[k as usize];
                    if tk.is_doc_comment(src) {
                        if tk.text(src).contains("# Safety") {
                            found = true;
                        }
                        k -= 1;
                    } else {
                        break;
                    }
                }
                if found {
                    return true;
                }
                j = k;
            } else {
                return t.text(src).contains("SAFETY:");
            }
        } else if t.kind == TokenKind::Punct && t.text(src) == "]" {
            // An attribute: skip back over `#[…]` / `#![…]`.
            let mut depth = 0i32;
            let mut k = j;
            loop {
                if k < 0 {
                    return false;
                }
                let tk = &tokens[k as usize];
                if tk.kind == TokenKind::Punct {
                    match tk.text(src) {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                k -= 1;
            }
            k -= 1;
            if k >= 0 && tokens[k as usize].text(src) == "!" {
                k -= 1;
            }
            if k >= 0 && tokens[k as usize].text(src) == "#" {
                j = k - 1;
            } else {
                return false;
            }
        } else if t.kind == TokenKind::Ident
            && matches!(t.text(src), "pub" | "const" | "async" | "extern" | "crate")
        {
            j -= 1;
        } else if t.kind == TokenKind::Punct && matches!(t.text(src), ")" | "(") {
            // `pub(crate)` visibility parentheses.
            j -= 1;
        } else {
            return false;
        }
    }
}

/// D4: `.sum(` / `.fold(` in a file that participates in cross-thread
/// floating-point merges.
fn d4_unordered_reduction(
    path: &str,
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    findings: &mut Vec<Finding>,
) {
    if !D4_FILES.contains(&path) {
        return;
    }
    for (k, &i) in sig.iter().enumerate() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident
            && matches!(t.text(src), "sum" | "fold")
            && k > 0
            && tokens[sig[k - 1]].text(src) == "."
        {
            push(findings, "D4", path, src, t);
        }
    }
}

/// D5: a `#[derive(… Serialize …)]` type whose body names a nondeterministic
/// field type without a `#[serde(skip)]`-family attribute on that field.
fn d5_serialized_nondeterminism(
    path: &str,
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    findings: &mut Vec<Finding>,
) {
    let text = |k: usize| tokens[sig[k]].text(src);
    let mut k = 0;
    while k < sig.len() {
        // Find an attribute `#[ … ]` containing both `derive` and `Serialize`.
        if !(text(k) == "#" && k + 1 < sig.len() && text(k + 1) == "[") {
            k += 1;
            continue;
        }
        let close = match matching_bracket(src, tokens, sig, k + 1, "[", "]") {
            Some(c) => c,
            None => return,
        };
        let attr_has = |needle: &str| (k + 2..close).any(|a| text(a) == needle);
        if !(attr_has("derive") && attr_has("Serialize")) {
            k = close + 1;
            continue;
        }
        // Skip further attributes and visibility to the item keyword.
        let mut item = close + 1;
        loop {
            if item + 1 < sig.len() && text(item) == "#" && text(item + 1) == "[" {
                match matching_bracket(src, tokens, sig, item + 1, "[", "]") {
                    Some(c) => item = c + 1,
                    None => return,
                }
            } else if item < sig.len() && text(item) == "pub" {
                item += 1;
                if item < sig.len() && text(item) == "(" {
                    match matching_bracket(src, tokens, sig, item, "(", ")") {
                        Some(c) => item = c + 1,
                        None => return,
                    }
                }
            } else {
                break;
            }
        }
        if item >= sig.len() || !matches!(text(item), "struct" | "enum") {
            k = close + 1;
            continue;
        }
        // Find the body: the first top-level `{ … }`, `( … )`, or `;`.
        let (body_start, body_end) = match find_item_body(src, tokens, sig, item + 1) {
            Some(span) => span,
            None => {
                k = close + 1;
                continue;
            }
        };
        check_serialize_body(path, src, tokens, sig, body_start, body_end, findings);
        k = body_end + 1;
    }
}

/// From `from` (just past `struct`/`enum`), locates the item body delimiters
/// at angle-depth 0; returns the sig-indices of the opening and closing
/// delimiter, or `None` for unit structs (`;`) and parse dead ends.
fn find_item_body(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    from: usize,
) -> Option<(usize, usize)> {
    let mut angle = 0i32;
    let mut k = from;
    while k < sig.len() {
        match tokens[sig[k]].text(src) {
            "<" => angle += 1,
            ">" if angle > 0 => angle -= 1,
            ";" if angle == 0 => return None,
            "{" if angle == 0 => {
                let close = matching_bracket(src, tokens, sig, k, "{", "}")?;
                return Some((k, close));
            }
            "(" if angle == 0 => {
                let close = matching_bracket(src, tokens, sig, k, "(", ")")?;
                return Some((k, close));
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Splits the body into field/variant groups at top-level commas and flags
/// nondeterministic type names in groups without a serde skip attribute.
fn check_serialize_body(
    path: &str,
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    body_start: usize,
    body_end: usize,
    findings: &mut Vec<Finding>,
) {
    let text = |k: usize| tokens[sig[k]].text(src);
    let mut group_start = body_start + 1;
    let mut k = body_start + 1;
    let mut depth = 0i32;
    let mut angle = 0i32;
    while k <= body_end {
        let t = text(k);
        let at_end = k == body_end;
        let split = at_end || (t == "," && depth == 0 && angle == 0);
        if !split {
            match t {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                "<" => angle += 1,
                ">" if angle > 0 => angle -= 1,
                _ => {}
            }
            k += 1;
            continue;
        }
        let group = group_start..k;
        let skipped = group.clone().any(|g| {
            text(g) == "serde" && (g + 1..k.min(g + 24)).any(|h| text(h).starts_with("skip"))
        });
        if !skipped {
            for g in group {
                let tok = &tokens[sig[g]];
                if tok.kind == TokenKind::Ident && D5_BAD_TYPES.contains(&tok.text(src)) {
                    push(findings, "D5", path, src, tok);
                    break;
                }
            }
        }
        group_start = k + 1;
        k += 1;
    }
}

/// Sig-index of the bracket matching `sig[open]` (which must hold `open_ch`).
fn matching_bracket(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    open: usize,
    open_ch: &str,
    close_ch: &str,
) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &i) in sig.iter().enumerate().skip(open) {
        let t = tokens[i].text(src);
        if t == open_ch {
            depth += 1;
        } else if t == close_ch {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        lint_source(path, src)
            .iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn d1_only_in_listed_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_at("crates/core/src/x.rs", src), vec![("D1", 1)]);
        assert_eq!(rules_at("crates/collect/src/x.rs", src), vec![]);
    }

    #[test]
    fn d2_exempts_telemetry() {
        let src = "fn f() { let t = Instant::now(); let _ = std::thread::current(); }\n";
        assert_eq!(
            rules_at("crates/collect/src/x.rs", src),
            vec![("D2", 1), ("D2", 1)]
        );
        assert_eq!(rules_at("crates/telemetry/src/lib.rs", src), vec![]);
    }

    #[test]
    fn d3_safety_comment_and_doc_section() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(rules_at("tests/x.rs", bad), vec![("D3", 1)]);
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller promises p is valid.\n    unsafe { *p }\n}\n";
        assert_eq!(rules_at("tests/x.rs", good), vec![]);
        let doc = "/// Reads.\n///\n/// # Safety\n///\n/// p must be valid.\n#[inline]\npub unsafe fn f(p: *const u8) -> u8 {\n    // SAFETY: contract above.\n    unsafe { *p }\n}\n";
        assert_eq!(rules_at("tests/x.rs", doc), vec![]);
    }

    #[test]
    fn d3_string_safety_does_not_count() {
        let src =
            "fn f(p: *const u8) -> u8 {\n    let _s = \"// SAFETY: fake\";\n    unsafe { *p }\n}\n";
        assert_eq!(rules_at("tests/x.rs", src), vec![("D3", 3)]);
    }

    #[test]
    fn d4_only_in_listed_files() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum() }\n";
        assert_eq!(rules_at("crates/core/src/lattice.rs", src), vec![("D4", 1)]);
        assert_eq!(rules_at("crates/core/src/explore.rs", src), vec![]);
    }

    #[test]
    fn d5_skip_attribute_suppresses() {
        let bad = "#[derive(Serialize)]\nstruct S {\n    m: HashMap<String, u64>,\n}\n";
        assert_eq!(rules_at("crates/collect/src/x.rs", bad), vec![("D5", 3)]);
        let good = "#[derive(Serialize)]\nstruct S {\n    #[serde(skip)]\n    m: HashMap<String, u64>,\n}\n";
        assert_eq!(rules_at("crates/collect/src/x.rs", good), vec![]);
    }

    #[test]
    fn d5_handles_enums_and_tuples() {
        let e =
            "#[derive(Clone, Serialize)]\npub enum E {\n    A(SystemTime),\n    B { t: u32 },\n}\n";
        // `SystemTime` fires D2 (observation hazard) and D5 (serialized field).
        assert_eq!(
            rules_at("crates/collect/src/x.rs", e),
            vec![("D2", 3), ("D5", 3)]
        );
        let t = "#[derive(Serialize)]\npub struct T(pub HashSet<u8>);\n";
        assert_eq!(rules_at("crates/collect/src/x.rs", t), vec![("D5", 2)]);
    }
}
