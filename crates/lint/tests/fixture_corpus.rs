//! The fixture corpus: one known-bad and one known-good snippet per rule,
//! plus a lexer stress file, each linted under a pretend repo path and
//! checked for the exact finding IDs and spans.
//!
//! Fixtures live under `tests/fixtures/`, which the workspace walk skips by
//! name — injecting any of the `*_bad.rs` patterns into a real workspace
//! crate makes `counterpoint-lint` exit nonzero (asserted by
//! `tests/lint_invariants.rs` on the facade).

use counterpoint_lint::rules::lint_source;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// 1-based character column of the `nth` (0-based) occurrence of `needle`
/// on 1-based `line` of `src`.
fn col_of(src: &str, line: u32, nth: usize, needle: &str) -> u32 {
    let text = src
        .lines()
        .nth(line as usize - 1)
        .unwrap_or_else(|| panic!("line {line}"));
    let mut from = 0;
    for _ in 0..nth {
        from = text[from..].find(needle).expect("occurrence") + from + needle.len();
    }
    let at = text[from..].find(needle).expect("occurrence") + from;
    text[..at].chars().count() as u32 + 1
}

/// Asserts that linting `name` under `path` yields exactly `expected`
/// `(rule, line, nth, token)` findings, spans included.
fn assert_findings(name: &str, path: &str, expected: &[(&str, u32, usize, &str)]) {
    let src = fixture(name);
    let got: Vec<(String, u32, u32)> = lint_source(path, &src)
        .iter()
        .map(|f| (f.rule.to_string(), f.line, f.col))
        .collect();
    let want: Vec<(String, u32, u32)> = expected
        .iter()
        .map(|&(rule, line, nth, tok)| (rule.to_string(), line, col_of(&src, line, nth, tok)))
        .collect();
    assert_eq!(got, want, "findings for {name} under {path}");
}

#[test]
fn d1_bad_flags_every_hash_container_token() {
    assert_findings(
        "d1_bad.rs",
        "crates/core/src/d1_bad.rs",
        &[
            ("D1", 2, 0, "HashMap"),
            ("D1", 6, 0, "HashMap"),
            ("D1", 6, 1, "HashMap"),
        ],
    );
}

#[test]
fn d1_good_is_clean_and_d1_is_path_scoped() {
    assert_findings("d1_good.rs", "crates/core/src/d1_good.rs", &[]);
    // The same bad file outside the serialization-feeding crates is clean.
    assert_findings("d1_bad.rs", "crates/collect/src/d1_bad.rs", &[]);
}

#[test]
fn d2_bad_flags_clock_and_thread_identity() {
    assert_findings(
        "d2_bad.rs",
        "crates/collect/src/d2_bad.rs",
        &[
            ("D2", 2, 0, "Instant"),
            ("D2", 2, 0, "SystemTime"),
            ("D2", 6, 0, "Instant"),
            ("D2", 7, 0, "SystemTime"),
            ("D2", 8, 0, "thread"),
        ],
    );
}

#[test]
fn d2_exempts_the_telemetry_crate_and_plain_threading() {
    assert_findings("d2_bad.rs", "crates/telemetry/src/clock.rs", &[]);
    assert_findings("d2_good.rs", "crates/collect/src/d2_good.rs", &[]);
}

#[test]
fn d3_bad_flags_unsafe_blocks_and_fns() {
    assert_findings(
        "d3_bad.rs",
        "crates/lp/src/d3_bad.rs",
        &[
            ("D3", 7, 0, "unsafe"),
            ("D3", 12, 0, "unsafe"),
            ("D3", 13, 0, "unsafe"),
        ],
    );
}

#[test]
fn d3_good_accepts_comment_and_doc_section() {
    assert_findings("d3_good.rs", "crates/lp/src/d3_good.rs", &[]);
}

#[test]
fn d4_bad_flags_reductions_only_in_merge_files() {
    assert_findings(
        "d4_bad.rs",
        "crates/core/src/lattice.rs",
        &[("D4", 5, 0, "sum"), ("D4", 6, 0, "fold")],
    );
    assert_findings("d4_bad.rs", "crates/core/src/explore.rs", &[]);
}

#[test]
fn d4_good_fixed_association_is_clean() {
    assert_findings("d4_good.rs", "crates/core/src/lattice.rs", &[]);
}

#[test]
fn d5_bad_flags_unskipped_hash_field() {
    assert_findings(
        "d5_bad.rs",
        "crates/collect/src/d5_bad.rs",
        &[("D5", 11, 0, "HashMap")],
    );
}

#[test]
fn d5_good_skip_and_ordered_fields_are_clean() {
    assert_findings("d5_good.rs", "crates/collect/src/d5_good.rs", &[]);
}

#[test]
fn lexer_tricky_is_clean_under_the_harshest_path() {
    // `crates/core/src/lattice.rs` enables D1, D2, D3, D4 and D5 at once;
    // every hazard-shaped word in the fixture hides in strings, comments,
    // or attributes, so the lexer must keep all of them inert.
    assert_findings("lexer_tricky.rs", "crates/core/src/lattice.rs", &[]);
}
