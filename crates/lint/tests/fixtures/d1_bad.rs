//! D1 known-bad: hash-ordered containers in a serialization-feeding crate.
use std::collections::HashMap;

/// Builds a memo table whose iteration order can reach serialized output.
pub fn memo() -> Vec<(String, usize)> {
    let map: HashMap<String, usize> = HashMap::new();
    map.into_iter().collect()
}
