//! D1 known-good: ordered containers only.
use std::collections::BTreeMap;

/// Builds a memo table with deterministic iteration order.
pub fn memo() -> Vec<(String, usize)> {
    let map: BTreeMap<String, usize> = BTreeMap::new();
    map.into_iter().collect()
}
