//! D2 known-bad: timing and thread-identity observation outside telemetry.
use std::time::{Instant, SystemTime};

/// Observes wall-clock time and the current thread.
pub fn observe() -> u128 {
    let t0 = Instant::now();
    let _ = SystemTime::now();
    let _ = std::thread::current();
    t0.elapsed().as_nanos()
}
