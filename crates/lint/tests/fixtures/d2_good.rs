//! D2 known-good: no clock or thread-identity observation; spawning and
//! joining threads (without observing identity) is fine.
use std::thread;

/// Deterministic fan-out: workers are joined in index order.
pub fn fan_out(n: usize) -> Vec<usize> {
    let handles: Vec<_> = (0..n).map(|i| thread::spawn(move || i * 2)).collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}
