//! D3 known-bad: `unsafe` without a SAFETY justification.

/// Reads the first element unchecked; the string must not satisfy the rule.
pub fn first(xs: &[u32]) -> u32 {
    let decoy = "fake justification in a string: // SAFETY: trust me";
    let _ = decoy;
    unsafe { *xs.get_unchecked(0) }
}

/// Reads the second element unchecked; the docs state no safety contract.
#[inline]
pub unsafe fn second(xs: &[u32]) -> u32 {
    unsafe { *xs.get_unchecked(1) }
}
