//! D3 known-good: every `unsafe` is justified.

/// Reads the first element unchecked.
///
/// # Safety
///
/// `xs` must be non-empty.
#[inline]
pub unsafe fn first(xs: &[u32]) -> u32 {
    // SAFETY: the caller guarantees `xs` is non-empty.
    unsafe { *xs.get_unchecked(0) }
}

/// A same-line statement prefix still finds the comment above it.
pub fn checked_first(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    // SAFETY: the length was checked above.
    return unsafe { *xs.get_unchecked(0) };
}
