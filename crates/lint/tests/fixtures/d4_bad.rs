//! D4 known-bad: unordered float reductions in a cross-thread merge file.

/// Sums partial margins in iterator order.
pub fn total(xs: &[f64]) -> f64 {
    let direct: f64 = xs.iter().sum();
    xs.iter().fold(direct, |acc, &x| acc + x)
}
