//! D4 known-good: reductions with an explicitly fixed association.

/// Four-lane reduction with a fixed `(l0 + l2) + (l1 + l3)` fold, matching
/// the sanctioned dot4 kernel discipline.
pub fn total(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    for chunk in xs.chunks_exact(4) {
        acc[0] += chunk[0];
        acc[1] += chunk[1];
        acc[2] += chunk[2];
        acc[3] += chunk[3];
    }
    let mut tail = 0.0;
    for &x in xs.chunks_exact(4).remainder() {
        tail += x;
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}
