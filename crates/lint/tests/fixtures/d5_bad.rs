//! D5 known-bad: a `Serialize` type with an un-skipped hash-ordered field.
use serde::Serialize;
use std::collections::HashMap;

/// A report row whose payload serializes in hash order.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Deterministic.
    pub name: String,
    /// Nondeterministic iteration order reaches the serializer.
    pub payload: HashMap<String, u64>,
}
