//! D5 known-good: nondeterministic fields are `#[serde(skip)]`-ed or ordered.
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// A report row with a deterministic serialized form.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Ordered payload serializes deterministically.
    pub payload: BTreeMap<String, u64>,
    /// Skipped: never reaches the serializer.
    #[serde(skip)]
    pub scratch: HashMap<String, u64>,
}
