//! Lexer stress fixture: nothing in this file may produce a finding, even
//! under a D1-scoped pretend path, because every hazard-shaped word lives in
//! a string, a comment, or an attribute.

/// Tricky token shapes.
pub fn tricky() -> usize {
    let s1 = "HashMap in a string, unsafe { } too, and Instant::now()";
    let s2 = r#"raw string: HashSet<SystemTime> // SAFETY: not a comment"#;
    let s3 = r##"nested raw guard "#" with HashMap inside"##;
    // A line comment naming unsafe, HashMap, Instant::now and .sum().
    /* A block comment: unsafe { HashMap::new() }
       /* nested: SystemTime::now() */
       still inside the outer comment */
    let lifetime_not_char: &'static str = "x";
    let c = 'u'; // the char 'u', not a lifetime
    let q = '\'';
    let b = b"bytes with unsafe inside";
    let bc = b'x';
    #[allow(unused)]
    #[cfg_attr(test, allow(dead_code))]
    let nested_attr = 1usize;
    s1.len() + s2.len() + s3.len() + c as usize + q as usize + b.len() + bc as usize + nested_attr
}
