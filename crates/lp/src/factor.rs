//! Tier-1 dual-simplex core: a product-form factorization of the band-system
//! basis laid out for SIMD-friendly column scans.
//!
//! [`Tableau`](crate::Tableau) keeps `B⁻¹` as one dense `m × m` block whose
//! hot loops (BTRAN pricing, FTRAN, the per-solve `B⁻¹·b` product) read it
//! with stride-2 access patterns and reduce with strictly serial float sums —
//! neither of which the compiler may vectorize, because reassociating an f64
//! reduction changes its rounding.  [`FactorTableau`] answers the same
//! feasibility question with a representation chosen for hardware speed:
//!
//! * `B⁻¹` is split by band side into two `m × d̂` blocks (`d̂` = bands padded
//!   to the SIMD lane width): `ge[i][k] = B⁻¹[i][2k]` covers the `≥ lo` rows
//!   and `le[i][k] = B⁻¹[i][2k+1]` the `≤ hi` rows.  Every hot product —
//!   `B⁻¹·b`, the pricing deltas `π_{2k+1} − π_{2k}`, the flow-column FTRAN —
//!   becomes a pair of contiguous, lane-parallel scans instead of a strided
//!   gather.
//! * All reductions go through one deterministic 4-lane kernel ([`dot4`] and
//!   friends), so results are reproducible across runs and platforms while
//!   still compiling to packed adds/multiplies.
//! * Pivots apply eager product-form (eta) updates to the two blocks, and the
//!   factorization is periodically rebuilt from scratch — reset to the slack
//!   identity, then the current basis replayed — to keep accumulated rounding
//!   error bounded on long warm-start windows.  Each rebuild fires the
//!   `lp_refactorizations` telemetry counter.
//!
//! The verdict of a solve carries a *confidence* bit: when the terminal
//! margin is near-degenerate (a tolerated-negative basic value on a feasible
//! exit, or a thin Farkas margin on an infeasible one), the caller is told to
//! escalate to the exact tier-2 engine instead of trusting fast arithmetic.
//! `BatchFeasibility` in `counterpoint-core` builds its two-tier solve on
//! exactly this contract.

use crate::simplex::LpError;
use counterpoint_telemetry as telemetry;

/// f64 lanes the kernels reduce in parallel; band counts are padded up to a
/// multiple of this so every row scan runs in whole chunks.
pub const LANES: usize = 4;

/// Rounds a band count up to a whole number of SIMD lanes.
#[inline]
pub fn padded(d: usize) -> usize {
    d.div_ceil(LANES) * LANES
}

/// Whether the 4-lane kernels may run their AVX-compiled bodies.
///
/// The AVX bodies are the *same Rust code* compiled with 256-bit registers
/// enabled: every lane performs the identical IEEE multiply and add (Rust
/// never licenses FMA contraction), so scalar and AVX results are
/// bit-identical and the dispatch is purely a throughput choice.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx_available() -> bool {
    std::arch::is_x86_feature_detected!("avx")
}

/// The deterministic 4-lane dot product `Σ a[i]·b[i]` over padded slices.
///
/// Accumulates into four independent lanes and folds them as
/// `(l0 + l2) + (l1 + l3)` — a fixed association, so the result is
/// bit-reproducible everywhere, while the independent lanes let the compiler
/// emit packed multiply-adds.  Both slices must have the same padded length.
#[inline]
pub fn dot4(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if avx_available() {
        // SAFETY: AVX support was just verified at runtime.
        return unsafe { dot4_avx(a, b) };
    }
    dot4_generic(a, b)
}

#[inline]
fn dot4_generic(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len() % LANES, 0);
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3])
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
// SAFETY: caller must have verified AVX support at runtime (dot4 dispatch).
unsafe fn dot4_avx(a: &[f64], b: &[f64]) -> f64 {
    // SAFETY: caller verified AVX; lengths are equal whole-lane multiples.
    unsafe { avx::dot(a, b) }
}

/// The deterministic 4-lane difference dot `Σ (a[i] − b[i])·c[i]` — the
/// flow-column FTRAN kernel (`a` = `≤`-side row, `b` = `≥`-side row, `c` = the
/// band column).  Same lane discipline as [`dot4`].
#[inline]
pub fn dot4_diff(a: &[f64], b: &[f64], c: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if avx_available() {
        // SAFETY: AVX support was just verified at runtime.
        return unsafe { dot4_diff_avx(a, b, c) };
    }
    dot4_diff_generic(a, b, c)
}

#[inline]
fn dot4_diff_generic(a: &[f64], b: &[f64], c: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    debug_assert_eq!(a.len() % LANES, 0);
    let mut acc = [0.0f64; LANES];
    for ((ca, cb), cc) in a
        .chunks_exact(LANES)
        .zip(b.chunks_exact(LANES))
        .zip(c.chunks_exact(LANES))
    {
        acc[0] += (ca[0] - cb[0]) * cc[0];
        acc[1] += (ca[1] - cb[1]) * cc[1];
        acc[2] += (ca[2] - cb[2]) * cc[2];
        acc[3] += (ca[3] - cb[3]) * cc[3];
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3])
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
// SAFETY: caller must have verified AVX support at runtime (dot4_diff dispatch).
unsafe fn dot4_diff_avx(a: &[f64], b: &[f64], c: &[f64]) -> f64 {
    // SAFETY: caller verified AVX; lengths are equal whole-lane multiples.
    unsafe { avx::dot_diff(a, b, c) }
}

/// Tier-1 BTRAN: `rhs[i] = ge_i·neg_lo + le_i·hi` for every row of the split
/// blocks.  One AVX dispatch covers the whole `m`-row sweep.
#[inline]
fn rhs_into(rhs: &mut [f64], ge: &[f64], le: &[f64], neg_lo: &[f64], hi: &[f64], dpad: usize) {
    #[cfg(target_arch = "x86_64")]
    if avx_available() {
        // SAFETY: AVX support was just verified at runtime.
        return unsafe { rhs_into_avx(rhs, ge, le, neg_lo, hi, dpad) };
    }
    rhs_into_generic(rhs, ge, le, neg_lo, hi, dpad);
}

#[inline]
fn rhs_into_generic(
    rhs: &mut [f64],
    ge: &[f64],
    le: &[f64],
    neg_lo: &[f64],
    hi: &[f64],
    dpad: usize,
) {
    for (i, r) in rhs.iter_mut().enumerate() {
        let ge_row = &ge[i * dpad..(i + 1) * dpad];
        let le_row = &le[i * dpad..(i + 1) * dpad];
        *r = dot4_generic(ge_row, neg_lo) + dot4_generic(le_row, hi);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
// SAFETY: caller must have verified AVX support at runtime (rhs_into dispatch).
unsafe fn rhs_into_avx(
    rhs: &mut [f64],
    ge: &[f64],
    le: &[f64],
    neg_lo: &[f64],
    hi: &[f64],
    dpad: usize,
) {
    for (i, r) in rhs.iter_mut().enumerate() {
        let ge_row = &ge[i * dpad..(i + 1) * dpad];
        let le_row = &le[i * dpad..(i + 1) * dpad];
        // SAFETY: caller verified AVX; rows are whole-lane multiples.
        *r = unsafe { avx::dot(ge_row, neg_lo) + avx::dot(le_row, hi) };
    }
}

/// Pricing sweep over the listed structural columns:
/// `rowbuf[p] = delta · bands_t[cols[p]]`.  Basic columns never enter, so the
/// caller prices only the nonbasic list — each listed column's dot is
/// bit-identical to a full sweep's, just not computed for masked-out columns.
/// One AVX dispatch covers the whole list.
#[inline]
fn price_listed(rowbuf: &mut [f64], bands_t: &[f64], cols: &[usize], delta: &[f64], dpad: usize) {
    #[cfg(target_arch = "x86_64")]
    if avx_available() {
        // SAFETY: AVX support was just verified at runtime.
        return unsafe { price_listed_avx(rowbuf, bands_t, cols, delta, dpad) };
    }
    price_listed_generic(rowbuf, bands_t, cols, delta, dpad);
}

#[inline]
fn price_listed_generic(
    rowbuf: &mut [f64],
    bands_t: &[f64],
    cols: &[usize],
    delta: &[f64],
    dpad: usize,
) {
    for (buf, &j) in rowbuf.iter_mut().zip(cols) {
        *buf = dot4_generic(delta, &bands_t[j * dpad..(j + 1) * dpad]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
// SAFETY: caller must have verified AVX support at runtime (price_listed dispatch).
unsafe fn price_listed_avx(
    rowbuf: &mut [f64],
    bands_t: &[f64],
    cols: &[usize],
    delta: &[f64],
    dpad: usize,
) {
    // SAFETY: caller verified AVX; every column row is a whole-lane multiple.
    unsafe { avx::price_listed(rowbuf, bands_t, cols, delta, dpad) }
}

/// Flow-column FTRAN: `colbuf[i] = (le_i − ge_i)·band_col` for every row.
#[inline]
fn ftran_into(colbuf: &mut [f64], ge: &[f64], le: &[f64], band_col: &[f64], dpad: usize) {
    #[cfg(target_arch = "x86_64")]
    if avx_available() {
        // SAFETY: AVX support was just verified at runtime.
        return unsafe { ftran_into_avx(colbuf, ge, le, band_col, dpad) };
    }
    ftran_into_generic(colbuf, ge, le, band_col, dpad);
}

#[inline]
fn ftran_into_generic(colbuf: &mut [f64], ge: &[f64], le: &[f64], band_col: &[f64], dpad: usize) {
    for (i, c) in colbuf.iter_mut().enumerate() {
        let ge_row = &ge[i * dpad..(i + 1) * dpad];
        let le_row = &le[i * dpad..(i + 1) * dpad];
        *c = dot4_diff_generic(le_row, ge_row, band_col);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
// SAFETY: caller must have verified AVX support at runtime (ftran_into dispatch).
unsafe fn ftran_into_avx(
    colbuf: &mut [f64],
    ge: &[f64],
    le: &[f64],
    band_col: &[f64],
    dpad: usize,
) {
    for (i, c) in colbuf.iter_mut().enumerate() {
        let ge_row = &ge[i * dpad..(i + 1) * dpad];
        let le_row = &le[i * dpad..(i + 1) * dpad];
        // SAFETY: caller verified AVX; rows are whole-lane multiples.
        *c = unsafe { avx::dot_diff(le_row, ge_row, band_col) };
    }
}

/// Dantzig leaving-row scan: the first row attaining the minimum basic value,
/// if that minimum violates `-tol`, plus the minimum itself (the feasible
/// exit's confidence margin).  Equal minima resolve to the lowest row index in
/// both bodies, so the scalar and AVX scans select identical rows.
#[inline]
fn find_leave(rhs: &[f64], tol: f64) -> (Option<usize>, f64) {
    #[cfg(target_arch = "x86_64")]
    if avx_available() {
        // SAFETY: AVX support was just verified at runtime.
        return unsafe { find_leave_avx(rhs, tol) };
    }
    find_leave_generic(rhs, tol)
}

#[inline]
fn find_leave_generic(rhs: &[f64], tol: f64) -> (Option<usize>, f64) {
    let mut leave: Option<usize> = None;
    let mut worst = -tol;
    let mut min_rhs = f64::INFINITY;
    for (i, &v) in rhs.iter().enumerate() {
        min_rhs = min_rhs.min(v);
        if v < worst {
            worst = v;
            leave = Some(i);
        }
    }
    (leave, min_rhs)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
// SAFETY: caller must have verified AVX support at runtime (find_leave dispatch).
unsafe fn find_leave_avx(rhs: &[f64], tol: f64) -> (Option<usize>, f64) {
    // SAFETY: caller verified AVX; loads stay within the slice.
    let min_rhs = unsafe { avx::min_value(rhs) };
    if min_rhs < -tol {
        (rhs.iter().position(|&v| v == min_rhs), min_rhs)
    } else {
        (None, min_rhs)
    }
}

/// Eta elimination: scales the pivot row by `1/colbuf[row]` and subtracts its
/// multiple from every other row of both split blocks and the rhs.
#[inline]
fn pivot_update(
    ge: &mut [f64],
    le: &mut [f64],
    rhs: &mut [f64],
    colbuf: &[f64],
    row: usize,
    dpad: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if avx_available() {
        // SAFETY: AVX support was just verified at runtime.
        return unsafe { pivot_update_avx(ge, le, rhs, colbuf, row, dpad) };
    }
    pivot_update_generic(ge, le, rhs, colbuf, row, dpad);
}

#[inline]
fn pivot_update_generic(
    ge: &mut [f64],
    le: &mut [f64],
    rhs: &mut [f64],
    colbuf: &[f64],
    row: usize,
    dpad: usize,
) {
    let m = rhs.len();
    let inv = 1.0 / colbuf[row];
    for v in &mut ge[row * dpad..(row + 1) * dpad] {
        *v *= inv;
    }
    for v in &mut le[row * dpad..(row + 1) * dpad] {
        *v *= inv;
    }
    rhs[row] *= inv;
    for i in 0..m {
        if i == row {
            continue;
        }
        let factor = colbuf[i];
        if factor == 0.0 {
            continue;
        }
        axpy_row(ge, row, i, dpad, factor);
        axpy_row(le, row, i, dpad, factor);
        rhs[i] -= factor * rhs[row];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
// SAFETY: caller must have verified AVX support at runtime (pivot_update dispatch).
unsafe fn pivot_update_avx(
    ge: &mut [f64],
    le: &mut [f64],
    rhs: &mut [f64],
    colbuf: &[f64],
    row: usize,
    dpad: usize,
) {
    let m = rhs.len();
    let inv = 1.0 / colbuf[row];
    // SAFETY: caller verified AVX; rows are whole-lane multiples.
    unsafe {
        avx::scale(&mut ge[row * dpad..(row + 1) * dpad], inv);
        avx::scale(&mut le[row * dpad..(row + 1) * dpad], inv);
    }
    rhs[row] *= inv;
    for i in 0..m {
        if i == row {
            continue;
        }
        let factor = colbuf[i];
        if factor == 0.0 {
            continue;
        }
        // SAFETY: as above.
        unsafe {
            avx::axpy_row(ge, row, i, dpad, factor);
            avx::axpy_row(le, row, i, dpad, factor);
        }
        rhs[i] -= factor * rhs[row];
    }
}

/// Explicit 256-bit bodies of the 4-lane kernels.
///
/// Each function performs, lane for lane, the identical IEEE multiplies and
/// adds as its `*_generic` counterpart — one `f64x4` register holds the four
/// accumulator lanes, and the fold `(l0 + l2) + (l1 + l3)` is reproduced with
/// a 128-bit high/low add followed by a scalar add — so results are
/// bit-identical to the scalar code on every input.  Written with intrinsics
/// because LLVM's generic x86-64 tuning splits the autovectorized bodies into
/// 128-bit halves, leaving the serial accumulator latency chain as the
/// bottleneck; [`price_into`](avx::price_into) additionally prices four
/// columns per pass so four independent chains keep the pipeline full.
#[cfg(target_arch = "x86_64")]
mod avx {
    use super::LANES;
    use core::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_loadu_pd,
        _mm256_min_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd,
        _mm256_sub_pd, _mm_add_pd, _mm_add_sd, _mm_cvtsd_f64, _mm_min_pd, _mm_min_sd,
        _mm_unpackhi_pd,
    };

    /// Folds the four accumulator lanes as `(l0 + l2) + (l1 + l3)`.
    #[inline]
    // SAFETY: requires AVX; callers are themselves #[target_feature(enable = "avx")].
    unsafe fn fold(acc: __m256d) -> f64 {
        // SAFETY: pure register arithmetic, caller ensures AVX.
        unsafe {
            let lo = _mm256_castpd256_pd128(acc);
            let hi = _mm256_extractf128_pd(acc, 1);
            let pair = _mm_add_pd(lo, hi);
            _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)))
        }
    }

    /// # Safety
    ///
    /// Requires AVX; `a.len() == b.len()` and a whole multiple of [`LANES`].
    #[target_feature(enable = "avx")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len() % LANES, 0);
        // SAFETY: every load stays within the asserted slice lengths.
        unsafe {
            let mut acc = _mm256_setzero_pd();
            let mut k = 0;
            while k < a.len() {
                let va = _mm256_loadu_pd(a.as_ptr().add(k));
                let vb = _mm256_loadu_pd(b.as_ptr().add(k));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
                k += LANES;
            }
            fold(acc)
        }
    }

    /// # Safety
    ///
    /// Requires AVX; all three slices share one whole-lane length.
    #[target_feature(enable = "avx")]
    pub unsafe fn dot_diff(a: &[f64], b: &[f64], c: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), c.len());
        debug_assert_eq!(a.len() % LANES, 0);
        // SAFETY: every load stays within the asserted slice lengths.
        unsafe {
            let mut acc = _mm256_setzero_pd();
            let mut k = 0;
            while k < a.len() {
                let va = _mm256_loadu_pd(a.as_ptr().add(k));
                let vb = _mm256_loadu_pd(b.as_ptr().add(k));
                let vc = _mm256_loadu_pd(c.as_ptr().add(k));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_sub_pd(va, vb), vc));
                k += LANES;
            }
            fold(acc)
        }
    }

    /// Prices four listed columns per pass — four independent accumulator
    /// chains sharing one set of `delta` loads — with a single-column tail for
    /// the remainder.
    ///
    /// # Safety
    ///
    /// Requires AVX; every entry of `cols` indexes a `dpad`-wide row of
    /// `bands_t`, `rowbuf.len() == cols.len()`, and `delta.len() == dpad`, a
    /// whole multiple of [`LANES`].
    #[target_feature(enable = "avx")]
    pub unsafe fn price_listed(
        rowbuf: &mut [f64],
        bands_t: &[f64],
        cols: &[usize],
        delta: &[f64],
        dpad: usize,
    ) {
        debug_assert_eq!(delta.len(), dpad);
        debug_assert_eq!(dpad % LANES, 0);
        debug_assert_eq!(rowbuf.len(), cols.len());
        debug_assert!(cols.iter().all(|&j| (j + 1) * dpad <= bands_t.len()));
        let n = cols.len();
        // SAFETY: every load stays within the asserted slice lengths.
        unsafe {
            let mut p = 0;
            while p + 4 <= n {
                let b0 = bands_t.as_ptr().add(cols[p] * dpad);
                let b1 = bands_t.as_ptr().add(cols[p + 1] * dpad);
                let b2 = bands_t.as_ptr().add(cols[p + 2] * dpad);
                let b3 = bands_t.as_ptr().add(cols[p + 3] * dpad);
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                let mut acc2 = _mm256_setzero_pd();
                let mut acc3 = _mm256_setzero_pd();
                let mut k = 0;
                while k < dpad {
                    let d = _mm256_loadu_pd(delta.as_ptr().add(k));
                    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d, _mm256_loadu_pd(b0.add(k))));
                    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d, _mm256_loadu_pd(b1.add(k))));
                    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(d, _mm256_loadu_pd(b2.add(k))));
                    acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(d, _mm256_loadu_pd(b3.add(k))));
                    k += LANES;
                }
                rowbuf[p] = fold(acc0);
                rowbuf[p + 1] = fold(acc1);
                rowbuf[p + 2] = fold(acc2);
                rowbuf[p + 3] = fold(acc3);
                p += 4;
            }
            while p < n {
                let j = cols[p];
                rowbuf[p] = dot(delta, &bands_t[j * dpad..(j + 1) * dpad]);
                p += 1;
            }
        }
    }

    /// Minimum over a (possibly non-whole-lane) slice, `∞` when empty.
    /// All inputs are finite in this solver (the bounds come from finite
    /// confidence regions), for which packed and scalar minima agree.
    ///
    /// # Safety
    ///
    /// Requires AVX.
    #[target_feature(enable = "avx")]
    pub unsafe fn min_value(values: &[f64]) -> f64 {
        let whole = values.len() / LANES * LANES;
        let mut min = f64::INFINITY;
        // SAFETY: every load stays within the whole-lane prefix.
        unsafe {
            if whole > 0 {
                let mut acc = _mm256_loadu_pd(values.as_ptr());
                let mut k = LANES;
                while k < whole {
                    acc = _mm256_min_pd(acc, _mm256_loadu_pd(values.as_ptr().add(k)));
                    k += LANES;
                }
                let lo = _mm256_castpd256_pd128(acc);
                let hi = _mm256_extractf128_pd(acc, 1);
                let pair = _mm_min_pd(lo, hi);
                min = _mm_cvtsd_f64(_mm_min_sd(pair, _mm_unpackhi_pd(pair, pair)));
            }
        }
        for &v in &values[whole..] {
            min = min.min(v);
        }
        min
    }

    /// In-place `row *= factor`.
    ///
    /// # Safety
    ///
    /// Requires AVX; `row.len()` is a whole multiple of [`LANES`].
    #[target_feature(enable = "avx")]
    pub unsafe fn scale(row: &mut [f64], factor: f64) {
        debug_assert_eq!(row.len() % LANES, 0);
        // SAFETY: every access stays within the asserted slice length.
        unsafe {
            let f = _mm256_set1_pd(factor);
            let mut k = 0;
            while k < row.len() {
                let p = row.as_mut_ptr().add(k);
                _mm256_storeu_pd(p, _mm256_mul_pd(_mm256_loadu_pd(p), f));
                k += LANES;
            }
        }
    }

    /// `block[target] −= factor · block[source]` over one `dpad`-wide row,
    /// mirroring [`super::axpy_row`].
    ///
    /// # Safety
    ///
    /// Requires AVX; `source != target`, both rows in bounds, `dpad` a whole
    /// multiple of [`LANES`].
    #[target_feature(enable = "avx")]
    pub unsafe fn axpy_row(
        block: &mut [f64],
        source: usize,
        target: usize,
        dpad: usize,
        factor: f64,
    ) {
        debug_assert!(source != target);
        debug_assert!((source + 1) * dpad <= block.len());
        debug_assert!((target + 1) * dpad <= block.len());
        debug_assert_eq!(dpad % LANES, 0);
        // SAFETY: the rows are disjoint (asserted) and in bounds.
        unsafe {
            let f = _mm256_set1_pd(factor);
            let src = block.as_ptr().add(source * dpad);
            let dst = block.as_mut_ptr().add(target * dpad);
            let mut k = 0;
            while k < dpad {
                let t = _mm256_loadu_pd(dst.add(k));
                let s = _mm256_loadu_pd(src.add(k));
                _mm256_storeu_pd(dst.add(k), _mm256_sub_pd(t, _mm256_mul_pd(f, s)));
                k += LANES;
            }
        }
    }
}

/// The verdict of a tier-1 [`FactorTableau::resolve`]: the fast f64 decision
/// plus whether its terminal margin is wide enough to trust without exact
/// recertification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FastOutcome {
    /// `true` when the band system is feasible under the given bounds.
    pub feasible: bool,
    /// `false` when the verdict was decided by a quantity within the
    /// near-degenerate band of its threshold — callers should escalate to an
    /// exact solve instead of trusting this answer.
    pub confident: bool,
}

/// How many pivots may accumulate on the product-form factorization before it
/// is rebuilt from the slack identity at the next solve boundary.
const REFACTOR_INTERVAL: usize = 64;

/// Margin below which an infeasible verdict is considered near-degenerate:
/// the stuck row's violation must clear the acceptance tolerance by at least
/// this much (≈10× the tolerance), mirroring the engine-level
/// `CERTIFICATE_MARGIN` discipline.
const INFEASIBLE_MARGIN: f64 = 1e-6;

/// A feasible exit is near-degenerate when some basic value is below this:
/// the acceptance tolerance is `-1e-7`, so a value in `[-1e-7, -1e-8)` sits
/// within one order of magnitude of flipping the verdict under exact
/// arithmetic, while anything above `-1e-8` would need five orders of
/// magnitude of accumulated error (bounded far lower by periodic
/// refactorization) to flip.
const FEASIBLE_MARGIN: f64 = -1e-8;

/// A rejected entering candidate whose coefficient lies in `(0, RISKY_ENTRY)`
/// (or is tolerated-negative) makes an infeasible verdict near-degenerate:
/// exact arithmetic could flip its sign past the `-1e-9` pivot tolerance.
/// Exact zeros are structural — disjoint generator supports — and carry no
/// rounding risk, so they stay confident.
const RISKY_ENTRY: f64 = 1e-8;

/// Warm dual-simplex feasibility of the band system `lo ≤ A·x ≤ hi`, `x ≥ 0`,
/// on the split product-form factorization described in the module docs.
///
/// The API mirrors [`Tableau`](crate::Tableau) — `band`/`rebind`/`resolve`/
/// `resolve_with_basis`/`basis`/`basic_flows`/`farkas_multipliers` — and uses
/// the same column indexing (structural flows first, then band slacks in row
/// order), so a basis recorded by either engine seeds the other.
#[derive(Clone, Debug)]
pub struct FactorTableau {
    num_vars: usize,
    num_bands: usize,
    /// Bands padded to a whole number of lanes; the padded tail of every row
    /// and column is zero, so padded products are exact no-ops.
    dpad: usize,
    /// The band matrix `A`, transposed and padded (`num_vars × dpad`,
    /// row-major): `bands_t[j·dpad + k] = A[k][j]`.
    bands_t: Vec<f64>,
    /// `≥`-side columns of `B⁻¹` (`m × dpad`): `ge[i·dpad + k] = B⁻¹[i][2k]`.
    ge: Vec<f64>,
    /// `≤`-side columns of `B⁻¹` (`m × dpad`): `le[i·dpad + k] = B⁻¹[i][2k+1]`.
    le: Vec<f64>,
    /// `true` while `B⁻¹` is still the slack identity.
    identity: bool,
    /// `B⁻¹·b` for the most recent bounds.
    rhs: Vec<f64>,
    /// Basic column per row (`j < num_vars`: flow `j`; otherwise slack
    /// `j − num_vars`).
    basis: Vec<usize>,
    /// `in_basis[j]` mirrors `basis` for O(1) membership tests.
    in_basis: Vec<bool>,
    /// Nonbasic structural columns in ascending order — the only candidates a
    /// pricing pass must touch.  Kept sorted so entering-column selection
    /// scans candidates in the same column order as a full sweep would.
    nonbasic: Vec<usize>,
    /// Eta updates applied since the factorization was last rebuilt.
    pivots_since_refactor: usize,
    /// Row that certified infeasibility on the most recent resolve, if any.
    infeasible_row: Option<usize>,
    /// The stuck row's multipliers in interleaved row order (`π_0 … π_{m−1}`),
    /// captured at the moment infeasibility was certified.
    farkas: Vec<f64>,
    /// Padded copies of the current bounds (`-lo` on the `≥` side).
    neg_lo_pad: Vec<f64>,
    hi_pad: Vec<f64>,
    /// Scratch: per-band multiplier differences of the leaving row (padded).
    delta: Vec<f64>,
    /// Scratch: the leaving row's structural coefficients.
    rowbuf: Vec<f64>,
    /// Scratch: the entering column in basis coordinates (`B⁻¹·a`).
    colbuf: Vec<f64>,
    epsilon: f64,
    max_iterations: usize,
    refactor_interval: usize,
}

impl FactorTableau {
    /// Builds a factorized tableau for the band system `lo ≤ A·x ≤ hi` over
    /// `x ≥ 0`, starting from the all-slack basis.  `bands` holds the rows of
    /// `A`.
    ///
    /// # Panics
    ///
    /// Panics if any band row's length differs from `num_vars`.
    pub fn band(num_vars: usize, bands: &[Vec<f64>]) -> FactorTableau {
        let d = bands.len();
        let dpad = padded(d);
        let m = 2 * d;
        let mut tableau = FactorTableau {
            num_vars,
            num_bands: d,
            dpad,
            bands_t: vec![0.0; num_vars * dpad],
            ge: vec![0.0; m * dpad],
            le: vec![0.0; m * dpad],
            identity: true,
            rhs: vec![0.0; m],
            basis: Vec::new(),
            in_basis: vec![false; num_vars + m],
            nonbasic: Vec::new(),
            pivots_since_refactor: 0,
            infeasible_row: None,
            farkas: vec![0.0; m],
            neg_lo_pad: vec![0.0; dpad],
            hi_pad: vec![0.0; dpad],
            delta: vec![0.0; dpad],
            rowbuf: vec![0.0; num_vars],
            colbuf: vec![0.0; m],
            epsilon: 1e-9,
            max_iterations: 50_000,
            refactor_interval: REFACTOR_INTERVAL,
        };
        tableau.rebind(bands);
        tableau
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of bands (the system has `2 · num_bands` rows).
    pub fn num_bands(&self) -> usize {
        self.num_bands
    }

    /// Overrides the numerical tolerance (default `1e-9`).
    pub fn set_epsilon(&mut self, epsilon: f64) {
        self.epsilon = epsilon;
    }

    /// Overrides the dual-simplex iteration limit (default 50 000).
    pub fn set_max_iterations(&mut self, limit: usize) {
        self.max_iterations = limit;
    }

    /// Overrides how many eta updates may accumulate before the factorization
    /// is rebuilt at the next solve boundary (default 64).  `usize::MAX`
    /// disables periodic refactorization — the differential tests use this to
    /// compare against a never-refactorizing reference.
    pub fn set_refactor_interval(&mut self, interval: usize) {
        self.refactor_interval = interval.max(1);
    }

    /// The current basis (one column index per row), in the same column
    /// numbering as [`Tableau::basis`](crate::Tableau::basis).
    pub fn basis(&self) -> &[usize] {
        &self.basis
    }

    /// Replaces the band matrix with one of the same shape and resets the
    /// factorization to the all-slack identity, reusing every allocation.
    ///
    /// # Panics
    ///
    /// Panics if the number of bands or a row length differs from the shape
    /// the tableau was built with.
    pub fn rebind(&mut self, bands: &[Vec<f64>]) {
        assert_eq!(bands.len(), self.num_bands, "band count changed in rebind");
        let n = self.num_vars;
        let dpad = self.dpad;
        self.bands_t.fill(0.0);
        for (k, src) in bands.iter().enumerate() {
            assert_eq!(
                src.len(),
                n,
                "band {k} has {} coefficients, expected {n}",
                src.len()
            );
            for (j, &a) in src.iter().enumerate() {
                self.bands_t[j * dpad + k] = a;
            }
        }
        self.reset_to_identity();
        telemetry::add(telemetry::Metric::LpRefactorizations, 1);
    }

    /// Resets `B⁻¹` to the slack identity and the basis to all-slack without
    /// touching the band matrix.
    fn reset_to_identity(&mut self) {
        let n = self.num_vars;
        let d = self.num_bands;
        let dpad = self.dpad;
        self.ge.fill(0.0);
        self.le.fill(0.0);
        for k in 0..d {
            // Row 2k is the `≥` row of band k, row 2k+1 the `≤` row.
            self.ge[(2 * k) * dpad + k] = 1.0;
            self.le[(2 * k + 1) * dpad + k] = 1.0;
        }
        self.identity = true;
        self.in_basis.fill(false);
        for slot in self.in_basis.iter_mut().skip(n) {
            *slot = true;
        }
        self.basis.clear();
        self.basis.extend(n..n + 2 * d);
        self.nonbasic.clear();
        self.nonbasic.extend(0..n);
        self.infeasible_row = None;
        self.pivots_since_refactor = 0;
    }

    /// Rebuilds the factorization from scratch: resets to the slack identity
    /// and replays the current basis column by column.  Columns whose replayed
    /// pivot element is too small are dropped (their row keeps its slack) —
    /// the dual simplex restores feasibility from whatever basis survives.
    fn refactorize(&mut self) {
        let saved: Vec<usize> = self.basis.clone();
        self.reset_to_identity();
        self.install_basis(&saved);
        telemetry::add(telemetry::Metric::LpRefactorizations, 1);
    }

    /// Replays `basis` onto the current factorization, skipping already-basic
    /// and numerically unusable columns.  Returns the number of pivots
    /// replayed.
    fn install_basis(&mut self, basis: &[usize]) -> u64 {
        let total = self.num_vars + 2 * self.num_bands;
        let pivot_tol = self.epsilon.max(1e-7);
        let mut replayed = 0u64;
        for (row, &col) in basis.iter().enumerate() {
            if col >= total || self.basis[row] == col || self.in_basis[col] {
                continue;
            }
            self.load_column(col);
            if self.colbuf[row].abs() > pivot_tol {
                self.pivot(row, col);
                replayed += 1;
            }
        }
        replayed
    }

    /// The structural (flow) variables that are basic in the current basis,
    /// with their values after the most recent resolve.  Values can be
    /// marginally negative (within the feasibility tolerance); callers should
    /// clamp.
    pub fn basic_flows(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.basis
            .iter()
            .zip(self.rhs.iter())
            .filter_map(|(&j, &v)| (j < self.num_vars).then_some((j, v)))
    }

    /// The Farkas multipliers `π` of the most recent infeasible resolve, in
    /// interleaved row order (same layout as
    /// [`Tableau::farkas_multipliers`](crate::Tableau::farkas_multipliers)).
    /// `None` if the last resolve was feasible (or none has run).
    pub fn farkas_multipliers(&self) -> Option<&[f64]> {
        self.infeasible_row.map(|_| self.farkas.as_slice())
    }

    /// Decides feasibility of the band system under new bounds, warm-starting
    /// from the basis the previous call ended in.  Rebuilds the factorization
    /// first when enough eta updates have accumulated.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] if the dual simplex fails to
    /// converge; callers should fall back to the exact engine.
    ///
    /// # Panics
    ///
    /// Panics if `lo` or `hi` do not have one entry per band.
    pub fn resolve(&mut self, lo: &[f64], hi: &[f64]) -> Result<FastOutcome, LpError> {
        assert_eq!(lo.len(), self.num_bands, "lo has the wrong length");
        assert_eq!(hi.len(), self.num_bands, "hi has the wrong length");
        if self.pivots_since_refactor >= self.refactor_interval {
            self.refactorize();
        }
        for k in 0..self.num_bands {
            self.neg_lo_pad[k] = -lo[k];
            self.hi_pad[k] = hi[k];
        }
        let m = 2 * self.num_bands;
        if self.identity {
            for k in 0..self.num_bands {
                self.rhs[2 * k] = -lo[k];
                self.rhs[2 * k + 1] = hi[k];
            }
        } else {
            rhs_into(
                &mut self.rhs[..m],
                &self.ge,
                &self.le,
                &self.neg_lo_pad,
                &self.hi_pad,
                self.dpad,
            );
        }
        self.restore_feasibility()
    }

    /// Like [`resolve`](FactorTableau::resolve), but first installs `basis` —
    /// e.g. the final basis of a structurally similar tableau — by replaying
    /// pivots.  Columns that would make the basis singular are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] if the dual simplex fails to
    /// converge after the basis is installed.
    ///
    /// # Panics
    ///
    /// Panics if `basis` does not have one entry per row, or `lo`/`hi` do not
    /// have one entry per band.
    pub fn resolve_with_basis(
        &mut self,
        lo: &[f64],
        hi: &[f64],
        basis: &[usize],
    ) -> Result<FastOutcome, LpError> {
        assert_eq!(
            basis.len(),
            2 * self.num_bands,
            "basis has the wrong length"
        );
        let replayed = self.install_basis(basis);
        telemetry::add(telemetry::Metric::LpBasisReplayPivots, replayed);
        self.resolve(lo, hi)
    }

    /// Dual-simplex feasibility restoration with per-solve telemetry flushes,
    /// mirroring [`Tableau`](crate::Tableau)'s reporting.
    fn restore_feasibility(&mut self) -> Result<FastOutcome, LpError> {
        let mut pivots = 0u64;
        let result = self.restore_feasibility_counted(&mut pivots);
        if telemetry::enabled() {
            telemetry::add(telemetry::Metric::LpPivots, pivots);
            if result.is_ok() {
                telemetry::add(telemetry::Metric::LpSolves, 1);
                telemetry::observe(telemetry::Histogram::LpPivotsPerSolve, pivots);
            }
        }
        result
    }

    fn restore_feasibility_counted(&mut self, pivots: &mut u64) -> Result<FastOutcome, LpError> {
        self.infeasible_row = None;
        let m = 2 * self.num_bands;
        let dpad = self.dpad;
        // Same acceptance threshold as the exact engine, so the two tiers
        // agree away from the escalation band.
        let tol = self.epsilon.max(1e-7);
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            if iterations > self.max_iterations {
                return Err(LpError::IterationLimit);
            }
            let use_bland = iterations > self.max_iterations / 2;

            // Leaving row: most negative basic value (Bland: smallest basic
            // index among the violated rows, which guarantees termination).
            // `min_rhs` doubles as the feasible exit's confidence margin.
            let (leave, min_rhs) = if use_bland {
                let mut leave: Option<usize> = None;
                let mut min_rhs = f64::INFINITY;
                for i in 0..m {
                    let v = self.rhs[i];
                    min_rhs = min_rhs.min(v);
                    if v < -tol && leave.is_none_or(|l| self.basis[i] < self.basis[l]) {
                        leave = Some(i);
                    }
                }
                (leave, min_rhs)
            } else {
                find_leave(&self.rhs[..m], tol)
            };
            let Some(row) = leave else {
                // Feasible.  A basic value deep in the tolerated-negative band
                // means the exact engine could still see a violation here —
                // escalate.
                return Ok(FastOutcome {
                    feasible: true,
                    confident: m == 0 || min_rhs >= FEASIBLE_MARGIN,
                });
            };

            // Price the leaving row: flow column j carries
            // Σ_k (π_{2k+1} − π_{2k})·A_kj, slack column i carries π_i.
            {
                let ge = &self.ge[row * dpad..(row + 1) * dpad];
                let le = &self.le[row * dpad..(row + 1) * dpad];
                for ((d, &l), &g) in self.delta.iter_mut().zip(le).zip(ge) {
                    *d = l - g;
                }
            }
            let listed = self.nonbasic.len();
            price_listed(
                &mut self.rowbuf[..listed],
                &self.bands_t,
                &self.nonbasic,
                &self.delta,
                dpad,
            );
            let mut enter: Option<usize> = None;
            let mut best = self.epsilon;
            'scan: {
                for (pos, &j) in self.nonbasic.iter().enumerate() {
                    let a = self.rowbuf[pos];
                    if a < -self.epsilon {
                        if use_bland {
                            enter = Some(j);
                            break 'scan;
                        }
                        if -a > best {
                            best = -a;
                            enter = Some(j);
                        }
                    }
                }
                for i in 0..m {
                    let j = self.num_vars + i;
                    if self.in_basis[j] {
                        continue;
                    }
                    let a = self.slack_entry(row, i);
                    if a < -self.epsilon {
                        if use_bland {
                            enter = Some(j);
                            break 'scan;
                        }
                        if -a > best {
                            best = -a;
                            enter = Some(j);
                        }
                    }
                }
            }
            let Some(col) = enter else {
                // The row asserts a non-negative combination equals a negative
                // number: infeasible.  Capture the multipliers and judge the
                // margin: the violation must clear the tolerance comfortably
                // and no rejected candidate may sit in the risky sign window.
                for k in 0..self.num_bands {
                    self.farkas[2 * k] = self.ge[row * dpad + k];
                    self.farkas[2 * k + 1] = self.le[row * dpad + k];
                }
                self.infeasible_row = Some(row);
                let confident =
                    self.rhs[row] <= -INFEASIBLE_MARGIN && !self.infeasible_margin_risky(row);
                return Ok(FastOutcome {
                    feasible: false,
                    confident,
                });
            };
            self.load_column(col);
            self.pivot(row, col);
            *pivots += 1;
        }
    }

    /// After an infeasible exit on `row`: does any rejected entering candidate
    /// sit close enough to the pivot threshold that exact arithmetic could
    /// admit it?  Exact zeros are structural (disjoint supports) and safe;
    /// anything else in `(−ε, RISKY_ENTRY)` is a reason to escalate.
    fn infeasible_margin_risky(&self, row: usize) -> bool {
        let risky = |a: f64| a != 0.0 && a < RISKY_ENTRY;
        // `rowbuf[..nonbasic.len()]` still holds this round's pricing pass:
        // no pivot ran between the scan that rejected every candidate and
        // this margin check, so the compact buffer is aligned with the list.
        let structural = self.rowbuf[..self.nonbasic.len()].iter().any(|&a| risky(a));
        structural
            || (0..2 * self.num_bands)
                .any(|i| !self.in_basis[self.num_vars + i] && risky(self.slack_entry(row, i)))
    }

    /// The leaving row's coefficient for slack `i` (interleaved numbering):
    /// `B⁻¹[row][i]`, read from the split blocks.
    #[inline]
    fn slack_entry(&self, row: usize, i: usize) -> f64 {
        let dpad = self.dpad;
        if i % 2 == 0 {
            self.ge[row * dpad + i / 2]
        } else {
            self.le[row * dpad + i / 2]
        }
    }

    /// Fills `colbuf` with the entering column in basis coordinates,
    /// `B⁻¹·a_col`.
    fn load_column(&mut self, col: usize) {
        let m = 2 * self.num_bands;
        let dpad = self.dpad;
        if col < self.num_vars {
            // Flow column: original entries alternate (−A_kj, +A_kj), so the
            // product collapses to one lane-parallel difference dot per row.
            let band_col = &self.bands_t[col * dpad..(col + 1) * dpad];
            ftran_into(&mut self.colbuf[..m], &self.ge, &self.le, band_col, dpad);
        } else {
            // Slack column: `a = e_s`, so `B⁻¹·a` is one split column read.
            let s = col - self.num_vars;
            let (block, k) = if s % 2 == 0 {
                (&self.ge, s / 2)
            } else {
                (&self.le, s / 2)
            };
            for i in 0..m {
                self.colbuf[i] = block[i * dpad + k];
            }
        }
    }

    /// Product-form (eta) update: pivots `col` (whose basis-coordinate column
    /// is already in `colbuf`) into `row`, applying the rank-1 elimination to
    /// both split blocks and the rhs.
    fn pivot(&mut self, row: usize, col: usize) {
        let m = 2 * self.num_bands;
        debug_assert!(self.colbuf[row].abs() > 0.0, "zero pivot");
        pivot_update(
            &mut self.ge,
            &mut self.le,
            &mut self.rhs[..m],
            &self.colbuf,
            row,
            self.dpad,
        );
        self.identity = false;
        let leaving = self.basis[row];
        self.in_basis[leaving] = false;
        self.in_basis[col] = true;
        self.basis[row] = col;
        if leaving < self.num_vars {
            if let Err(pos) = self.nonbasic.binary_search(&leaving) {
                self.nonbasic.insert(pos, leaving);
            }
        }
        if col < self.num_vars {
            if let Ok(pos) = self.nonbasic.binary_search(&col) {
                self.nonbasic.remove(pos);
            }
        }
        self.pivots_since_refactor += 1;
    }
}

/// `block[target] −= factor · block[source]` over one `dpad`-wide row of a
/// split block, with the split-borrow dance factored out of the pivot loop.
#[inline]
fn axpy_row(block: &mut [f64], source: usize, target: usize, dpad: usize, factor: f64) {
    let (src, dst) = if target < source {
        let (head, tail) = block.split_at_mut(source * dpad);
        (&tail[..dpad], &mut head[target * dpad..(target + 1) * dpad])
    } else {
        let (head, tail) = block.split_at_mut(target * dpad);
        (&head[source * dpad..(source + 1) * dpad], &mut tail[..dpad])
    };
    for (t, s) in dst.iter_mut().zip(src.iter()) {
        *t -= factor * s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tableau;

    fn simple_bands() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 2.0, 0.0],
            vec![0.0, 1.0, 1.0],
            vec![3.0, 0.0, 1.0],
        ]
    }

    #[test]
    fn agrees_with_exact_tableau_on_simple_systems() {
        let bands = simple_bands();
        let mut fast = FactorTableau::band(3, &bands);
        let mut exact = Tableau::band(3, &bands);
        let cases: [(&[f64], &[f64]); 4] = [
            (&[0.0, 0.0, 0.0], &[10.0, 10.0, 10.0]),
            (&[1.0, 1.0, 1.0], &[5.0, 4.0, 9.0]),
            (&[4.0, -1.0, 2.0], &[6.0, 3.0, 8.0]),
            (&[8.0, 8.0, 1.0], &[9.0, 9.0, 1.5]),
        ];
        for (lo, hi) in cases {
            let f = fast.resolve(lo, hi).expect("fast converges");
            let e = exact.resolve(lo, hi).expect("exact converges");
            assert_eq!(f.feasible, e, "verdicts must agree on {lo:?}..{hi:?}");
        }
    }

    #[test]
    fn detects_clearly_infeasible_bounds_with_confidence() {
        // x ≥ 0 with 1·x ≤ -1 is unsatisfiable by a wide margin.
        let bands = vec![vec![1.0]];
        let mut fast = FactorTableau::band(1, &bands);
        let out = fast.resolve(&[-5.0], &[-1.0]).expect("converges");
        assert!(!out.feasible);
        assert!(
            out.confident,
            "a unit-wide violation is not near-degenerate"
        );
        let pi = fast
            .farkas_multipliers()
            .expect("infeasible solve left multipliers");
        assert_eq!(pi.len(), 2);
    }

    #[test]
    fn refactorization_preserves_verdicts() {
        let bands = simple_bands();
        let mut eager = FactorTableau::band(3, &bands);
        eager.set_refactor_interval(1);
        let mut lazy = FactorTableau::band(3, &bands);
        lazy.set_refactor_interval(usize::MAX);
        for step in 0..40 {
            let t = step as f64;
            let lo = [t * 0.1 - 1.0, -t * 0.2, (t % 7.0) - 3.0];
            let hi = [lo[0] + 4.0, lo[1] + 2.0, lo[2] + 5.0];
            let a = eager.resolve(&lo, &hi).expect("eager converges");
            let b = lazy.resolve(&lo, &hi).expect("lazy converges");
            assert_eq!(a.feasible, b.feasible, "verdict diverged at step {step}");
        }
    }

    #[test]
    fn warm_basis_replay_matches_cold_solve() {
        let bands = simple_bands();
        let mut donor = FactorTableau::band(3, &bands);
        donor.resolve(&[1.0, 1.0, 1.0], &[5.0, 4.0, 9.0]).unwrap();
        let basis = donor.basis().to_vec();
        let mut warm = FactorTableau::band(3, &bands);
        let w = warm
            .resolve_with_basis(&[2.0, 0.0, 1.0], &[6.0, 3.0, 7.0], &basis)
            .expect("warm converges");
        let mut cold = FactorTableau::band(3, &bands);
        let c = cold
            .resolve(&[2.0, 0.0, 1.0], &[6.0, 3.0, 7.0])
            .expect("cold converges");
        assert_eq!(w.feasible, c.feasible);
    }

    #[test]
    fn padded_dot_kernels_ignore_the_zero_tail() {
        let a = [1.0, 2.0, 3.0, 0.0, 5.0, 0.0, 0.0, 0.0];
        let b = [2.0, 0.5, 1.0, 9.0, 2.0, 7.0, 7.0, 7.0];
        // The 9.0/7.0 entries multiply structural zeros.
        assert_eq!(dot4(&a, &b), 1.0 * 2.0 + 2.0 * 0.5 + 3.0 + 10.0);
        let c = [1.0; 8];
        assert_eq!(
            dot4_diff(&b, &a, &c),
            (2.0 - 1.0) + (0.5 - 2.0) + (1.0 - 3.0) + 9.0 + (2.0 - 5.0) + 7.0 + 7.0 + 7.0
        );
    }
}
