//! A dense two-phase primal-simplex linear-programming solver.
//!
//! The paper's CounterPoint implementation relies on an off-the-shelf LP toolkit
//! (`pulp`/CBC) for two tasks:
//!
//! * **feasibility testing** — deciding whether the counter confidence region
//!   intersects the model cone (Appendix A's linear program over μpath flows), and
//! * **redundancy elimination** — detecting μpath counter signatures that lie in the
//!   interior of the model cone during constraint deduction.
//!
//! Both only need small-to-medium dense LPs (tens of constraints, up to a few
//! thousand flow variables), so this crate implements a self-contained dense
//! two-phase simplex rather than binding to an external solver.
//!
//! # Example
//!
//! ```
//! use counterpoint_lp::{LinearProgram, Relation, LpOutcome};
//!
//! // maximize x + y  s.t.  x + 2y <= 4,  3x + y <= 6,  x, y >= 0
//! let mut lp = LinearProgram::new(2);
//! lp.add_constraint(&[1.0, 2.0], Relation::Le, 4.0);
//! lp.add_constraint(&[3.0, 1.0], Relation::Le, 6.0);
//! lp.set_objective_maximize(&[1.0, 1.0]);
//! match lp.solve() {
//!     LpOutcome::Optimal { objective, .. } => assert!((objective - 2.8).abs() < 1e-7),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! ```

pub mod factor;
pub mod simplex;

pub use factor::{FactorTableau, FastOutcome};
pub use simplex::{LinearProgram, LpError, LpOutcome, Relation, Tableau};
