//! Two-phase dense primal simplex.

use counterpoint_telemetry as telemetry;
use std::fmt;

/// Relation of a linear constraint to its right-hand side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x ≥ rhs`
    Ge,
    /// `coeffs · x = rhs`
    Eq,
}

/// Outcome of solving a linear program.
#[derive(Clone, Debug, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// Objective value at the optimum (in the user's orientation: the maximum
        /// for maximisation problems, the minimum for minimisation problems).
        objective: f64,
        /// Values of the structural variables.
        solution: Vec<f64>,
    },
    /// No point satisfies all constraints (with `x ≥ 0`).
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// Returns `true` if the program has at least one feasible point.
    pub fn is_feasible(&self) -> bool {
        !matches!(self, LpOutcome::Infeasible)
    }

    /// Returns the solution vector if an optimum was found.
    pub fn solution(&self) -> Option<&[f64]> {
        match self {
            LpOutcome::Optimal { solution, .. } => Some(solution),
            _ => None,
        }
    }
}

/// Errors raised while building or solving a linear program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// A coefficient vector did not match the declared number of variables.
    DimensionMismatch {
        /// Declared number of structural variables.
        expected: usize,
        /// Length of the offending coefficient vector.
        found: usize,
    },
    /// The simplex iteration limit was exceeded (numerical cycling).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "coefficient vector has length {found}, expected {expected}"
                )
            }
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

#[derive(Clone, Debug)]
struct RowConstraint {
    coeffs: Vec<f64>,
    relation: Relation,
    rhs: f64,
}

/// A linear program over non-negative structural variables.
///
/// All variables are implicitly constrained to `x ≥ 0`, which matches the
/// CounterPoint formulation exactly: μpath flows and counter values are
/// non-negative by definition (negative flows of μops are impossible).
#[derive(Clone, Debug)]
pub struct LinearProgram {
    num_vars: usize,
    constraints: Vec<RowConstraint>,
    /// Minimisation objective over the structural variables.
    objective: Vec<f64>,
    /// `true` if the user asked to maximise (the sign of the reported optimum is
    /// flipped back on return).
    maximise: bool,
    epsilon: f64,
    max_iterations: usize,
}

impl LinearProgram {
    /// Creates an empty program with `num_vars` non-negative structural variables
    /// and a zero objective (a pure feasibility problem).
    pub fn new(num_vars: usize) -> LinearProgram {
        LinearProgram {
            num_vars,
            constraints: Vec::new(),
            objective: vec![0.0; num_vars],
            maximise: false,
            epsilon: 1e-9,
            max_iterations: 50_000,
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Overrides the numerical tolerance (default `1e-9`).
    pub fn set_epsilon(&mut self, epsilon: f64) {
        self.epsilon = epsilon;
    }

    /// Overrides the simplex iteration limit (default 50 000).
    pub fn set_max_iterations(&mut self, limit: usize) {
        self.max_iterations = limit;
    }

    /// Adds the constraint `coeffs · x (relation) rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn add_constraint(&mut self, coeffs: &[f64], relation: Relation, rhs: f64) {
        assert_eq!(
            coeffs.len(),
            self.num_vars,
            "constraint has {} coefficients, expected {}",
            coeffs.len(),
            self.num_vars
        );
        self.constraints.push(RowConstraint {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
    }

    /// Sets a minimisation objective `min coeffs · x`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn set_objective_minimize(&mut self, coeffs: &[f64]) {
        assert_eq!(coeffs.len(), self.num_vars, "objective dimension mismatch");
        self.objective = coeffs.to_vec();
        self.maximise = false;
    }

    /// Sets a maximisation objective `max coeffs · x`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn set_objective_maximize(&mut self, coeffs: &[f64]) {
        assert_eq!(coeffs.len(), self.num_vars, "objective dimension mismatch");
        self.objective = coeffs.iter().map(|c| -c).collect();
        self.maximise = true;
    }

    /// Solves the program with the two-phase simplex method.
    ///
    /// # Panics
    ///
    /// Panics if the iteration limit is exceeded (which indicates pathological
    /// cycling; the limit is far above anything CounterPoint's problem sizes need).
    /// Use [`LinearProgram::try_solve`] for a non-panicking variant.
    pub fn solve(&self) -> LpOutcome {
        self.try_solve().expect("simplex iteration limit exceeded")
    }

    /// Solves the program, returning an error instead of panicking if the iteration
    /// limit is exceeded.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] if the solver fails to converge.
    pub fn try_solve(&self) -> Result<LpOutcome, LpError> {
        DenseTableau::build_and_solve(self)
    }

    /// Convenience: returns `true` if the constraint system admits any solution
    /// with `x ≥ 0` (the objective is ignored).
    pub fn is_feasible(&self) -> bool {
        let mut copy = self.clone();
        copy.objective = vec![0.0; copy.num_vars];
        copy.maximise = false;
        copy.solve().is_feasible()
    }
}

/// A warm-startable revised dual-simplex engine for *band feasibility*
/// systems `lo ≤ A·x ≤ hi` over `x ≥ 0`.
///
/// This is the shape of CounterPoint's hot path: one band per confidence-region
/// axis, whose coefficient row `A_k` (`axis · generator` per flow variable) is a
/// function of the model cone and the counter-space axes only, while the bounds
/// `lo`/`hi` move from observation to observation.  A `Tableau` therefore keeps
/// the factorised state — the basis and its inverse `B⁻¹` — alive across
/// solves: [`resolve`](Tableau::resolve) after a bounds-only change starts from
/// the previous solve's basis and usually needs only a handful of dual-simplex
/// pivots instead of a full two-phase solve, [`rebind`](Tableau::rebind) swaps
/// in a new coefficient matrix of the same shape without reallocating, and
/// [`resolve_with_basis`](Tableau::resolve_with_basis) seeds the tableau with a
/// basis carried over from a structurally similar system.
///
/// Conceptually each band `k` contributes two rows:
///
/// * row `2k`:   `−A_k·x + s = −lo_k` (the `≥` side, pre-negated so every slack
///   coefficient is `+1` and the all-slack basis matrix is the identity), and
/// * row `2k+1`: `A_k·x + s = hi_k` (the `≤` side).
///
/// The implementation is *revised*: it never materialises the full
/// `B⁻¹·[A | S]` tableau.  Only `B⁻¹` (`2d × 2d`) and the raw band matrix
/// (`d × p`) are stored; the leaving row's coefficients and the entering column
/// are reconstructed on demand, so a pivot costs `O(d·p + d²)` instead of the
/// classical `O(d·(p + d))` row sweep over a matrix twice that size, and a
/// bounds-only restart costs `O(d²)`.
///
/// Because the objective is identically zero, every basis is dual-feasible and
/// the dual simplex reduces to feasibility restoration: pick a row whose basic
/// value is negative, pivot on a negative entry, and stop when either no row is
/// violated (feasible) or a violated row has no negative entry (infeasible —
/// the row reads "a non-negative combination equals a negative number").
///
/// The one-shot [`LinearProgram::solve`] path is untouched; this type exists
/// for callers that answer the same feasibility question many times.
#[derive(Clone, Debug)]
pub struct Tableau {
    num_vars: usize,
    num_bands: usize,
    /// The band matrix `A`, stored flat and transposed
    /// (`num_vars × num_bands`, row-major) so the per-iteration coefficient
    /// reconstruction walks contiguous memory.
    bands_t: Vec<f64>,
    /// `B⁻¹` (`2·num_bands` square, flat row-major), maintained across pivots.
    binv: Vec<f64>,
    /// `true` while `B⁻¹` is still the identity (all-slack basis, no pivots
    /// since the last rebind): lets `resolve` skip the `B⁻¹·b` product.
    binv_is_identity: bool,
    /// `B⁻¹·b` for the most recent bounds.
    rhs: Vec<f64>,
    /// Basic column per row (`j < num_vars`: flow `j`; otherwise slack
    /// `j − num_vars`).
    basis: Vec<usize>,
    /// `in_basis[j]` mirrors `basis` for O(1) membership tests.
    in_basis: Vec<bool>,
    /// Row that certified infeasibility on the most recent resolve, if any.
    infeasible_row: Option<usize>,
    /// Scratch: per-band multiplier differences of the leaving row.
    delta: Vec<f64>,
    /// Scratch: the leaving row's structural coefficients.
    rowbuf: Vec<f64>,
    /// Scratch: the entering column in basis coordinates (`B⁻¹·a`).
    colbuf: Vec<f64>,
    epsilon: f64,
    max_iterations: usize,
}

// PROFILING TEMP — remove before commit.
#[allow(missing_docs)]
impl Tableau {
    /// Builds a tableau for the band system `lo ≤ A·x ≤ hi` over `x ≥ 0`,
    /// starting from the all-slack basis.  `bands` holds the rows of `A`.
    ///
    /// # Panics
    ///
    /// Panics if any band row's length differs from `num_vars`.
    pub fn band(num_vars: usize, bands: &[Vec<f64>]) -> Tableau {
        let m = 2 * bands.len();
        let mut tableau = Tableau {
            num_vars,
            num_bands: bands.len(),
            bands_t: vec![0.0; num_vars * bands.len()],
            binv: vec![0.0; m * m],
            binv_is_identity: true,
            rhs: vec![0.0; m],
            basis: Vec::new(),
            in_basis: vec![false; num_vars + m],
            infeasible_row: None,
            delta: vec![0.0; bands.len()],
            rowbuf: vec![0.0; num_vars],
            colbuf: vec![0.0; m],
            epsilon: 1e-9,
            max_iterations: 50_000,
        };
        tableau.rebind(bands);
        tableau
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of bands (the system has `2 · num_bands` rows).
    pub fn num_bands(&self) -> usize {
        self.num_bands
    }

    /// Overrides the numerical tolerance (default `1e-9`).
    pub fn set_epsilon(&mut self, epsilon: f64) {
        self.epsilon = epsilon;
    }

    /// Overrides the dual-simplex iteration limit (default 50 000).
    pub fn set_max_iterations(&mut self, limit: usize) {
        self.max_iterations = limit;
    }

    /// The current basis (one column index per row), e.g. to seed another
    /// tableau via [`resolve_with_basis`](Tableau::resolve_with_basis).
    pub fn basis(&self) -> &[usize] {
        &self.basis
    }

    /// Replaces the band matrix with one of the same shape and resets the
    /// tableau to the all-slack basis, reusing every allocation.  The batched
    /// feasibility engine calls this when the confidence-region axes change
    /// (new coefficient matrix, same dimensions).
    ///
    /// # Panics
    ///
    /// Panics if the number of bands or a row length differs from the shape the
    /// tableau was built with.
    pub fn rebind(&mut self, bands: &[Vec<f64>]) {
        assert_eq!(bands.len(), self.num_bands, "band count changed in rebind");
        let n = self.num_vars;
        let d = self.num_bands;
        for (k, src) in bands.iter().enumerate() {
            assert_eq!(
                src.len(),
                n,
                "band {k} has {} coefficients, expected {n}",
                src.len()
            );
            for (j, &a) in src.iter().enumerate() {
                self.bands_t[j * d + k] = a;
            }
        }
        self.binv.fill(0.0);
        let m = 2 * d;
        for i in 0..m {
            self.binv[i * m + i] = 1.0;
        }
        self.binv_is_identity = true;
        self.in_basis.fill(false);
        for slot in self.in_basis.iter_mut().skip(n) {
            *slot = true;
        }
        self.basis.clear();
        self.basis.extend(n..n + 2 * self.num_bands);
        self.infeasible_row = None;
        telemetry::add(telemetry::Metric::LpRefactorizations, 1);
    }

    /// The structural (flow) variables that are basic in the current basis,
    /// with their values after the most recent resolve — the support of the
    /// feasible point when that resolve returned `true`.  Values can be
    /// marginally negative (within the feasibility tolerance); callers should
    /// clamp.
    pub fn basic_flows(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.basis
            .iter()
            .zip(self.rhs.iter())
            .filter_map(|(&j, &v)| (j < self.num_vars).then_some((j, v)))
    }

    /// The Farkas certificate of the most recent infeasible
    /// [`resolve`](Tableau::resolve): the multipliers `π` (one per row, all
    /// non-negative up to tolerance) of the stuck row, i.e. the corresponding
    /// row of `B⁻¹`.  `π · [A|S] ≥ 0` componentwise while `π · b < 0`, so any
    /// bounds with `π · b < 0` are infeasible regardless of the flows.
    /// `None` if the last resolve was feasible (or none has run).
    pub fn farkas_multipliers(&self) -> Option<&[f64]> {
        let m = 2 * self.num_bands;
        self.infeasible_row.map(|r| &self.binv[r * m..(r + 1) * m])
    }

    /// Decides feasibility of the band system under new bounds, warm-starting
    /// the dual simplex from the basis the previous call ended in.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] if the dual simplex fails to
    /// converge; callers should fall back to a cold [`LinearProgram`] solve.
    ///
    /// # Panics
    ///
    /// Panics if `lo` or `hi` do not have one entry per band.
    pub fn resolve(&mut self, lo: &[f64], hi: &[f64]) -> Result<bool, LpError> {
        assert_eq!(lo.len(), self.num_bands, "lo has the wrong length");
        assert_eq!(hi.len(), self.num_bands, "hi has the wrong length");
        let m = 2 * self.num_bands;
        // rhs = B⁻¹·b for the current basis, with b in original row
        // coordinates (the ≥ side is pre-negated).
        if self.binv_is_identity {
            for k in 0..self.num_bands {
                self.rhs[2 * k] = -lo[k];
                self.rhs[2 * k + 1] = hi[k];
            }
        } else {
            for i in 0..m {
                let row = &self.binv[i * m..(i + 1) * m];
                let mut acc = 0.0;
                for k in 0..self.num_bands {
                    acc += row[2 * k] * -lo[k] + row[2 * k + 1] * hi[k];
                }
                self.rhs[i] = acc;
            }
        }
        self.restore_feasibility()
    }

    /// Like [`resolve`](Tableau::resolve), but first installs `basis` — e.g.
    /// the final basis of a structurally similar tableau — by replaying pivots.
    /// Basis columns that would make the basis singular (pivot too small) are
    /// skipped, leaving the incumbent basic column in that row.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] if the dual simplex fails to
    /// converge after the basis is installed.
    ///
    /// # Panics
    ///
    /// Panics if `basis` does not have one entry per row, or `lo`/`hi` do not
    /// have one entry per band.
    pub fn resolve_with_basis(
        &mut self,
        lo: &[f64],
        hi: &[f64],
        basis: &[usize],
    ) -> Result<bool, LpError> {
        let m = 2 * self.num_bands;
        assert_eq!(basis.len(), m, "basis has the wrong length");
        let total = self.num_vars + m;
        // Replaying a pivot with a tiny pivot element would poison B⁻¹; such
        // columns are simply not installed (the row keeps its current basic
        // variable, typically its slack).
        let pivot_tol = self.epsilon.max(1e-7);
        let mut replayed = 0u64;
        for (row, &col) in basis.iter().enumerate() {
            if col >= total || self.basis[row] == col || self.in_basis[col] {
                continue;
            }
            self.load_column(col);
            if self.colbuf[row].abs() > pivot_tol {
                self.pivot(row, col);
                replayed += 1;
            }
        }
        telemetry::add(telemetry::Metric::LpBasisReplayPivots, replayed);
        self.resolve(lo, hi)
    }

    /// Dual-simplex feasibility restoration from the current (dual-feasible,
    /// since the objective is zero) basis.  Pivot counts are reported to the
    /// telemetry sink in one flush per solve so the disabled-telemetry cost
    /// stays off the pivot loop.
    fn restore_feasibility(&mut self) -> Result<bool, LpError> {
        let mut pivots = 0u64;
        let result = self.restore_feasibility_counted(&mut pivots);
        if telemetry::enabled() {
            telemetry::add(telemetry::Metric::LpPivots, pivots);
            if result.is_ok() {
                telemetry::add(telemetry::Metric::LpSolves, 1);
                telemetry::observe(telemetry::Histogram::LpPivotsPerSolve, pivots);
            }
        }
        result
    }

    fn restore_feasibility_counted(&mut self, pivots: &mut u64) -> Result<bool, LpError> {
        self.infeasible_row = None;
        let m = 2 * self.num_bands;
        // Accept residual per-row violations up to the same threshold the
        // two-phase solver applies to its phase-1 optimum, so both paths agree
        // on borderline systems.
        let tol = self.epsilon.max(1e-7);
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            if iterations > self.max_iterations {
                return Err(LpError::IterationLimit);
            }
            let use_bland = iterations > self.max_iterations / 2;

            // Leaving row: most negative basic value (Bland: smallest basic
            // index among the violated rows, which guarantees termination).
            let mut leave: Option<usize> = None;
            let mut worst = -tol;
            for i in 0..m {
                if self.rhs[i] < worst {
                    if use_bland {
                        if leave.is_none_or(|l| self.basis[i] < self.basis[l]) {
                            leave = Some(i);
                        }
                        worst = -tol;
                    } else {
                        worst = self.rhs[i];
                        leave = Some(i);
                    }
                }
            }
            let Some(row) = leave else {
                return Ok(true);
            };

            // Reconstruct the leaving row's coefficients from π = B⁻¹[row]:
            // flow column j carries Σ_k (π_{2k+1} − π_{2k})·A_kj, slack column
            // i carries π_i.  Any non-basic column with a negative entry keeps
            // dual feasibility (all reduced costs are zero); prefer the
            // largest magnitude for numerical stability.
            {
                let pi = &self.binv[row * m..(row + 1) * m];
                for (k, d) in self.delta.iter_mut().enumerate() {
                    *d = pi[2 * k + 1] - pi[2 * k];
                }
            }
            let d = self.num_bands;
            for (buf, col) in self
                .rowbuf
                .iter_mut()
                .zip(self.bands_t.chunks_exact(d.max(1)))
            {
                *buf = self
                    .delta
                    .iter()
                    .zip(col.iter())
                    .map(|(dk, a)| dk * a)
                    .sum();
            }
            let mut enter: Option<usize> = None;
            let mut best = self.epsilon;
            'scan: {
                for (j, &a) in self.rowbuf.iter().enumerate() {
                    if self.in_basis[j] {
                        continue;
                    }
                    if a < -self.epsilon {
                        if use_bland {
                            enter = Some(j);
                            break 'scan;
                        }
                        if -a > best {
                            best = -a;
                            enter = Some(j);
                        }
                    }
                }
                for i in 0..m {
                    let j = self.num_vars + i;
                    if self.in_basis[j] {
                        continue;
                    }
                    let a = self.binv[row * m + i];
                    if a < -self.epsilon {
                        if use_bland {
                            enter = Some(j);
                            break 'scan;
                        }
                        if -a > best {
                            best = -a;
                            enter = Some(j);
                        }
                    }
                }
            }
            let Some(col) = enter else {
                // The row asserts a non-negative combination equals a negative
                // number: the system is infeasible.
                self.infeasible_row = Some(row);
                return Ok(false);
            };
            self.load_column(col);
            self.pivot(row, col);
            *pivots += 1;
        }
    }

    /// Fills `colbuf` with the entering column in basis coordinates,
    /// `B⁻¹·a_col`.
    fn load_column(&mut self, col: usize) {
        let m = 2 * self.num_bands;
        let d = self.num_bands;
        if col < self.num_vars {
            // Flow column: original entries alternate (−A_kj, +A_kj).
            let band_col = &self.bands_t[col * d..(col + 1) * d];
            for i in 0..m {
                let row = &self.binv[i * m..(i + 1) * m];
                let mut acc = 0.0;
                for (k, &a) in band_col.iter().enumerate() {
                    acc += (row[2 * k + 1] - row[2 * k]) * a;
                }
                self.colbuf[i] = acc;
            }
        } else {
            // Slack column: `a = e_i`, so `B⁻¹·a` is a column of B⁻¹.
            let slack = col - self.num_vars;
            for i in 0..m {
                self.colbuf[i] = self.binv[i * m + slack];
            }
        }
    }

    /// Product-form basis update: pivots `col` (whose basis-coordinate column
    /// is already in `colbuf`) into `row`.
    fn pivot(&mut self, row: usize, col: usize) {
        let m = 2 * self.num_bands;
        let pivot = self.colbuf[row];
        debug_assert!(pivot.abs() > 0.0, "zero pivot");
        let inv = 1.0 / pivot;
        for v in &mut self.binv[row * m..(row + 1) * m] {
            *v *= inv;
        }
        self.rhs[row] *= inv;
        for i in 0..m {
            if i == row {
                continue;
            }
            let factor = self.colbuf[i];
            if factor == 0.0 {
                continue;
            }
            // Split-borrow the pivot row from the row being updated.
            let (pivot_row, target_row) = if i < row {
                let (head, tail) = self.binv.split_at_mut(row * m);
                (&tail[..m], &mut head[i * m..(i + 1) * m])
            } else {
                let (head, tail) = self.binv.split_at_mut(i * m);
                (&head[row * m..(row + 1) * m], &mut tail[..m])
            };
            for (t, p) in target_row.iter_mut().zip(pivot_row.iter()) {
                *t -= factor * p;
            }
            self.rhs[i] -= factor * self.rhs[row];
        }
        self.binv_is_identity = false;
        self.in_basis[self.basis[row]] = false;
        self.in_basis[col] = true;
        self.basis[row] = col;
    }
}

/// Dense simplex tableau.
struct DenseTableau {
    /// rows x cols coefficient matrix (structural + slack + artificial columns).
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    /// Index of the basic variable for each row.
    basis: Vec<usize>,
    num_structural: usize,
    num_total: usize,
    artificial_start: usize,
    epsilon: f64,
    max_iterations: usize,
}

impl DenseTableau {
    fn build_and_solve(lp: &LinearProgram) -> Result<LpOutcome, LpError> {
        let m = lp.constraints.len();
        let n = lp.num_vars;

        // Count extra columns: one slack/surplus per inequality, one artificial per
        // Ge/Eq row (after rhs normalisation).
        let mut norm: Vec<RowConstraint> = Vec::with_capacity(m);
        for c in &lp.constraints {
            let mut c = c.clone();
            if c.rhs < 0.0 {
                c.rhs = -c.rhs;
                for v in &mut c.coeffs {
                    *v = -*v;
                }
                c.relation = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
            norm.push(c);
        }

        let num_slack = norm.iter().filter(|c| c.relation != Relation::Eq).count();
        let num_artificial = norm.iter().filter(|c| c.relation != Relation::Le).count();
        let num_total = n + num_slack + num_artificial;
        let artificial_start = n + num_slack;

        let mut rows = vec![vec![0.0; num_total]; m];
        let mut rhs = vec![0.0; m];
        let mut basis = vec![0usize; m];

        let mut slack_idx = n;
        let mut art_idx = artificial_start;
        for (i, c) in norm.iter().enumerate() {
            rows[i][..n].copy_from_slice(&c.coeffs);
            rhs[i] = c.rhs;
            match c.relation {
                Relation::Le => {
                    rows[i][slack_idx] = 1.0;
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    rows[i][slack_idx] = -1.0;
                    slack_idx += 1;
                    rows[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
                Relation::Eq => {
                    rows[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
            }
        }

        let mut tableau = DenseTableau {
            rows,
            rhs,
            basis,
            num_structural: n,
            num_total,
            artificial_start,
            epsilon: lp.epsilon,
            max_iterations: lp.max_iterations,
        };

        // Phase 1: minimise the sum of artificial variables.
        if num_artificial > 0 {
            let mut phase1_cost = vec![0.0; num_total];
            for slot in phase1_cost.iter_mut().skip(artificial_start) {
                *slot = 1.0;
            }
            let value = tableau.optimize(&phase1_cost, true)?;
            if value > lp.epsilon.max(1e-7) {
                return Ok(LpOutcome::Infeasible);
            }
            tableau.drive_out_artificials();
        }

        // Phase 2: minimise the user objective (artificials barred from entering).
        let mut cost = vec![0.0; num_total];
        cost[..n].copy_from_slice(&lp.objective);
        let value = match tableau.optimize(&cost, false)? {
            v if v.is_finite() => v,
            _ => return Ok(LpOutcome::Unbounded),
        };
        if value.is_nan() {
            return Ok(LpOutcome::Unbounded);
        }
        // Unbounded is signalled by optimize returning f64::NEG_INFINITY.
        if value == f64::NEG_INFINITY {
            return Ok(LpOutcome::Unbounded);
        }

        let mut solution = vec![0.0; n];
        for (row, &b) in tableau.basis.iter().enumerate() {
            if b < n {
                solution[b] = tableau.rhs[row];
            }
        }
        let objective = if lp.maximise { -value } else { value };
        Ok(LpOutcome::Optimal {
            objective,
            solution,
        })
    }

    /// Runs primal simplex minimising `cost`; returns the optimal objective value,
    /// `f64::NEG_INFINITY` if unbounded.
    fn optimize(&mut self, cost: &[f64], phase_one: bool) -> Result<f64, LpError> {
        // Reduced costs are computed on demand from the basis: z_j - c_j.
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            if iterations > self.max_iterations {
                return Err(LpError::IterationLimit);
            }
            let use_bland = iterations > self.max_iterations / 2;

            // Compute simplex multipliers implicitly: reduced cost of column j is
            // c_j - sum_i c_B[i] * rows[i][j].
            let cb: Vec<f64> = self.basis.iter().map(|&b| cost[b]).collect();

            let mut entering: Option<usize> = None;
            let mut best = -self.epsilon;
            #[allow(clippy::needless_range_loop)]
            for j in 0..self.num_total {
                // In phase 2, artificial variables may never re-enter the basis.
                if !phase_one && j >= self.artificial_start {
                    continue;
                }
                if self.basis.contains(&j) {
                    continue;
                }
                let zj: f64 = (0..self.rows.len()).map(|i| cb[i] * self.rows[i][j]).sum();
                let reduced = cost[j] - zj;
                if use_bland {
                    if reduced < -self.epsilon {
                        entering = Some(j);
                        break;
                    }
                } else if reduced < best {
                    best = reduced;
                    entering = Some(j);
                }
            }

            let Some(enter) = entering else {
                // Optimal: compute objective value.
                let value: f64 = (0..self.rows.len()).map(|i| cb[i] * self.rhs[i]).sum();
                return Ok(value);
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.rows.len() {
                let a = self.rows[i][enter];
                if a > self.epsilon {
                    let ratio = self.rhs[i] / a;
                    if ratio < best_ratio - self.epsilon
                        || (use_bland
                            && (ratio - best_ratio).abs() <= self.epsilon
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }

            let Some(leave) = leave else {
                return Ok(f64::NEG_INFINITY);
            };

            self.pivot(leave, enter);
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.rows[row][col];
        debug_assert!(pivot.abs() > 0.0, "zero pivot");
        for j in 0..self.num_total {
            self.rows[row][j] /= pivot;
        }
        self.rhs[row] /= pivot;
        for i in 0..self.rows.len() {
            if i == row {
                continue;
            }
            let factor = self.rows[i][col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..self.num_total {
                self.rows[i][j] -= factor * self.rows[row][j];
            }
            self.rhs[i] -= factor * self.rhs[row];
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivots any artificial variable still sitting in the basis (at
    /// value zero) out, if a non-artificial column with a non-zero coefficient
    /// exists in its row; otherwise the row is redundant and left alone.
    fn drive_out_artificials(&mut self) {
        for row in 0..self.rows.len() {
            if self.basis[row] < self.artificial_start {
                continue;
            }
            let replacement = (0..self.artificial_start)
                .find(|&j| self.rows[row][j].abs() > self.epsilon && !self.basis.contains(&j));
            if let Some(col) = replacement {
                self.pivot(row, col);
            }
        }
        let _ = self.num_structural;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    /// Decides `lo ≤ A·x ≤ hi`, `x ≥ 0` through the one-shot two-phase path,
    /// the reference the warm-started tableau must agree with.
    fn band_feasible_cold(bands: &[Vec<f64>], lo: &[f64], hi: &[f64]) -> bool {
        let mut lp = LinearProgram::new(bands[0].len());
        for (k, band) in bands.iter().enumerate() {
            lp.add_constraint(band, Relation::Ge, lo[k]);
            lp.add_constraint(band, Relation::Le, hi[k]);
        }
        lp.is_feasible()
    }

    #[test]
    fn tableau_band_matches_cold_solver() {
        // Cone generated by (1, 0) and (1, 1): y ≤ x over the non-negative
        // quadrant, probed through a batch of boxes.
        let bands = vec![vec![1.0, 1.0], vec![0.0, 1.0]];
        let cases: &[(&[f64; 2], &[f64; 2])] = &[
            (&[9.0, 3.0], &[11.0, 5.0]),   // strictly inside
            (&[9.0, 9.5], &[10.0, 10.5]),  // straddles the y = x facet
            (&[4.0, 9.0], &[5.0, 10.0]),   // y > x everywhere: infeasible
            (&[0.0, 0.0], &[0.0, 0.0]),    // the origin
            (&[-2.0, -1.0], &[-1.0, 1.0]), // x forced negative: infeasible
        ];
        let mut tableau = Tableau::band(2, &bands);
        assert_eq!(tableau.num_vars(), 2);
        assert_eq!(tableau.num_bands(), 2);
        for (lo, hi) in cases {
            let warm = tableau.resolve(*lo, *hi).unwrap();
            assert_eq!(
                warm,
                band_feasible_cold(&bands, *lo, *hi),
                "verdict mismatch for lo={lo:?} hi={hi:?}"
            );
        }
    }

    #[test]
    fn tableau_warm_restart_reuses_basis() {
        // A drifting sequence of boxes: after the first solve, later solves
        // should start from the previous basis and still be correct.
        let bands = vec![
            vec![2.0, 1.0, 0.0],
            vec![0.0, 1.0, 3.0],
            vec![1.0, 1.0, 1.0],
        ];
        let mut tableau = Tableau::band(3, &bands);
        for step in 0..40 {
            let t = step as f64;
            let lo = [5.0 + t, 2.0 + 0.5 * t, 3.0 + t];
            let hi = [7.0 + t, 4.0 + 0.5 * t, 4.0 + t];
            assert_eq!(
                tableau.resolve(&lo, &hi).unwrap(),
                band_feasible_cold(&bands, &lo, &hi),
                "step {step}"
            );
        }
    }

    #[test]
    fn tableau_resolve_with_basis_seeds_a_fresh_tableau() {
        let bands = vec![vec![1.0, 1.0], vec![0.0, 1.0]];
        let mut first = Tableau::band(2, &bands);
        assert!(first.resolve(&[9.0, 3.0], &[11.0, 5.0]).unwrap());
        let basis: Vec<usize> = first.basis().to_vec();

        let mut second = Tableau::band(2, &bands);
        assert!(second
            .resolve_with_basis(&[9.5, 3.5], &[10.5, 4.5], &basis)
            .unwrap());
        assert!(!second
            .resolve_with_basis(&[4.0, 9.0], &[5.0, 10.0], &basis)
            .unwrap());
    }

    #[test]
    fn tableau_detects_infeasibility_with_no_structural_variables() {
        // Zero structural variables: feasible iff every band contains zero.
        let mut tableau = Tableau::band(0, &[vec![], vec![]]);
        assert!(tableau.resolve(&[-1.0, 0.0], &[1.0, 0.0]).unwrap());
        assert!(!tableau.resolve(&[1.0, 0.0], &[2.0, 0.0]).unwrap());
    }

    #[test]
    fn tableau_handles_degenerate_equal_bounds() {
        // lo == hi pins the band exactly: x + y = 10 with y ∈ [0, 4].
        let bands = vec![vec![1.0, 1.0], vec![0.0, 1.0]];
        let mut tableau = Tableau::band(2, &bands);
        assert!(tableau.resolve(&[10.0, 0.0], &[10.0, 4.0]).unwrap());
        // x + y = 10 with y ≥ 12 is impossible.
        assert!(!tableau.resolve(&[10.0, 12.0], &[10.0, 14.0]).unwrap());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn tableau_bounds_length_mismatch_panics() {
        let mut tableau = Tableau::band(1, &[vec![1.0]]);
        let _ = tableau.resolve(&[0.0, 0.0], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn tableau_band_length_mismatch_panics() {
        let _ = Tableau::band(2, &[vec![1.0]]);
    }

    #[test]
    fn simple_maximisation() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> optimum 36 at (2, 6).
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0, 0.0], Relation::Le, 4.0);
        lp.add_constraint(&[0.0, 2.0], Relation::Le, 12.0);
        lp.add_constraint(&[3.0, 2.0], Relation::Le, 18.0);
        lp.set_objective_maximize(&[3.0, 5.0]);
        match lp.solve() {
            LpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_close(objective, 36.0);
                assert_close(solution[0], 2.0);
                assert_close(solution[1], 6.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simple_minimisation_with_ge() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 -> optimum at (4, 0) value 8.
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0, 1.0], Relation::Ge, 4.0);
        lp.add_constraint(&[1.0, 0.0], Relation::Ge, 1.0);
        lp.set_objective_minimize(&[2.0, 3.0]);
        match lp.solve() {
            LpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_close(objective, 8.0);
                assert_close(solution[0], 4.0);
                assert_close(solution[1], 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x = 2, y = 1, value 3.
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0, 2.0], Relation::Eq, 4.0);
        lp.add_constraint(&[1.0, -1.0], Relation::Eq, 1.0);
        lp.set_objective_minimize(&[1.0, 1.0]);
        match lp.solve() {
            LpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_close(objective, 3.0);
                assert_close(solution[0], 2.0);
                assert_close(solution[1], 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_program() {
        // x <= 1 and x >= 2 cannot both hold.
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[1.0], Relation::Le, 1.0);
        lp.add_constraint(&[1.0], Relation::Ge, 2.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
        assert!(!lp.is_feasible());
    }

    #[test]
    fn infeasible_due_to_nonnegativity() {
        // x + y <= -1 with x, y >= 0 is infeasible.
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0, 1.0], Relation::Le, -1.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_program() {
        // max x with only x >= 1 is unbounded.
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[1.0], Relation::Ge, 1.0);
        lp.set_objective_maximize(&[1.0]);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn pure_feasibility_problem() {
        let mut lp = LinearProgram::new(3);
        lp.add_constraint(&[1.0, 1.0, 1.0], Relation::Eq, 10.0);
        lp.add_constraint(&[1.0, 0.0, 0.0], Relation::Ge, 2.0);
        lp.add_constraint(&[0.0, 1.0, 0.0], Relation::Le, 5.0);
        assert!(lp.is_feasible());
        match lp.solve() {
            LpOutcome::Optimal { solution, .. } => {
                let sum: f64 = solution.iter().sum();
                assert_close(sum, 10.0);
                assert!(solution[0] >= 2.0 - 1e-7);
                assert!(solution[1] <= 5.0 + 1e-7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // -x <= -3  <=>  x >= 3.
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[-1.0], Relation::Le, -3.0);
        lp.set_objective_minimize(&[1.0]);
        match lp.solve() {
            LpOutcome::Optimal { objective, .. } => assert_close(objective, 3.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_vertex_is_handled() {
        // Multiple constraints meeting at the same vertex.
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0, 0.0], Relation::Le, 1.0);
        lp.add_constraint(&[0.0, 1.0], Relation::Le, 1.0);
        lp.add_constraint(&[1.0, 1.0], Relation::Le, 2.0);
        lp.add_constraint(&[1.0, -1.0], Relation::Le, 0.0);
        lp.set_objective_maximize(&[1.0, 1.0]);
        match lp.solve() {
            LpOutcome::Optimal { objective, .. } => assert_close(objective, 2.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn solution_accessor() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[1.0], Relation::Le, 5.0);
        lp.set_objective_maximize(&[1.0]);
        let out = lp.solve();
        assert!(out.is_feasible());
        assert_close(out.solution().unwrap()[0], 5.0);
        assert_eq!(LpOutcome::Infeasible.solution(), None);
    }

    #[test]
    fn cone_membership_as_lp() {
        // Is (5, 2) a non-negative combination of (1, 0) and (1, 1)?  (yes: 3, 2)
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0, 1.0], Relation::Eq, 5.0);
        lp.add_constraint(&[0.0, 1.0], Relation::Eq, 2.0);
        assert!(lp.is_feasible());

        // Is (1, 2)?  (no: would need negative flow on the first generator)
        let mut lp2 = LinearProgram::new(2);
        lp2.add_constraint(&[1.0, 1.0], Relation::Eq, 1.0);
        lp2.add_constraint(&[0.0, 1.0], Relation::Eq, 2.0);
        assert!(!lp2.is_feasible());
    }

    #[test]
    fn many_variables_feasibility() {
        // A wide problem similar in shape to μpath-flow feasibility: 300 flow
        // variables, 10 equality constraints.
        let n = 300;
        let mut lp = LinearProgram::new(n);
        for c in 0..10 {
            let coeffs: Vec<f64> = (0..n).map(|j| ((j + c) % 5) as f64).collect();
            lp.add_constraint(&coeffs, Relation::Le, 1000.0);
        }
        let obj: Vec<f64> = (0..n).map(|j| (j % 7) as f64).collect();
        lp.set_objective_maximize(&obj);
        match lp.solve() {
            LpOutcome::Optimal { objective, .. } => assert!(objective > 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn wrong_dimension_panics() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0], Relation::Le, 1.0);
    }

    #[test]
    fn error_display() {
        let e = LpError::DimensionMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(LpError::IterationLimit.to_string().contains("iteration"));
    }
}
