//! Two-phase dense primal simplex.

use std::fmt;

/// Relation of a linear constraint to its right-hand side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x ≥ rhs`
    Ge,
    /// `coeffs · x = rhs`
    Eq,
}

/// Outcome of solving a linear program.
#[derive(Clone, Debug, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// Objective value at the optimum (in the user's orientation: the maximum
        /// for maximisation problems, the minimum for minimisation problems).
        objective: f64,
        /// Values of the structural variables.
        solution: Vec<f64>,
    },
    /// No point satisfies all constraints (with `x ≥ 0`).
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// Returns `true` if the program has at least one feasible point.
    pub fn is_feasible(&self) -> bool {
        !matches!(self, LpOutcome::Infeasible)
    }

    /// Returns the solution vector if an optimum was found.
    pub fn solution(&self) -> Option<&[f64]> {
        match self {
            LpOutcome::Optimal { solution, .. } => Some(solution),
            _ => None,
        }
    }
}

/// Errors raised while building or solving a linear program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// A coefficient vector did not match the declared number of variables.
    DimensionMismatch {
        /// Declared number of structural variables.
        expected: usize,
        /// Length of the offending coefficient vector.
        found: usize,
    },
    /// The simplex iteration limit was exceeded (numerical cycling).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "coefficient vector has length {found}, expected {expected}"
                )
            }
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

#[derive(Clone, Debug)]
struct RowConstraint {
    coeffs: Vec<f64>,
    relation: Relation,
    rhs: f64,
}

/// A linear program over non-negative structural variables.
///
/// All variables are implicitly constrained to `x ≥ 0`, which matches the
/// CounterPoint formulation exactly: μpath flows and counter values are
/// non-negative by definition (negative flows of μops are impossible).
#[derive(Clone, Debug)]
pub struct LinearProgram {
    num_vars: usize,
    constraints: Vec<RowConstraint>,
    /// Minimisation objective over the structural variables.
    objective: Vec<f64>,
    /// `true` if the user asked to maximise (the sign of the reported optimum is
    /// flipped back on return).
    maximise: bool,
    epsilon: f64,
    max_iterations: usize,
}

impl LinearProgram {
    /// Creates an empty program with `num_vars` non-negative structural variables
    /// and a zero objective (a pure feasibility problem).
    pub fn new(num_vars: usize) -> LinearProgram {
        LinearProgram {
            num_vars,
            constraints: Vec::new(),
            objective: vec![0.0; num_vars],
            maximise: false,
            epsilon: 1e-9,
            max_iterations: 50_000,
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Overrides the numerical tolerance (default `1e-9`).
    pub fn set_epsilon(&mut self, epsilon: f64) {
        self.epsilon = epsilon;
    }

    /// Overrides the simplex iteration limit (default 50 000).
    pub fn set_max_iterations(&mut self, limit: usize) {
        self.max_iterations = limit;
    }

    /// Adds the constraint `coeffs · x (relation) rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn add_constraint(&mut self, coeffs: &[f64], relation: Relation, rhs: f64) {
        assert_eq!(
            coeffs.len(),
            self.num_vars,
            "constraint has {} coefficients, expected {}",
            coeffs.len(),
            self.num_vars
        );
        self.constraints.push(RowConstraint {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
    }

    /// Sets a minimisation objective `min coeffs · x`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn set_objective_minimize(&mut self, coeffs: &[f64]) {
        assert_eq!(coeffs.len(), self.num_vars, "objective dimension mismatch");
        self.objective = coeffs.to_vec();
        self.maximise = false;
    }

    /// Sets a maximisation objective `max coeffs · x`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn set_objective_maximize(&mut self, coeffs: &[f64]) {
        assert_eq!(coeffs.len(), self.num_vars, "objective dimension mismatch");
        self.objective = coeffs.iter().map(|c| -c).collect();
        self.maximise = true;
    }

    /// Solves the program with the two-phase simplex method.
    ///
    /// # Panics
    ///
    /// Panics if the iteration limit is exceeded (which indicates pathological
    /// cycling; the limit is far above anything CounterPoint's problem sizes need).
    /// Use [`LinearProgram::try_solve`] for a non-panicking variant.
    pub fn solve(&self) -> LpOutcome {
        self.try_solve().expect("simplex iteration limit exceeded")
    }

    /// Solves the program, returning an error instead of panicking if the iteration
    /// limit is exceeded.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] if the solver fails to converge.
    pub fn try_solve(&self) -> Result<LpOutcome, LpError> {
        Tableau::build_and_solve(self)
    }

    /// Convenience: returns `true` if the constraint system admits any solution
    /// with `x ≥ 0` (the objective is ignored).
    pub fn is_feasible(&self) -> bool {
        let mut copy = self.clone();
        copy.objective = vec![0.0; copy.num_vars];
        copy.maximise = false;
        copy.solve().is_feasible()
    }
}

/// Dense simplex tableau.
struct Tableau {
    /// rows x cols coefficient matrix (structural + slack + artificial columns).
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    /// Index of the basic variable for each row.
    basis: Vec<usize>,
    num_structural: usize,
    num_total: usize,
    artificial_start: usize,
    epsilon: f64,
    max_iterations: usize,
}

impl Tableau {
    fn build_and_solve(lp: &LinearProgram) -> Result<LpOutcome, LpError> {
        let m = lp.constraints.len();
        let n = lp.num_vars;

        // Count extra columns: one slack/surplus per inequality, one artificial per
        // Ge/Eq row (after rhs normalisation).
        let mut norm: Vec<RowConstraint> = Vec::with_capacity(m);
        for c in &lp.constraints {
            let mut c = c.clone();
            if c.rhs < 0.0 {
                c.rhs = -c.rhs;
                for v in &mut c.coeffs {
                    *v = -*v;
                }
                c.relation = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
            norm.push(c);
        }

        let num_slack = norm.iter().filter(|c| c.relation != Relation::Eq).count();
        let num_artificial = norm.iter().filter(|c| c.relation != Relation::Le).count();
        let num_total = n + num_slack + num_artificial;
        let artificial_start = n + num_slack;

        let mut rows = vec![vec![0.0; num_total]; m];
        let mut rhs = vec![0.0; m];
        let mut basis = vec![0usize; m];

        let mut slack_idx = n;
        let mut art_idx = artificial_start;
        for (i, c) in norm.iter().enumerate() {
            rows[i][..n].copy_from_slice(&c.coeffs);
            rhs[i] = c.rhs;
            match c.relation {
                Relation::Le => {
                    rows[i][slack_idx] = 1.0;
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    rows[i][slack_idx] = -1.0;
                    slack_idx += 1;
                    rows[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
                Relation::Eq => {
                    rows[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
            }
        }

        let mut tableau = Tableau {
            rows,
            rhs,
            basis,
            num_structural: n,
            num_total,
            artificial_start,
            epsilon: lp.epsilon,
            max_iterations: lp.max_iterations,
        };

        // Phase 1: minimise the sum of artificial variables.
        if num_artificial > 0 {
            let mut phase1_cost = vec![0.0; num_total];
            for slot in phase1_cost.iter_mut().skip(artificial_start) {
                *slot = 1.0;
            }
            let value = tableau.optimize(&phase1_cost, true)?;
            if value > lp.epsilon.max(1e-7) {
                return Ok(LpOutcome::Infeasible);
            }
            tableau.drive_out_artificials();
        }

        // Phase 2: minimise the user objective (artificials barred from entering).
        let mut cost = vec![0.0; num_total];
        cost[..n].copy_from_slice(&lp.objective);
        let value = match tableau.optimize(&cost, false)? {
            v if v.is_finite() => v,
            _ => return Ok(LpOutcome::Unbounded),
        };
        if value.is_nan() {
            return Ok(LpOutcome::Unbounded);
        }
        // Unbounded is signalled by optimize returning f64::NEG_INFINITY.
        if value == f64::NEG_INFINITY {
            return Ok(LpOutcome::Unbounded);
        }

        let mut solution = vec![0.0; n];
        for (row, &b) in tableau.basis.iter().enumerate() {
            if b < n {
                solution[b] = tableau.rhs[row];
            }
        }
        let objective = if lp.maximise { -value } else { value };
        Ok(LpOutcome::Optimal {
            objective,
            solution,
        })
    }

    /// Runs primal simplex minimising `cost`; returns the optimal objective value,
    /// `f64::NEG_INFINITY` if unbounded.
    fn optimize(&mut self, cost: &[f64], phase_one: bool) -> Result<f64, LpError> {
        // Reduced costs are computed on demand from the basis: z_j - c_j.
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            if iterations > self.max_iterations {
                return Err(LpError::IterationLimit);
            }
            let use_bland = iterations > self.max_iterations / 2;

            // Compute simplex multipliers implicitly: reduced cost of column j is
            // c_j - sum_i c_B[i] * rows[i][j].
            let cb: Vec<f64> = self.basis.iter().map(|&b| cost[b]).collect();

            let mut entering: Option<usize> = None;
            let mut best = -self.epsilon;
            #[allow(clippy::needless_range_loop)]
            for j in 0..self.num_total {
                // In phase 2, artificial variables may never re-enter the basis.
                if !phase_one && j >= self.artificial_start {
                    continue;
                }
                if self.basis.contains(&j) {
                    continue;
                }
                let zj: f64 = (0..self.rows.len()).map(|i| cb[i] * self.rows[i][j]).sum();
                let reduced = cost[j] - zj;
                if use_bland {
                    if reduced < -self.epsilon {
                        entering = Some(j);
                        break;
                    }
                } else if reduced < best {
                    best = reduced;
                    entering = Some(j);
                }
            }

            let Some(enter) = entering else {
                // Optimal: compute objective value.
                let value: f64 = (0..self.rows.len()).map(|i| cb[i] * self.rhs[i]).sum();
                return Ok(value);
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.rows.len() {
                let a = self.rows[i][enter];
                if a > self.epsilon {
                    let ratio = self.rhs[i] / a;
                    if ratio < best_ratio - self.epsilon
                        || (use_bland
                            && (ratio - best_ratio).abs() <= self.epsilon
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }

            let Some(leave) = leave else {
                return Ok(f64::NEG_INFINITY);
            };

            self.pivot(leave, enter);
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.rows[row][col];
        debug_assert!(pivot.abs() > 0.0, "zero pivot");
        for j in 0..self.num_total {
            self.rows[row][j] /= pivot;
        }
        self.rhs[row] /= pivot;
        for i in 0..self.rows.len() {
            if i == row {
                continue;
            }
            let factor = self.rows[i][col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..self.num_total {
                self.rows[i][j] -= factor * self.rows[row][j];
            }
            self.rhs[i] -= factor * self.rhs[row];
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivots any artificial variable still sitting in the basis (at
    /// value zero) out, if a non-artificial column with a non-zero coefficient
    /// exists in its row; otherwise the row is redundant and left alone.
    fn drive_out_artificials(&mut self) {
        for row in 0..self.rows.len() {
            if self.basis[row] < self.artificial_start {
                continue;
            }
            let replacement = (0..self.artificial_start)
                .find(|&j| self.rows[row][j].abs() > self.epsilon && !self.basis.contains(&j));
            if let Some(col) = replacement {
                self.pivot(row, col);
            }
        }
        let _ = self.num_structural;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn simple_maximisation() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> optimum 36 at (2, 6).
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0, 0.0], Relation::Le, 4.0);
        lp.add_constraint(&[0.0, 2.0], Relation::Le, 12.0);
        lp.add_constraint(&[3.0, 2.0], Relation::Le, 18.0);
        lp.set_objective_maximize(&[3.0, 5.0]);
        match lp.solve() {
            LpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_close(objective, 36.0);
                assert_close(solution[0], 2.0);
                assert_close(solution[1], 6.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simple_minimisation_with_ge() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 -> optimum at (4, 0) value 8.
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0, 1.0], Relation::Ge, 4.0);
        lp.add_constraint(&[1.0, 0.0], Relation::Ge, 1.0);
        lp.set_objective_minimize(&[2.0, 3.0]);
        match lp.solve() {
            LpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_close(objective, 8.0);
                assert_close(solution[0], 4.0);
                assert_close(solution[1], 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x = 2, y = 1, value 3.
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0, 2.0], Relation::Eq, 4.0);
        lp.add_constraint(&[1.0, -1.0], Relation::Eq, 1.0);
        lp.set_objective_minimize(&[1.0, 1.0]);
        match lp.solve() {
            LpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_close(objective, 3.0);
                assert_close(solution[0], 2.0);
                assert_close(solution[1], 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_program() {
        // x <= 1 and x >= 2 cannot both hold.
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[1.0], Relation::Le, 1.0);
        lp.add_constraint(&[1.0], Relation::Ge, 2.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
        assert!(!lp.is_feasible());
    }

    #[test]
    fn infeasible_due_to_nonnegativity() {
        // x + y <= -1 with x, y >= 0 is infeasible.
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0, 1.0], Relation::Le, -1.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_program() {
        // max x with only x >= 1 is unbounded.
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[1.0], Relation::Ge, 1.0);
        lp.set_objective_maximize(&[1.0]);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn pure_feasibility_problem() {
        let mut lp = LinearProgram::new(3);
        lp.add_constraint(&[1.0, 1.0, 1.0], Relation::Eq, 10.0);
        lp.add_constraint(&[1.0, 0.0, 0.0], Relation::Ge, 2.0);
        lp.add_constraint(&[0.0, 1.0, 0.0], Relation::Le, 5.0);
        assert!(lp.is_feasible());
        match lp.solve() {
            LpOutcome::Optimal { solution, .. } => {
                let sum: f64 = solution.iter().sum();
                assert_close(sum, 10.0);
                assert!(solution[0] >= 2.0 - 1e-7);
                assert!(solution[1] <= 5.0 + 1e-7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // -x <= -3  <=>  x >= 3.
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[-1.0], Relation::Le, -3.0);
        lp.set_objective_minimize(&[1.0]);
        match lp.solve() {
            LpOutcome::Optimal { objective, .. } => assert_close(objective, 3.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_vertex_is_handled() {
        // Multiple constraints meeting at the same vertex.
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0, 0.0], Relation::Le, 1.0);
        lp.add_constraint(&[0.0, 1.0], Relation::Le, 1.0);
        lp.add_constraint(&[1.0, 1.0], Relation::Le, 2.0);
        lp.add_constraint(&[1.0, -1.0], Relation::Le, 0.0);
        lp.set_objective_maximize(&[1.0, 1.0]);
        match lp.solve() {
            LpOutcome::Optimal { objective, .. } => assert_close(objective, 2.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn solution_accessor() {
        let mut lp = LinearProgram::new(1);
        lp.add_constraint(&[1.0], Relation::Le, 5.0);
        lp.set_objective_maximize(&[1.0]);
        let out = lp.solve();
        assert!(out.is_feasible());
        assert_close(out.solution().unwrap()[0], 5.0);
        assert_eq!(LpOutcome::Infeasible.solution(), None);
    }

    #[test]
    fn cone_membership_as_lp() {
        // Is (5, 2) a non-negative combination of (1, 0) and (1, 1)?  (yes: 3, 2)
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0, 1.0], Relation::Eq, 5.0);
        lp.add_constraint(&[0.0, 1.0], Relation::Eq, 2.0);
        assert!(lp.is_feasible());

        // Is (1, 2)?  (no: would need negative flow on the first generator)
        let mut lp2 = LinearProgram::new(2);
        lp2.add_constraint(&[1.0, 1.0], Relation::Eq, 1.0);
        lp2.add_constraint(&[0.0, 1.0], Relation::Eq, 2.0);
        assert!(!lp2.is_feasible());
    }

    #[test]
    fn many_variables_feasibility() {
        // A wide problem similar in shape to μpath-flow feasibility: 300 flow
        // variables, 10 equality constraints.
        let n = 300;
        let mut lp = LinearProgram::new(n);
        for c in 0..10 {
            let coeffs: Vec<f64> = (0..n).map(|j| ((j + c) % 5) as f64).collect();
            lp.add_constraint(&coeffs, Relation::Le, 1000.0);
        }
        let obj: Vec<f64> = (0..n).map(|j| (j % 7) as f64).collect();
        lp.set_objective_maximize(&obj);
        match lp.solve() {
            LpOutcome::Optimal { objective, .. } => assert!(objective > 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn wrong_dimension_panics() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(&[1.0], Relation::Le, 1.0);
    }

    #[test]
    fn error_display() {
        let e = LpError::DimensionMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(LpError::IterationLimit.to_string().contains("iteration"));
    }
}
