//! μDDs for aborted translation requests (the paper's Table 7 analysis).
//!
//! Section C.3 of the paper asks whether translation-request *aborts* — at any of
//! four points in the MMU pipeline — could explain the "missing" walker memory
//! accesses instead of walk bypassing.  An aborted request never completes a walk,
//! so its μpaths carry partial counter signatures (possibly a PDE-cache miss and a
//! walk start with some references) but never `walk_done`.  Because the simulated
//! ground truth contains walks that *do* complete without references, every
//! abort-only model is refuted — matching the paper's finding that aborts alone are
//! insufficient.

use counterpoint_haswell::hec::{names, AccessType};
use counterpoint_mudd::{CounterSpace, MuDd, MuDdBuilder, NodeId};
use serde::Serialize;

/// Where a speculative translation request may abort (paper, Table 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum AbortPoint {
    /// During the page-table walk itself (after some walker references).
    DuringWalk,
    /// After the paging-structure-cache lookup but before the walk starts.
    AfterPsc,
    /// After the L2 TLB (STLB) lookup.
    AfterL2Tlb,
    /// After the L1 TLB lookup.
    AfterL1Tlb,
}

impl AbortPoint {
    /// All abort points, in the order of Table 7's columns.
    pub const ALL: [AbortPoint; 4] = [
        AbortPoint::DuringWalk,
        AbortPoint::AfterPsc,
        AbortPoint::AfterL2Tlb,
        AbortPoint::AfterL1Tlb,
    ];

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AbortPoint::DuringWalk => "during_walk",
            AbortPoint::AfterPsc => "after_psc",
            AbortPoint::AfterL2Tlb => "after_l2tlb",
            AbortPoint::AfterL1Tlb => "after_l1tlb",
        }
    }
}

/// Builds the μDD of a speculative translation request that aborts at one of the
/// enabled points.  Returns `None` when no abort point is enabled.
pub fn abort_request_mudd(space: &CounterSpace, points: &[AbortPoint]) -> Option<MuDd> {
    if points.is_empty() {
        return None;
    }
    let mut b = MuDdBuilder::new("aborted_request", space);
    let start = b.start();
    let which = b.decision("AbortPoint");
    b.causal(start, which);
    for point in points {
        match point {
            AbortPoint::AfterL1Tlb | AbortPoint::AfterL2Tlb => {
                // Nothing architectural has been counted yet.
                let end = b.end();
                b.causal_labeled(which, end, point.label());
            }
            AbortPoint::AfterPsc => {
                let pde = b.decision("AbPdeEarly");
                b.causal_labeled(which, pde, point.label());
                let end_hit = b.end();
                b.causal_labeled(pde, end_hit, "Hit");
                let miss = b.counter(&names::pde_miss(AccessType::Load));
                b.causal_labeled(pde, miss, "Miss");
                let end_miss = b.end();
                b.causal(miss, end_miss);
            }
            AbortPoint::DuringWalk => {
                let pde = b.decision("AbPdeWalk");
                b.causal_labeled(which, pde, point.label());
                // Either PDE status is possible before the walk starts.
                let causes_hit = b.counter(&names::causes_walk(AccessType::Load));
                b.causal_labeled(pde, causes_hit, "Hit");
                partial_refs(&mut b, causes_hit, "hit");
                let miss = b.counter(&names::pde_miss(AccessType::Load));
                b.causal_labeled(pde, miss, "Miss");
                let causes_miss = b.counter(&names::causes_walk(AccessType::Load));
                b.causal(miss, causes_miss);
                partial_refs(&mut b, causes_miss, "miss");
            }
        }
    }
    Some(
        b.build()
            .expect("abort μDD construction is structurally valid"),
    )
}

/// An aborted walk makes 0–3 walker references (at a single level, reduced
/// representation) and never completes.
fn partial_refs(b: &mut MuDdBuilder, from: NodeId, tag: &str) {
    let count = b.decision(&format!("AbRefCount_{tag}"));
    b.causal(from, count);
    let end = b.end();
    b.causal_labeled(count, end, "R0");
    for k in 1..=3u32 {
        let level = b.decision(&format!("AbRefLevel_{tag}_{k}"));
        b.causal_labeled(count, level, &format!("R{k}"));
        for (arm, lvl) in [("L1", 1usize), ("L2", 2), ("L3", 3), ("Mem", 4)] {
            let mut prev: Option<NodeId> = None;
            for _ in 0..k {
                let c = b.counter(&names::walk_ref(lvl));
                match prev {
                    None => b.causal_labeled(level, c, arm),
                    Some(p) => b.causal(p, c),
                }
                prev = Some(c);
            }
            let e = b.end();
            b.causal(prev.expect("k >= 1"), e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterpoint_haswell::full_counter_space;

    #[test]
    fn empty_point_list_builds_nothing() {
        assert!(abort_request_mudd(&full_counter_space(), &[]).is_none());
    }

    #[test]
    fn aborted_requests_never_complete_a_walk() {
        let space = full_counter_space();
        let mudd = abort_request_mudd(&space, &AbortPoint::ALL).unwrap();
        let done = space.index_of("load.walk_done").unwrap();
        let done_4k = space.index_of("load.walk_done_4k").unwrap();
        for p in mudd.enumerate_paths().unwrap() {
            assert_eq!(p.signature().get(done), 0);
            assert_eq!(p.signature().get(done_4k), 0);
        }
    }

    #[test]
    fn during_walk_aborts_can_leave_partial_references() {
        let space = full_counter_space();
        let mudd = abort_request_mudd(&space, &[AbortPoint::DuringWalk]).unwrap();
        let causes = space.index_of("load.causes_walk").unwrap();
        let refs: Vec<usize> = (1..=4)
            .map(|l| space.index_of(&names::walk_ref(l)).unwrap())
            .collect();
        let paths = mudd.enumerate_paths().unwrap();
        // Walk started with zero references.
        assert!(paths.iter().any(|p| {
            p.signature().get(causes) == 1 && refs.iter().all(|&r| p.signature().get(r) == 0)
        }));
        // Walk started with some references.
        assert!(paths.iter().any(|p| {
            p.signature().get(causes) == 1
                && refs.iter().map(|&r| p.signature().get(r)).sum::<u32>() == 3
        }));
    }

    #[test]
    fn early_abort_points_add_low_information_paths() {
        let space = full_counter_space();
        let mudd = abort_request_mudd(
            &space,
            &[
                AbortPoint::AfterL1Tlb,
                AbortPoint::AfterL2Tlb,
                AbortPoint::AfterPsc,
            ],
        )
        .unwrap();
        let paths = mudd.enumerate_paths().unwrap();
        assert!(paths.iter().any(|p| p.signature().is_zero()));
        let pde = space.index_of("load.pde$_miss").unwrap();
        assert!(paths
            .iter()
            .any(|p| p.signature().get(pde) == 1 && p.signature().total() == 1));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<&str> =
            AbortPoint::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
