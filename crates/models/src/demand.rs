//! μDD construction for demand (retiring) load and store μops.
//!
//! The demand μDD follows a μop from retirement bookkeeping through the TLB
//! hierarchy and, on an STLB miss, through the translation request pipeline whose
//! exact shape depends on which microarchitectural features the candidate model
//! includes (early PSC lookup, walk merging, walk bypassing, a PML4E cache).
//!
//! Walker memory references use the *reduced level representation*: a walk that
//! makes `k` references chooses a single cache level for all of them.  Because any
//! mixed-level reference pattern is a convex combination of the single-level
//! patterns with the same `k`, this representation generates exactly the same model
//! cone as enumerating every per-reference level combination, while keeping μpath
//! counts small.

use crate::features::{has, Feature};
use crate::prefetch::attach_prefetch_trigger;
use counterpoint_core::FeatureSet;
use counterpoint_haswell::hec::{names, AccessType};
use counterpoint_haswell::mem::PageSize;
use counterpoint_mudd::{CounterSpace, MuDd, MuDdBuilder, NodeId};

/// Where an inline (retiring-μop-triggered) prefetch request may be attached to a
/// demand μop's paths — used by the prefetch-trigger model family (`t9`–`t17`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchAttachPoint {
    /// Any retiring μop of the triggering type may issue a prefetch.
    Always,
    /// Only μops that missed the first-level TLB may issue a prefetch.
    AfterDtlbMiss,
    /// Only μops that missed the STLB may issue a prefetch.
    AfterStlbMiss,
}

/// Options controlling the shape of a demand μDD.
#[derive(Clone, Debug)]
pub struct DemandOptions {
    /// Which μop type the diagram describes.
    pub access: AccessType,
    /// Model features (early PSC, merging, PML4E cache, walk bypass are honoured
    /// here; TLB prefetching is handled by the caller via `inline_prefetch` or a
    /// stand-alone prefetch μDD).
    pub features: FeatureSet,
    /// Attach an inline prefetch trigger at the given point (Spec ✗ trigger
    /// models).
    pub inline_prefetch: Option<PrefetchAttachPoint>,
}

impl DemandOptions {
    /// Demand options with no inline prefetch.
    pub fn new(access: AccessType, features: &FeatureSet) -> DemandOptions {
        DemandOptions {
            access,
            features: features.clone(),
            inline_prefetch: None,
        }
    }
}

/// How far through the translation pipeline a μop got when one of its paths
/// terminates — used to decide whether an inline prefetch trigger applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Progress {
    L1Hit,
    StlbHit,
    StlbMiss,
}

struct Ctx<'a> {
    opts: &'a DemandOptions,
    early_psc: bool,
    merging: bool,
    pml4e: bool,
    bypass: bool,
    /// Monotonic counter used to generate unique decision-property names where
    /// independence between decisions is required.
    unique: usize,
}

impl Ctx<'_> {
    fn fresh(&mut self, prefix: &str) -> String {
        self.unique += 1;
        format!("{prefix}_{}", self.unique)
    }
}

/// Attaches an edge from `from` to `to`, labelled if `label` is provided.
fn connect(b: &mut MuDdBuilder, from: NodeId, label: Option<&str>, to: NodeId) {
    match label {
        Some(l) => b.causal_labeled(from, to, l),
        None => b.causal(from, to),
    }
}

/// Builds the demand μDD for one μop type over the given counter space.
///
/// # Panics
///
/// Panics if the counter space does not contain the Table 2 counters the diagram
/// increments (use [`counterpoint_haswell::full_counter_space`]).
pub fn demand_mudd(space: &CounterSpace, opts: &DemandOptions) -> MuDd {
    let t = opts.access;
    let mut ctx = Ctx {
        opts,
        early_psc: has(&opts.features, Feature::EarlyPsc),
        merging: has(&opts.features, Feature::Merging),
        pml4e: has(&opts.features, Feature::Pml4eCache),
        bypass: has(&opts.features, Feature::WalkBypass),
        unique: 0,
    };
    let mut b = MuDdBuilder::new(&format!("demand_{t}"), space);
    let start = b.start();
    let ret = b.counter(&names::ret(t));
    b.causal(start, ret);
    let psize = b.decision("PageSize");
    b.causal(ret, psize);
    for size in PageSize::ALL {
        size_branch(&mut b, &mut ctx, psize, size);
    }
    b.build()
        .expect("demand μDD construction is structurally valid")
}

fn size_branch(b: &mut MuDdBuilder, ctx: &mut Ctx<'_>, from: NodeId, size: PageSize) {
    let t = ctx.opts.access;
    let label = match size {
        PageSize::Size4K => "4K",
        PageSize::Size2M => "2M",
        PageSize::Size1G => "1G",
    };
    let l1 = b.decision(&format!("L1Tlb{label}"));
    connect(b, from, Some(label), l1);

    // L1 TLB hit: nothing beyond retirement.
    terminate(b, ctx, l1, Some("Hit"), Progress::L1Hit);

    if size == PageSize::Size1G {
        // 1 GiB translations are not held in the STLB: an L1 miss goes straight to
        // the MMU.
        let miss = b.counter(&names::ret_stlb_miss(t));
        connect(b, l1, Some("Miss"), miss);
        translation_request(b, ctx, miss, None, size);
        return;
    }

    let stlb = b.decision(&format!("Stlb{label}"));
    connect(b, l1, Some("Miss"), stlb);

    // STLB hit.
    let hit = b.counter(&names::stlb_hit(t));
    connect(b, stlb, Some("Hit"), hit);
    let hit_size = match size {
        PageSize::Size4K => b.counter(&names::stlb_hit_4k(t)),
        _ => b.counter(&names::stlb_hit_2m(t)),
    };
    b.causal(hit, hit_size);
    terminate(b, ctx, hit_size, None, Progress::StlbHit);

    // STLB miss: the μop retires with a miss and sends a translation request.
    let miss = b.counter(&names::ret_stlb_miss(t));
    connect(b, stlb, Some("Miss"), miss);
    translation_request(b, ctx, miss, None, size);
}

/// The translation-request pipeline after an STLB miss.
fn translation_request(
    b: &mut MuDdBuilder,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    label: Option<&str>,
    size: PageSize,
) {
    if size == PageSize::Size4K && ctx.early_psc {
        // Early PSC lookup: the PDE cache is consulted before the merge decision.
        let pde = b.decision("Pde4K");
        connect(b, from, label, pde);
        after_pde(b, ctx, pde, Some("Hit"), size, Some(true));
        let miss = b.counter(&names::pde_miss(ctx.opts.access));
        connect(b, pde, Some("Miss"), miss);
        after_pde(b, ctx, miss, None, size, Some(false));
    } else {
        after_pde(b, ctx, from, label, size, None);
    }
}

fn after_pde(
    b: &mut MuDdBuilder,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    label: Option<&str>,
    size: PageSize,
    pde_hit: Option<bool>,
) {
    if ctx.merging {
        let merge = b.decision(&ctx.fresh("Merge"));
        connect(b, from, label, merge);
        // Merged: the outstanding walk provides the translation; no further
        // counters are incremented by this μop.
        terminate(b, ctx, merge, Some("Merged"), Progress::StlbMiss);
        walk_entry(b, ctx, merge, Some("NotMerged"), size, pde_hit);
    } else {
        walk_entry(b, ctx, from, label, size, pde_hit);
    }
}

fn walk_entry(
    b: &mut MuDdBuilder,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    label: Option<&str>,
    size: PageSize,
    pde_hit: Option<bool>,
) {
    // Without early PSC lookup, the PDE cache is consulted only once the walk is
    // actually going to happen.
    if size == PageSize::Size4K && pde_hit.is_none() {
        let pde = b.decision("Pde4K");
        connect(b, from, label, pde);
        start_walk(b, ctx, pde, Some("Hit"), size, Some(true));
        let miss = b.counter(&names::pde_miss(ctx.opts.access));
        connect(b, pde, Some("Miss"), miss);
        start_walk(b, ctx, miss, None, size, Some(false));
    } else {
        start_walk(b, ctx, from, label, size, pde_hit);
    }
}

fn start_walk(
    b: &mut MuDdBuilder,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    label: Option<&str>,
    size: PageSize,
    pde_hit: Option<bool>,
) {
    let t = ctx.opts.access;
    let causes = b.counter(&names::causes_walk(t));
    connect(b, from, label, causes);
    if ctx.bypass {
        let bypass = b.decision(&ctx.fresh("Bypass"));
        b.causal(causes, bypass);
        // Bypassed / replayed walk: completes without visible walker references.
        walk_done(b, ctx, bypass, Some("Bypassed"), size);
        refs_then_done(b, ctx, bypass, Some("Walked"), size, pde_hit);
    } else {
        refs_then_done(b, ctx, causes, None, size, pde_hit);
    }
}

fn refs_then_done(
    b: &mut MuDdBuilder,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    label: Option<&str>,
    size: PageSize,
    pde_hit: Option<bool>,
) {
    match size {
        PageSize::Size4K => {
            if pde_hit == Some(true) {
                emit_refs(b, ctx, from, label, 1, size);
            } else {
                let pdpte = b.decision("Pdpte4K");
                connect(b, from, label, pdpte);
                emit_refs(b, ctx, pdpte, Some("Hit"), 2, size);
                upper_levels(b, ctx, pdpte, Some("Miss"), size, 3);
            }
        }
        PageSize::Size2M => {
            let pdpte = b.decision("Pdpte2M");
            connect(b, from, label, pdpte);
            emit_refs(b, ctx, pdpte, Some("Hit"), 1, size);
            upper_levels(b, ctx, pdpte, Some("Miss"), size, 2);
        }
        PageSize::Size1G => {
            upper_levels(b, ctx, from, label, size, 1);
        }
    }
}

/// Handles the PML4E-cache decision (or its absence) once the lower
/// paging-structure caches have missed; `refs_on_hit` is the number of walker
/// references needed when the root-level cache hits.
fn upper_levels(
    b: &mut MuDdBuilder,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    label: Option<&str>,
    size: PageSize,
    refs_on_hit: u32,
) {
    if ctx.pml4e {
        let pml4e = b.decision(&format!("Pml4e{}", size.label()));
        connect(b, from, label, pml4e);
        emit_refs(b, ctx, pml4e, Some("Hit"), refs_on_hit, size);
        emit_refs(b, ctx, pml4e, Some("Miss"), refs_on_hit + 1, size);
    } else {
        emit_refs(b, ctx, from, label, refs_on_hit + 1, size);
    }
}

/// Emits `count` walker references (reduced level representation: one level choice
/// for all of them), then the walk-completion counters, then terminates the path.
fn emit_refs(
    b: &mut MuDdBuilder,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    label: Option<&str>,
    count: u32,
    size: PageSize,
) {
    let level_decision = b.decision(&ctx.fresh("RefLevel"));
    connect(b, from, label, level_decision);
    for (arm, level) in [("L1", 1usize), ("L2", 2), ("L3", 3), ("Mem", 4)] {
        let mut prev: Option<NodeId> = None;
        for _ in 0..count {
            let c = b.counter(&names::walk_ref(level));
            match prev {
                None => b.causal_labeled(level_decision, c, arm),
                Some(p) => b.causal(p, c),
            }
            prev = Some(c);
        }
        let tail = prev.expect("count >= 1");
        walk_done(b, ctx, tail, None, size);
    }
}

/// Walk-completion counters followed by path termination.
fn walk_done(
    b: &mut MuDdBuilder,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    label: Option<&str>,
    size: PageSize,
) {
    let t = ctx.opts.access;
    let done = b.counter(&names::walk_done(t));
    connect(b, from, label, done);
    let done_size = match size {
        PageSize::Size4K => b.counter(&names::walk_done_4k(t)),
        PageSize::Size2M => b.counter(&names::walk_done_2m(t)),
        PageSize::Size1G => b.counter(&names::walk_done_1g(t)),
    };
    b.causal(done, done_size);
    terminate(b, ctx, done_size, None, Progress::StlbMiss);
}

/// Terminates a path, attaching an inline prefetch trigger if the model's trigger
/// condition applies to a μop that got this far.
fn terminate(
    b: &mut MuDdBuilder,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    label: Option<&str>,
    progress: Progress,
) {
    let attach = match ctx.opts.inline_prefetch {
        None => false,
        Some(PrefetchAttachPoint::Always) => true,
        Some(PrefetchAttachPoint::AfterDtlbMiss) => progress != Progress::L1Hit,
        Some(PrefetchAttachPoint::AfterStlbMiss) => progress == Progress::StlbMiss,
    };
    if attach {
        attach_prefetch_trigger(b, from, label, ctx.early_psc, ctx.pml4e);
    } else {
        let end = b.end();
        connect(b, from, label, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::to_feature_set;
    use counterpoint_haswell::full_counter_space;

    fn space() -> CounterSpace {
        full_counter_space()
    }

    fn all_features() -> FeatureSet {
        to_feature_set(&Feature::ALL)
    }

    fn no_features() -> FeatureSet {
        to_feature_set(&[])
    }

    fn sig_map(mudd: &MuDd) -> Vec<std::collections::BTreeMap<String, u32>> {
        let space = mudd.counters().clone();
        mudd.enumerate_paths()
            .unwrap()
            .iter()
            .map(|p| {
                (0..space.len())
                    .filter(|&i| p.signature().get(i) > 0)
                    .map(|i| (space.name(i).to_string(), p.signature().get(i)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn full_featured_load_mudd_builds_and_enumerates() {
        let mudd = demand_mudd(
            &space(),
            &DemandOptions::new(AccessType::Load, &all_features()),
        );
        let paths = mudd.enumerate_paths().unwrap();
        assert!(
            paths.len() >= 40 && paths.len() <= 200,
            "unexpected path count {}",
            paths.len()
        );
        // Every path increments the retirement counter exactly once.
        let ret_idx = space().index_of("load.ret").unwrap();
        for p in &paths {
            assert_eq!(p.signature().get(ret_idx), 1);
        }
    }

    #[test]
    fn featureless_model_ties_misses_to_walks() {
        let mudd = demand_mudd(
            &space(),
            &DemandOptions::new(AccessType::Load, &no_features()),
        );
        let s = space();
        let miss = s.index_of("load.ret_stlb_miss").unwrap();
        let walk = s.index_of("load.walk_done").unwrap();
        let pde = s.index_of("load.pde$_miss").unwrap();
        let causes = s.index_of("load.causes_walk").unwrap();
        for p in mudd.enumerate_paths().unwrap() {
            // Without merging or bypassing, every retired miss completes a walk.
            assert_eq!(p.signature().get(miss), p.signature().get(walk));
            // Without early PSC lookup, a PDE miss implies a walk.
            assert!(p.signature().get(pde) <= p.signature().get(causes));
        }
    }

    #[test]
    fn merging_adds_paths_with_misses_but_no_walk() {
        let with = demand_mudd(
            &space(),
            &DemandOptions::new(AccessType::Load, &to_feature_set(&[Feature::Merging])),
        );
        let s = space();
        let miss = s.index_of("load.ret_stlb_miss").unwrap();
        let done = s.index_of("load.walk_done").unwrap();
        let merged_path_exists = with
            .enumerate_paths()
            .unwrap()
            .iter()
            .any(|p| p.signature().get(miss) == 1 && p.signature().get(done) == 0);
        assert!(merged_path_exists);
    }

    #[test]
    fn early_psc_adds_pde_miss_without_walk() {
        let with = demand_mudd(
            &space(),
            &DemandOptions::new(
                AccessType::Load,
                &to_feature_set(&[Feature::EarlyPsc, Feature::Merging]),
            ),
        );
        let s = space();
        let pde = s.index_of("load.pde$_miss").unwrap();
        let causes = s.index_of("load.causes_walk").unwrap();
        assert!(with
            .enumerate_paths()
            .unwrap()
            .iter()
            .any(|p| p.signature().get(pde) == 1 && p.signature().get(causes) == 0));
    }

    #[test]
    fn bypass_adds_walks_without_references() {
        let with = demand_mudd(
            &space(),
            &DemandOptions::new(AccessType::Load, &to_feature_set(&[Feature::WalkBypass])),
        );
        let s = space();
        let done = s.index_of("load.walk_done").unwrap();
        let refs: Vec<usize> = (1..=4)
            .map(|l| s.index_of(&names::walk_ref(l)).unwrap())
            .collect();
        assert!(with.enumerate_paths().unwrap().iter().any(|p| {
            p.signature().get(done) == 1 && refs.iter().all(|&r| p.signature().get(r) == 0)
        }));
    }

    #[test]
    fn pml4e_cache_allows_single_reference_1g_walks() {
        let s = space();
        let count_min_1g_refs = |features: &FeatureSet| {
            let mudd = demand_mudd(&s, &DemandOptions::new(AccessType::Load, features));
            let done_1g = s.index_of("load.walk_done_1g").unwrap();
            let refs: Vec<usize> = (1..=4)
                .map(|l| s.index_of(&names::walk_ref(l)).unwrap())
                .collect();
            mudd.enumerate_paths()
                .unwrap()
                .iter()
                .filter(|p| p.signature().get(done_1g) == 1)
                .map(|p| refs.iter().map(|&r| p.signature().get(r)).sum::<u32>())
                .min()
                .unwrap()
        };
        assert_eq!(
            count_min_1g_refs(&to_feature_set(&[Feature::Pml4eCache])),
            1
        );
        assert_eq!(count_min_1g_refs(&to_feature_set(&[])), 2);
    }

    #[test]
    fn store_mudd_uses_store_counters() {
        let mudd = demand_mudd(
            &space(),
            &DemandOptions::new(AccessType::Store, &all_features()),
        );
        let s = space();
        let load_ret = s.index_of("load.ret").unwrap();
        let store_ret = s.index_of("store.ret").unwrap();
        for p in mudd.enumerate_paths().unwrap() {
            assert_eq!(p.signature().get(load_ret), 0);
            assert_eq!(p.signature().get(store_ret), 1);
        }
    }

    #[test]
    fn stlb_hit_equality_holds_on_every_path() {
        let mudd = demand_mudd(
            &space(),
            &DemandOptions::new(AccessType::Load, &all_features()),
        );
        let s = space();
        let hit = s.index_of("load.stlb_hit").unwrap();
        let hit4k = s.index_of("load.stlb_hit_4k").unwrap();
        let hit2m = s.index_of("load.stlb_hit_2m").unwrap();
        for p in mudd.enumerate_paths().unwrap() {
            assert_eq!(
                p.signature().get(hit),
                p.signature().get(hit4k) + p.signature().get(hit2m)
            );
        }
    }

    #[test]
    fn inline_prefetch_multiplies_paths_and_adds_prefetch_signatures() {
        let base = demand_mudd(
            &space(),
            &DemandOptions::new(AccessType::Load, &all_features()),
        );
        let mut opts = DemandOptions::new(AccessType::Load, &all_features());
        opts.inline_prefetch = Some(PrefetchAttachPoint::Always);
        let inlined = demand_mudd(&space(), &opts);
        assert!(inlined.num_paths().unwrap() > base.num_paths().unwrap());
        // There must now be a path where an L1-TLB-hitting load carries a prefetch
        // walk (ret=1 plus causes_walk=1 without a retired STLB miss).
        let s = space();
        let ret = s.index_of("load.ret").unwrap();
        let miss = s.index_of("load.ret_stlb_miss").unwrap();
        let causes = s.index_of("load.causes_walk").unwrap();
        assert!(inlined.enumerate_paths().unwrap().iter().any(|p| {
            p.signature().get(ret) == 1
                && p.signature().get(miss) == 0
                && p.signature().get(causes) == 1
        }));
    }

    #[test]
    fn stlb_miss_attach_point_requires_a_miss() {
        let mut opts = DemandOptions::new(AccessType::Load, &all_features());
        opts.inline_prefetch = Some(PrefetchAttachPoint::AfterStlbMiss);
        let mudd = demand_mudd(&space(), &opts);
        let s = space();
        let miss = s.index_of("load.ret_stlb_miss").unwrap();
        let causes = s.index_of("load.causes_walk").unwrap();
        // No path may have a prefetch walk without also having a retired STLB miss.
        for p in mudd.enumerate_paths().unwrap() {
            if p.signature().get(causes) > 0 {
                assert!(p.signature().get(miss) > 0);
            }
        }
    }

    #[test]
    fn signatures_are_within_expected_bounds() {
        // Sanity check across every path of the feature-complete model: no counter
        // is incremented more than 5 times by a single μop.
        for sig in sig_map(&demand_mudd(
            &space(),
            &DemandOptions::new(AccessType::Load, &all_features()),
        )) {
            for (name, count) in sig {
                assert!(count <= 5, "{name} incremented {count} times on one path");
            }
        }
    }
}
