//! Grammar-driven enumeration of candidate model families.
//!
//! The hand-written families (`m0`–`m11`, `t0`–`t17`, `a0`–`a3`) cover the
//! paper's tables, but they are twelve-plus-some fixed points in a much larger
//! structural space: any feature subset may be combined with any prefetch
//! trigger condition and any set of abort points.  This module enumerates that
//! space with the [`counterpoint_mudd::grammar`] term grammar — a recursive
//! feature-list production, a trigger-choice production and an abort-list
//! production, expanded by metric-bounded `plug` iteration — and collapses the
//! raw candidates to a canonical [`ModelFamily`]:
//!
//! 1. **Interpretation**: each closed term becomes a [`ModelSpec`] (feature
//!    subset, optional trigger condition, abort-point set).
//! 2. **Canonicalization**: features and abort points are sorted and deduped;
//!    a trigger condition is dropped unless the spec prefetches at all; abort
//!    points are dropped when walk bypassing subsumes them.  Symmetric terms
//!    (`(a b)` vs `(b a)`, duplicated atoms) therefore collapse to one spec,
//!    and the surviving specs are ordered by their canonical signature — the
//!    result is a pure function of the grammar's *language*, not of the order
//!    its productions were written in.
//! 3. **Structural dedup**: each spec's model cone is built (with the
//!    fallible, path-bounded builders — a candidate whose μDD exceeds the
//!    path budget is skipped and counted, never a panic) and specs whose
//!    cones have identical generator multisets are collapsed.
//!
//! The canonical members are grouped by *assumption signature* (trigger +
//! abort points); each [`FamilyGroup`] spans a feature sub-lattice and plugs
//! directly into a [`LatticeSearch`](counterpoint_core::LatticeSearch) via
//! [`FamilyGroup::generator`], with cross-group certificate sharing keyed by
//! the group signature (see `counterpoint_core::CertificatePool`).

use crate::aborts::AbortPoint;
use crate::family::{
    assemble_cone, cached_demand_mudd, cached_prefetch_mudd, trigger_specs_table5,
};
use crate::features::{has, to_feature_set, Feature};
use crate::prefetch::TriggerSpec;
use counterpoint_core::{FeatureSet, ModelCone};
use counterpoint_haswell::full_counter_space;
use counterpoint_haswell::hec::AccessType;
use counterpoint_mudd::grammar::{Term, Workload};
use counterpoint_mudd::{MuDd, MuDdError};
use counterpoint_telemetry as telemetry;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The atom spelled by the trigger production when a model has no concrete
/// trigger condition (abstract prefetching, or no prefetching at all).
const NO_TRIGGER: &str = "none";

/// The term grammar a model family is enumerated from: which features the
/// feature-list production ranges over, which trigger conditions the trigger
/// production offers, and which abort points the abort-list production draws
/// from.  The *order* of each list only affects raw-candidate order — the
/// canonicalization pass makes the enumerated family order-independent.
#[derive(Clone, Debug)]
pub struct ModelGrammar {
    features: Vec<Feature>,
    triggers: Vec<(String, TriggerSpec)>,
    abort_points: Vec<AbortPoint>,
}

impl ModelGrammar {
    /// The full case-study grammar: all five Table-4 features, the eighteen
    /// Table-5 trigger conditions (plus "no trigger"), and all four Table-7
    /// abort points.
    pub fn case_study() -> ModelGrammar {
        ModelGrammar {
            features: Feature::ALL.to_vec(),
            triggers: trigger_specs_table5(),
            abort_points: AbortPoint::ALL.to_vec(),
        }
    }

    /// Replaces the feature production's alternatives (duplicates are kept —
    /// canonicalization absorbs them).
    pub fn with_features(mut self, features: Vec<Feature>) -> ModelGrammar {
        self.features = features;
        self
    }

    /// Replaces the trigger production's alternatives.
    pub fn with_triggers(mut self, triggers: Vec<(String, TriggerSpec)>) -> ModelGrammar {
        self.triggers = triggers;
        self
    }

    /// Replaces the abort-list production's alternatives.
    pub fn with_abort_points(mut self, points: Vec<AbortPoint>) -> ModelGrammar {
        self.abort_points = points;
        self
    }
}

/// Metric bounds on the enumeration.
#[derive(Clone, Copy, Debug)]
pub struct EnumOptions {
    /// Rounds of the recursive list productions — bounds feature-list and
    /// abort-list length.
    pub max_depth: usize,
    /// Cap on canonical family members (applied in canonical signature
    /// order, before cones are built).
    pub max_models: usize,
    /// Specs with more features are dropped during interpretation.
    pub max_features: usize,
    /// μpath budget per candidate μDD; a candidate exceeding it is skipped
    /// and counted in [`ModelFamily::skipped_path_limit`].  `None` keeps the
    /// diagrams' default limit.
    pub max_paths: Option<usize>,
}

impl Default for EnumOptions {
    fn default() -> EnumOptions {
        EnumOptions {
            max_depth: 2,
            max_models: 256,
            max_features: Feature::ALL.len(),
            max_paths: None,
        }
    }
}

/// A canonical model specification: the interpretation of one closed grammar
/// term, after canonicalization.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ModelSpec {
    /// Features, sorted in Table-3 column order, deduplicated.
    pub features: Vec<Feature>,
    /// The concrete prefetch trigger condition (name and spec), or `None`
    /// for abstract prefetching.  Always `None` when the spec does not
    /// include [`Feature::TlbPrefetch`].
    pub trigger: Option<(String, TriggerSpec)>,
    /// Abort points, sorted in Table-7 column order, deduplicated.  Always
    /// empty when the spec includes [`Feature::WalkBypass`] (bypassing
    /// subsumes aborting as an explanation for reference-free walks).
    pub aborts: Vec<AbortPoint>,
}

impl ModelSpec {
    /// Canonicalizes raw parts into a spec: sorts and dedups the features
    /// and abort points, drops a trigger without prefetching, drops aborts
    /// under walk bypassing.
    pub fn new(
        features: &[Feature],
        trigger: Option<(String, TriggerSpec)>,
        aborts: &[AbortPoint],
    ) -> ModelSpec {
        let features: Vec<Feature> = features
            .iter()
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let prefetches = features.contains(&Feature::TlbPrefetch);
        let bypasses = features.contains(&Feature::WalkBypass);
        ModelSpec {
            trigger: if prefetches { trigger } else { None },
            aborts: if bypasses {
                Vec::new()
            } else {
                aborts
                    .iter()
                    .copied()
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect()
            },
            features,
        }
    }

    /// The canonical signature: equal specs — and only equal specs — render
    /// equally, and the rendering is stable across grammar input orderings.
    pub fn signature(&self) -> String {
        format!(
            "f:{}|{}",
            self.feature_signature(),
            self.assumption_signature()
        )
    }

    /// The feature half of the signature (sorted feature names).
    pub fn feature_signature(&self) -> String {
        self.features
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// The non-feature half of the signature: trigger and abort assumptions.
    /// Specs sharing it differ only in their feature sets, and form one
    /// [`FamilyGroup`].
    pub fn assumption_signature(&self) -> String {
        let trigger = self
            .trigger
            .as_ref()
            .map_or(NO_TRIGGER, |(name, _)| name.as_str());
        let aborts = self
            .aborts
            .iter()
            .map(|a| a.label())
            .collect::<Vec<_>>()
            .join("+");
        format!("t:{trigger}|a:{aborts}")
    }

    /// The spec's features as a [`FeatureSet`].
    pub fn feature_set(&self) -> FeatureSet {
        to_feature_set(&self.features)
    }
}

/// One canonical member of an enumerated family.
#[derive(Clone, Debug, Serialize)]
pub struct EnumeratedModel {
    /// Stable name in canonical order: `e0`, `e1`, ...
    pub name: String,
    /// The member's canonical specification.
    pub spec: ModelSpec,
}

/// The members of one assumption group: specs sharing a trigger condition and
/// abort-point set, differing only in their feature subsets.  A group spans a
/// feature sub-lattice, so it plugs directly into a lattice search.
#[derive(Clone, Debug, Serialize)]
pub struct FamilyGroup {
    /// The shared [`ModelSpec::assumption_signature`].
    pub signature: String,
    /// The shared trigger condition.
    pub trigger: Option<(String, TriggerSpec)>,
    /// The shared abort points.
    pub aborts: Vec<AbortPoint>,
    /// Member names, in canonical order.
    pub members: Vec<String>,
    /// Union of the members' features, sorted — the group's search universe.
    pub universe: Vec<Feature>,
}

impl FamilyGroup {
    /// The group's search universe as feature-name strings.
    pub fn universe_names(&self) -> Vec<String> {
        self.universe.iter().map(|f| f.name().to_string()).collect()
    }

    /// The group's maximal feature set (the search's starting point).
    pub fn initial(&self) -> FeatureSet {
        to_feature_set(&self.universe)
    }

    /// A lattice-search generator under this group's assumptions: maps a
    /// feature set to the corresponding model cone.  Pure in the feature set
    /// (the trigger is dropped without prefetching, aborts under bypassing —
    /// the same canonicalization the enumeration applied), so search graphs
    /// built from it are deterministic.
    pub fn generator(&self) -> impl Fn(&FeatureSet) -> ModelCone + Sync + 'static {
        let trigger = self.trigger.clone();
        let aborts = self.aborts.clone();
        let signature = self.signature.clone();
        move |features: &FeatureSet| {
            let features: Vec<Feature> = features
                .iter()
                .filter_map(|name| Feature::from_name(name))
                .collect();
            let spec = ModelSpec::new(&features, trigger.clone(), &aborts);
            let name = format!("{}|f:{}", signature, spec.feature_signature());
            build_enumerated_model(&name, &spec)
        }
    }
}

/// A canonical, deterministically ordered family of enumerated models, with
/// the enumeration's accounting.
#[derive(Clone, Debug, Serialize)]
pub struct ModelFamily {
    /// Canonical members, ordered by [`ModelSpec::signature`].
    pub members: Vec<EnumeratedModel>,
    /// Members grouped by assumption signature, groups in signature order.
    pub groups: Vec<FamilyGroup>,
    /// Closed terms the grammar produced before canonicalization.
    pub raw_candidates: usize,
    /// Distinct canonical specs (before the member cap and structural dedup).
    pub canonical_candidates: usize,
    /// Candidates skipped because their μDDs exceeded the path budget.
    pub skipped_path_limit: usize,
    /// Candidates dropped because an earlier member's cone had the same
    /// generator multiset.
    pub structural_duplicates: usize,
}

impl ModelFamily {
    /// Number of canonical members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no candidate survived.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Builds the model cone of an enumerated spec, or reports the first μDD
/// error (path explosion under `max_paths`) instead of aborting.
///
/// # Errors
///
/// Returns the first [`MuDdError`] hit while enumerating the model's μpaths.
pub fn try_build_enumerated_model(
    name: &str,
    spec: &ModelSpec,
    max_paths: Option<usize>,
) -> Result<ModelCone, MuDdError> {
    let space = full_counter_space();
    let features = spec.feature_set();
    let mut load_opts = crate::demand::DemandOptions::new(AccessType::Load, &features);
    let mut store_opts = crate::demand::DemandOptions::new(AccessType::Store, &features);
    let mut standalone_prefetch = false;
    if has(&features, Feature::TlbPrefetch) {
        match &spec.trigger {
            // Abstract prefetching (the initial-search form) and speculative
            // triggers both use the stand-alone prefetch μop.
            None => standalone_prefetch = true,
            Some((_, t)) if t.speculative => standalone_prefetch = true,
            Some((_, t)) => {
                let attach = if t.stlb_miss {
                    crate::demand::PrefetchAttachPoint::AfterStlbMiss
                } else if t.dtlb_miss {
                    crate::demand::PrefetchAttachPoint::AfterDtlbMiss
                } else {
                    crate::demand::PrefetchAttachPoint::Always
                };
                if t.load {
                    load_opts.inline_prefetch = Some(attach);
                }
                if t.store {
                    store_opts.inline_prefetch = Some(attach);
                }
            }
        }
    }
    let load = cached_demand_mudd(&space, &load_opts);
    let store = cached_demand_mudd(&space, &store_opts);
    let mut mudds: Vec<Arc<MuDd>> = vec![load, store];
    if standalone_prefetch {
        mudds.push(cached_prefetch_mudd(
            &space,
            has(&features, Feature::EarlyPsc),
            has(&features, Feature::Pml4eCache),
        ));
    }
    if let Some(aborted) = crate::aborts::abort_request_mudd(&space, &spec.aborts) {
        mudds.push(Arc::new(aborted));
    }
    assemble_cone(name, &mudds, max_paths)
}

/// Infallible wrapper over [`try_build_enumerated_model`] for specs already
/// vetted by [`enumerate`] (which skips over-budget candidates).
pub fn build_enumerated_model(name: &str, spec: &ModelSpec) -> ModelCone {
    try_build_enumerated_model(name, spec, None)
        .expect("enumerated models were vetted against the path limit")
}

/// The recursive list production `xs ::= () | (x) | (x xs)` over the given
/// atoms, closed by `rounds` of plug iteration: every list of up to `rounds`
/// atoms (with repetition — canonicalization dedups), plus the empty list.
fn list_language<S: AsRef<str>>(atoms: &[S], rounds: usize) -> Workload {
    let seed = Workload::new(vec![Term::list(Vec::new()), Term::hole("xs")]);
    let mut step = Vec::with_capacity(atoms.len() * 2);
    for atom in atoms {
        step.push(Term::list(vec![Term::atom(atom.as_ref())]));
    }
    for atom in atoms {
        step.push(Term::list(vec![
            Term::atom(atom.as_ref()),
            Term::hole("xs"),
        ]));
    }
    seed.plug_iterate("xs", &Workload::new(step), rounds)
}

/// Flattens a nested list term into its atom names, left to right.
fn term_atoms(term: &Term) -> Vec<String> {
    term.atoms().into_iter().map(str::to_string).collect()
}

/// Enumerates the grammar's closed terms under the given bounds and collapses
/// them to a canonical [`ModelFamily`] (see the module docs for the
/// pipeline).  Deterministic, and independent of the order the grammar's
/// productions list their alternatives.
pub fn enumerate(grammar: &ModelGrammar, options: &EnumOptions) -> ModelFamily {
    // Productions, closed by bounded plug iteration.
    let feature_names: Vec<&str> = grammar.features.iter().map(|f| f.name()).collect();
    let feature_lists = list_language(&feature_names, options.max_depth);
    let mut trigger_atoms: Vec<String> = vec![NO_TRIGGER.to_string()];
    trigger_atoms.extend(grammar.triggers.iter().map(|(name, _)| name.clone()));
    let triggers = Workload::from_atoms(&trigger_atoms);
    let abort_labels: Vec<&str> = grammar.abort_points.iter().map(|p| p.label()).collect();
    let abort_lists = list_language(&abort_labels, options.max_depth);

    // The raw candidate space: features × trigger × aborts.
    let raw = feature_lists.cross(&triggers).cross(&abort_lists);
    let raw_candidates = raw.len();

    // Interpretation + canonicalization: raw terms collapse into a
    // signature-keyed map, so the surviving specs and their order are a pure
    // function of the grammar's language.
    let trigger_table: BTreeMap<&str, &TriggerSpec> = grammar
        .triggers
        .iter()
        .map(|(name, spec)| (name.as_str(), spec))
        .collect();
    let mut canonical: BTreeMap<String, ModelSpec> = BTreeMap::new();
    for term in raw.terms() {
        let Term::List(fs_trigger_aborts) = term else {
            continue;
        };
        let [fs_trigger, abort_term] = fs_trigger_aborts.as_slice() else {
            continue;
        };
        let Term::List(pair) = fs_trigger else {
            continue;
        };
        let [feature_term, trigger_term] = pair.as_slice() else {
            continue;
        };
        let features: Vec<Feature> = term_atoms(feature_term)
            .iter()
            .filter_map(|name| Feature::from_name(name))
            .collect();
        let trigger = match trigger_term {
            Term::Atom(name) if name != NO_TRIGGER => trigger_table
                .get(name.as_str())
                .map(|spec| (name.clone(), **spec)),
            _ => None,
        };
        let aborts: Vec<AbortPoint> = term_atoms(abort_term)
            .iter()
            .filter_map(|label| {
                AbortPoint::ALL
                    .iter()
                    .copied()
                    .find(|p| p.label() == *label)
            })
            .collect();
        let spec = ModelSpec::new(&features, trigger, &aborts);
        if spec.features.len() > options.max_features {
            continue;
        }
        canonical.entry(spec.signature()).or_insert(spec);
    }
    let canonical_candidates = canonical.len();

    // Member cap, then the structural pass: build each cone (path-bounded,
    // fallible) and drop generator-multiset duplicates.
    let mut members: Vec<EnumeratedModel> = Vec::new();
    let mut skipped_path_limit = 0usize;
    let mut structural_duplicates = 0usize;
    let mut seen_structures: BTreeSet<Vec<Vec<u32>>> = BTreeSet::new();
    for spec in canonical.into_values().take(options.max_models) {
        let name = format!("e{}", members.len());
        match try_build_enumerated_model(&name, &spec, options.max_paths) {
            Ok(cone) => {
                let structure: Vec<Vec<u32>> = cone
                    .signatures()
                    .iter()
                    .map(|s| s.counts().to_vec())
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                if !seen_structures.insert(structure) {
                    structural_duplicates += 1;
                    continue;
                }
                members.push(EnumeratedModel { name, spec });
            }
            Err(_) => {
                // The only error our own builders produce is PathExplosion;
                // either way the candidate is skipped, never a panic.
                skipped_path_limit += 1;
                telemetry::add(telemetry::Metric::PathLimitModelSkips, 1);
            }
        }
    }

    // Assumption groups, in signature order, members in canonical order.
    let mut grouped: BTreeMap<String, FamilyGroup> = BTreeMap::new();
    for member in &members {
        let group = grouped
            .entry(member.spec.assumption_signature())
            .or_insert_with(|| FamilyGroup {
                signature: member.spec.assumption_signature(),
                trigger: member.spec.trigger.clone(),
                aborts: member.spec.aborts.clone(),
                members: Vec::new(),
                universe: Vec::new(),
            });
        group.members.push(member.name.clone());
        let mut universe: BTreeSet<Feature> = group.universe.iter().copied().collect();
        universe.extend(member.spec.features.iter().copied());
        group.universe = universe.into_iter().collect();
    }

    ModelFamily {
        members,
        groups: grouped.into_values().collect(),
        raw_candidates,
        canonical_candidates,
        skipped_path_limit,
        structural_duplicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small grammar (two features, one trigger, one abort point) keeps the
    /// structural pass cheap in tests.
    fn small_grammar() -> ModelGrammar {
        ModelGrammar::case_study()
            .with_features(vec![Feature::TlbPrefetch, Feature::WalkBypass])
            .with_triggers(vec![("t0".to_string(), TriggerSpec::t0())])
            .with_abort_points(vec![AbortPoint::DuringWalk])
    }

    #[test]
    fn case_study_grammar_scales_past_the_hand_written_tables() {
        let family = enumerate(
            &ModelGrammar::case_study(),
            &EnumOptions {
                max_models: 0, // accounting only: skip the structural pass
                ..EnumOptions::default()
            },
        );
        assert!(
            family.raw_candidates >= 1000,
            "depth-2 enumeration must produce >= 1000 raw candidates, got {}",
            family.raw_candidates
        );
        assert!(
            family.canonical_candidates >= 4 * 12,
            "canonical specs must scale at least 4x past m0-m11, got {}",
            family.canonical_candidates
        );
        assert!(family.canonical_candidates < family.raw_candidates);
    }

    #[test]
    fn canonicalization_is_order_independent() {
        let options = EnumOptions {
            max_models: 64,
            ..EnumOptions::default()
        };
        let forward = enumerate(&small_grammar(), &options);
        let reversed = enumerate(
            &small_grammar().with_features(vec![Feature::WalkBypass, Feature::TlbPrefetch]),
            &options,
        );
        assert_eq!(forward.canonical_candidates, reversed.canonical_candidates);
        let sigs = |family: &ModelFamily| -> Vec<String> {
            family.members.iter().map(|m| m.spec.signature()).collect()
        };
        assert_eq!(sigs(&forward), sigs(&reversed));
        // Duplicated production alternatives collapse too.
        let doubled = enumerate(
            &small_grammar().with_features(vec![
                Feature::TlbPrefetch,
                Feature::TlbPrefetch,
                Feature::WalkBypass,
            ]),
            &options,
        );
        assert_eq!(sigs(&forward), sigs(&doubled));
    }

    #[test]
    fn canonicalization_normalizes_triggers_and_aborts() {
        // A trigger without prefetching is dropped; aborts under bypassing
        // are dropped.
        let spec = ModelSpec::new(
            &[Feature::Merging],
            Some(("t0".to_string(), TriggerSpec::t0())),
            &[AbortPoint::DuringWalk],
        );
        assert!(spec.trigger.is_none());
        assert_eq!(spec.aborts, vec![AbortPoint::DuringWalk]);
        let spec = ModelSpec::new(
            &[Feature::TlbPrefetch, Feature::WalkBypass],
            Some(("t0".to_string(), TriggerSpec::t0())),
            &[
                AbortPoint::AfterPsc,
                AbortPoint::DuringWalk,
                AbortPoint::AfterPsc,
            ],
        );
        assert!(spec.trigger.is_some());
        assert!(spec.aborts.is_empty());
        // Sorting and dedup inside each dimension.
        let spec = ModelSpec::new(
            &[Feature::WalkBypass, Feature::EarlyPsc, Feature::EarlyPsc],
            None,
            &[],
        );
        assert_eq!(spec.features, vec![Feature::EarlyPsc, Feature::WalkBypass]);
    }

    #[test]
    fn path_budget_skips_are_counted_not_fatal() {
        let family = enumerate(
            &small_grammar(),
            &EnumOptions {
                max_paths: Some(1),
                ..EnumOptions::default()
            },
        );
        assert!(family.is_empty(), "a 1-path budget defeats every candidate");
        assert!(family.skipped_path_limit > 0);
        assert_eq!(family.len(), 0);
    }

    #[test]
    fn members_build_and_group_by_assumptions() {
        let family = enumerate(&small_grammar(), &EnumOptions::default());
        assert!(!family.is_empty());
        assert!(!family.groups.is_empty());
        // Every member belongs to exactly one group, and the group's
        // universe covers its members' features.
        let mut seen = 0usize;
        for group in &family.groups {
            seen += group.members.len();
            for name in &group.members {
                let member = family
                    .members
                    .iter()
                    .find(|m| &m.name == name)
                    .expect("group members name family members");
                assert_eq!(member.spec.assumption_signature(), group.signature);
                assert!(member
                    .spec
                    .features
                    .iter()
                    .all(|f| group.universe.contains(f)));
            }
            // The generator builds a cone for the maximal member.
            let cone = group.generator()(&group.initial());
            assert_eq!(cone.dimension(), full_counter_space().len());
        }
        assert_eq!(seen, family.len());
    }

    #[test]
    fn enumerated_specs_match_hand_written_builders() {
        use crate::family::{build_feature_model, feature_sets_table3};
        // The spec with m4's features, no trigger, no aborts must produce the
        // same generator multiset as the hand-written m4.
        let specs = feature_sets_table3();
        let m4_features: Vec<Feature> = specs[4]
            .1
            .iter()
            .filter_map(|n| Feature::from_name(n))
            .collect();
        let spec = ModelSpec::new(&m4_features, None, &[]);
        let enumerated = build_enumerated_model("e-m4", &spec);
        let hand_written = build_feature_model("m4", &specs[4].1);
        let multiset = |cone: &ModelCone| -> BTreeSet<Vec<u32>> {
            cone.signatures()
                .iter()
                .map(|s| s.counts().to_vec())
                .collect()
        };
        assert_eq!(multiset(&enumerated), multiset(&hand_written));
    }
}
