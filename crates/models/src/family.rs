//! The named model families of the case study (Tables 3, 5 and 7) and their cone
//! builders.

use crate::aborts::{abort_request_mudd, AbortPoint};
use crate::demand::{demand_mudd, DemandOptions, PrefetchAttachPoint};
use crate::features::{has, to_feature_set, Feature};
use crate::prefetch::{standalone_prefetch_mudd, TriggerSpec};
use counterpoint_core::{FeatureSet, ModelCone};
use counterpoint_haswell::full_counter_space;
use counterpoint_haswell::hec::AccessType;
use counterpoint_mudd::{CounterSpace, MuDd, MuDdError};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Assembles a cone from μDDs, optionally re-bounding every diagram's path
/// limit first (the enumeration layer's `max_paths` metric).  All the family
/// builders funnel through here so the fallible and infallible entry points
/// share one code path.
pub(crate) fn assemble_cone(
    name: &str,
    mudds: &[Arc<MuDd>],
    max_paths: Option<usize>,
) -> Result<ModelCone, MuDdError> {
    match max_paths {
        Some(limit) => {
            let bounded: Vec<MuDd> = mudds.iter().map(|m| m.with_max_paths(limit)).collect();
            let refs: Vec<&MuDd> = bounded.iter().collect();
            ModelCone::from_mudds(name, &refs)
        }
        None => {
            let refs: Vec<&MuDd> = mudds.iter().map(Arc::as_ref).collect();
            ModelCone::from_mudds(name, &refs)
        }
    }
}

/// Memoised demand μDD construction over the full Haswell counter space.
///
/// μDDs are immutable and `demand_mudd` is a pure function of its options, but
/// the guided lattice search re-derives the same handful of diagram variants
/// hundreds of times per run, and diagram construction (builder validation,
/// node naming) dominates model-cone assembly.  The cache key captures every
/// input `demand_mudd` sees except the counter space, which is always
/// [`full_counter_space`] for the builders in this module (checked in debug
/// builds).
pub(crate) fn cached_demand_mudd(space: &CounterSpace, opts: &DemandOptions) -> Arc<MuDd> {
    static CACHE: OnceLock<Mutex<BTreeMap<String, Arc<MuDd>>>> = OnceLock::new();
    let mut key = format!("{:?}|{:?}", opts.access, opts.inline_prefetch);
    for feature in &opts.features {
        key.push('\x1f');
        key.push_str(feature);
    }
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(mudd) = cache.lock().unwrap().get(&key) {
        debug_assert_eq!(mudd.counters(), space, "cache is per-counter-space");
        return Arc::clone(mudd);
    }
    let mudd = Arc::new(demand_mudd(space, opts));
    Arc::clone(cache.lock().unwrap().entry(key).or_insert(mudd))
}

/// Cache storage of [`cached_prefetch_mudd`], keyed by its two flags.
type PrefetchMuddCache = OnceLock<Mutex<BTreeMap<(bool, bool), Arc<MuDd>>>>;

/// Memoised stand-alone prefetch μDD (see [`cached_demand_mudd`]).
pub(crate) fn cached_prefetch_mudd(
    space: &CounterSpace,
    early_psc: bool,
    pml4e: bool,
) -> Arc<MuDd> {
    static CACHE: PrefetchMuddCache = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(mudd) = cache.lock().unwrap().get(&(early_psc, pml4e)) {
        debug_assert_eq!(mudd.counters(), space, "cache is per-counter-space");
        return Arc::clone(mudd);
    }
    let mudd = Arc::new(standalone_prefetch_mudd(space, early_psc, pml4e));
    Arc::clone(
        cache
            .lock()
            .unwrap()
            .entry((early_psc, pml4e))
            .or_insert(mudd),
    )
}

/// Entry cap for the feature-model cone cache: generous for the 2⁵ subsets of
/// [`Feature::ALL`] the searches explore, while bounding memory if a caller
/// sweeps arbitrary feature names.
const MODEL_CACHE_CAP: usize = 64;

/// Builds the model cone of an initial-search model identified by its feature set
/// (the `m`-family of Table 3, and the generator used by the guided search).
///
/// Cone assembly is a pure function of `(name, features)`, and the guided
/// search re-derives the same feature subsets on every trajectory, so the
/// finished cones are memoised alongside the μDD cache (bounded to
/// `MODEL_CACHE_CAP` first-come entries).
pub fn build_feature_model(name: &str, features: &FeatureSet) -> ModelCone {
    static CACHE: OnceLock<Mutex<BTreeMap<String, ModelCone>>> = OnceLock::new();
    let mut key = name.to_string();
    for feature in features {
        key.push('\x1f');
        key.push_str(feature);
    }
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(cone) = cache.lock().unwrap().get(&key) {
        return cone.clone();
    }
    let cone = build_feature_model_uncached(name, features);
    let mut cache = cache.lock().unwrap();
    if cache.len() < MODEL_CACHE_CAP {
        cache.entry(key).or_insert_with(|| cone.clone());
    }
    cone
}

fn build_feature_model_uncached(name: &str, features: &FeatureSet) -> ModelCone {
    try_build_feature_model(name, features).expect("case-study models stay within the path limit")
}

/// Fallible variant of [`build_feature_model`]: a μDD whose enumeration
/// exceeds the path limit surfaces as [`MuDdError::PathExplosion`] instead of
/// aborting the process.  Enumerated model generators use this (optionally
/// via a tighter bound, see [`crate::enumo`]) to *skip* oversized candidates.
///
/// # Errors
///
/// Returns the first [`MuDdError`] hit while enumerating the model's μpaths.
pub fn try_build_feature_model(name: &str, features: &FeatureSet) -> Result<ModelCone, MuDdError> {
    try_build_feature_model_bounded(name, features, None)
}

pub(crate) fn try_build_feature_model_bounded(
    name: &str,
    features: &FeatureSet,
    max_paths: Option<usize>,
) -> Result<ModelCone, MuDdError> {
    let space = full_counter_space();
    let load = cached_demand_mudd(&space, &DemandOptions::new(AccessType::Load, features));
    let store = cached_demand_mudd(&space, &DemandOptions::new(AccessType::Store, features));
    let mut mudds: Vec<Arc<MuDd>> = vec![load, store];
    if has(features, Feature::TlbPrefetch) {
        mudds.push(cached_prefetch_mudd(
            &space,
            has(features, Feature::EarlyPsc),
            has(features, Feature::Pml4eCache),
        ));
    }
    assemble_cone(name, &mudds, max_paths)
}

/// The twelve feature sets of the initial model search (paper, Table 3).
pub fn feature_sets_table3() -> Vec<(String, FeatureSet)> {
    use Feature::*;
    let rows: Vec<(&str, Vec<Feature>)> = vec![
        ("m0", vec![]),
        ("m1", vec![TlbPrefetch]),
        ("m2", vec![TlbPrefetch, EarlyPsc, Merging]),
        ("m3", vec![TlbPrefetch, EarlyPsc, Merging, Pml4eCache]),
        (
            "m4",
            vec![TlbPrefetch, EarlyPsc, Merging, Pml4eCache, WalkBypass],
        ),
        ("m5", vec![EarlyPsc, Merging, Pml4eCache, WalkBypass]),
        ("m6", vec![TlbPrefetch, Merging, Pml4eCache, WalkBypass]),
        ("m7", vec![TlbPrefetch, EarlyPsc, Pml4eCache, WalkBypass]),
        ("m8", vec![TlbPrefetch, EarlyPsc, Merging, WalkBypass]),
        ("m9", vec![EarlyPsc, Merging, WalkBypass]),
        ("m10", vec![TlbPrefetch, Merging, WalkBypass]),
        ("m11", vec![TlbPrefetch, EarlyPsc, WalkBypass]),
    ];
    rows.into_iter()
        .map(|(name, features)| (name.to_string(), to_feature_set(&features)))
        .collect()
}

/// Builds the model cone of a prefetch-trigger model (the `t`-family of Table 5).
///
/// Every trigger model is a derivative of the feature-complete model `m4`; only the
/// prefetcher's trigger conditions vary.  `Spec ✓` models keep the stand-alone
/// prefetch μop; `Spec ✗` models fold the prefetch request into the retiring load
/// and/or store μop paths at the point dictated by the miss requirement.
pub fn build_trigger_model(name: &str, spec: &TriggerSpec) -> ModelCone {
    try_build_trigger_model(name, spec).expect("trigger models stay within the path limit")
}

/// Fallible variant of [`build_trigger_model`] (see
/// [`try_build_feature_model`] for the error contract).
///
/// # Errors
///
/// Returns the first [`MuDdError`] hit while enumerating the model's μpaths.
pub fn try_build_trigger_model(name: &str, spec: &TriggerSpec) -> Result<ModelCone, MuDdError> {
    try_build_trigger_model_bounded(name, spec, None)
}

pub(crate) fn try_build_trigger_model_bounded(
    name: &str,
    spec: &TriggerSpec,
    max_paths: Option<usize>,
) -> Result<ModelCone, MuDdError> {
    let space = full_counter_space();
    let features = to_feature_set(&Feature::ALL);
    let attach_point = if spec.stlb_miss {
        PrefetchAttachPoint::AfterStlbMiss
    } else if spec.dtlb_miss {
        PrefetchAttachPoint::AfterDtlbMiss
    } else {
        PrefetchAttachPoint::Always
    };

    let mut load_opts = DemandOptions::new(AccessType::Load, &features);
    let mut store_opts = DemandOptions::new(AccessType::Store, &features);
    if !spec.speculative {
        if spec.load {
            load_opts.inline_prefetch = Some(attach_point);
        }
        if spec.store {
            store_opts.inline_prefetch = Some(attach_point);
        }
    }

    let load = cached_demand_mudd(&space, &load_opts);
    let store = cached_demand_mudd(&space, &store_opts);
    let mut mudds: Vec<Arc<MuDd>> = vec![load, store];
    if spec.speculative {
        mudds.push(cached_prefetch_mudd(&space, true, true));
    }
    assemble_cone(name, &mudds, max_paths)
}

/// The eighteen trigger-condition models of Table 5.
pub fn trigger_specs_table5() -> Vec<(String, TriggerSpec)> {
    let rows: Vec<(bool, bool, bool, bool, bool)> = vec![
        (true, true, false, false, false),  // t0
        (true, true, false, true, false),   // t1
        (true, true, false, false, true),   // t2
        (true, false, true, false, false),  // t3
        (true, false, true, true, false),   // t4
        (true, false, true, false, true),   // t5
        (true, true, true, false, false),   // t6
        (true, true, true, true, false),    // t7
        (true, true, true, false, true),    // t8
        (false, true, false, false, false), // t9
        (false, true, false, true, false),  // t10
        (false, true, false, false, true),  // t11
        (false, false, true, false, false), // t12
        (false, false, true, true, false),  // t13
        (false, false, true, false, true),  // t14
        (false, true, true, false, false),  // t15
        (false, true, true, true, false),   // t16
        (false, true, true, false, true),   // t17
    ];
    rows.into_iter()
        .enumerate()
        .map(|(i, (speculative, load, store, dtlb_miss, stlb_miss))| {
            (
                format!("t{i}"),
                TriggerSpec {
                    speculative,
                    load,
                    store,
                    dtlb_miss,
                    stlb_miss,
                },
            )
        })
        .collect()
}

/// Builds the model cone of an abort-point model (the `a`-family of Table 7):
/// the feature-complete trigger model `t0` with walk bypassing removed and
/// translation-request aborts added at the given pipeline points.
pub fn build_abort_model(name: &str, points: &[AbortPoint]) -> ModelCone {
    try_build_abort_model(name, points).expect("abort models stay within the path limit")
}

/// Fallible variant of [`build_abort_model`] (see
/// [`try_build_feature_model`] for the error contract).
///
/// # Errors
///
/// Returns the first [`MuDdError`] hit while enumerating the model's μpaths.
pub fn try_build_abort_model(name: &str, points: &[AbortPoint]) -> Result<ModelCone, MuDdError> {
    try_build_abort_model_bounded(name, points, None)
}

pub(crate) fn try_build_abort_model_bounded(
    name: &str,
    points: &[AbortPoint],
    max_paths: Option<usize>,
) -> Result<ModelCone, MuDdError> {
    let space = full_counter_space();
    let features = to_feature_set(&[
        Feature::TlbPrefetch,
        Feature::EarlyPsc,
        Feature::Merging,
        Feature::Pml4eCache,
    ]);
    let load = cached_demand_mudd(&space, &DemandOptions::new(AccessType::Load, &features));
    let store = cached_demand_mudd(&space, &DemandOptions::new(AccessType::Store, &features));
    let prefetch = cached_prefetch_mudd(&space, true, true);
    let mut mudds: Vec<Arc<MuDd>> = vec![load, store, prefetch];
    if let Some(aborts) = abort_request_mudd(&space, points) {
        mudds.push(Arc::new(aborts));
    }
    assemble_cone(name, &mudds, max_paths)
}

/// The four abort-point models of Table 7 (cumulatively enabling later abort
/// points).
pub fn abort_specs_table7() -> Vec<(String, Vec<AbortPoint>)> {
    vec![
        ("a0".to_string(), vec![AbortPoint::DuringWalk]),
        (
            "a1".to_string(),
            vec![AbortPoint::DuringWalk, AbortPoint::AfterPsc],
        ),
        (
            "a2".to_string(),
            vec![
                AbortPoint::DuringWalk,
                AbortPoint::AfterPsc,
                AbortPoint::AfterL2Tlb,
            ],
        ),
        (
            "a3".to_string(),
            vec![
                AbortPoint::DuringWalk,
                AbortPoint::AfterPsc,
                AbortPoint::AfterL2Tlb,
                AbortPoint::AfterL1Tlb,
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterpoint_core::{FeasibilityChecker, Observation};

    #[test]
    fn table3_has_twelve_models_with_expected_features() {
        let specs = feature_sets_table3();
        assert_eq!(specs.len(), 12);
        assert_eq!(specs[0].0, "m0");
        assert!(specs[0].1.is_empty());
        assert_eq!(specs[4].1.len(), 5);
        // m4 and m8 differ exactly by the PML4E cache.
        let m4: &FeatureSet = &specs[4].1;
        let m8: &FeatureSet = &specs[8].1;
        assert!(m4.contains("Pml4eCache"));
        assert!(!m8.contains("Pml4eCache"));
        assert_eq!(m4.len(), m8.len() + 1);
    }

    #[test]
    fn table5_has_eighteen_models_matching_the_paper() {
        let specs = trigger_specs_table5();
        assert_eq!(specs.len(), 18);
        assert!(specs[..9].iter().all(|(_, s)| s.speculative));
        assert!(specs[9..].iter().all(|(_, s)| !s.speculative));
        assert!(specs[12].1.store && !specs[12].1.load); // t12 is store-only
        assert!(specs[10].1.dtlb_miss); // t10 requires a DTLB miss
    }

    #[test]
    fn table7_abort_points_are_cumulative() {
        let specs = abort_specs_table7();
        assert_eq!(specs.len(), 4);
        for window in specs.windows(2) {
            assert_eq!(window[0].1.len() + 1, window[1].1.len());
        }
    }

    #[test]
    fn try_builders_report_path_explosion_instead_of_aborting() {
        use counterpoint_mudd::MuDdError;
        let specs = feature_sets_table3();
        // The hand-written models all fit the default limit.
        assert!(try_build_feature_model("m4", &specs[4].1).is_ok());
        assert!(try_build_trigger_model("t0", &TriggerSpec::t0()).is_ok());
        assert!(try_build_abort_model("a0", &[AbortPoint::DuringWalk]).is_ok());
        // A starvation-level bound turns the same model into a typed error.
        let err = try_build_feature_model_bounded("m4", &specs[4].1, Some(1)).unwrap_err();
        assert!(matches!(err, MuDdError::PathExplosion { limit: 1 }));
        let err = try_build_trigger_model_bounded("t0", &TriggerSpec::t0(), Some(1)).unwrap_err();
        assert!(matches!(err, MuDdError::PathExplosion { limit: 1 }));
        let err =
            try_build_abort_model_bounded("a0", &[AbortPoint::DuringWalk], Some(1)).unwrap_err();
        assert!(matches!(err, MuDdError::PathExplosion { limit: 1 }));
    }

    #[test]
    fn m0_and_m4_cones_build_over_the_full_counter_space() {
        let specs = feature_sets_table3();
        let m0 = build_feature_model("m0", &specs[0].1);
        let m4 = build_feature_model("m4", &specs[4].1);
        assert_eq!(m0.dimension(), 26);
        assert_eq!(m4.dimension(), 26);
        assert!(m4.num_generators() > m0.num_generators());
    }

    #[test]
    fn m4_explains_observations_that_refute_m0() {
        let specs = feature_sets_table3();
        let m0 = build_feature_model("m0", &specs[0].1);
        let m4 = build_feature_model("m4", &specs[4].1);
        let space = full_counter_space();

        // A merged-walk + early-PSC observation: more retired STLB misses and PDE
        // misses than completed walks (loads only).
        let mut values = vec![0.0; space.len()];
        values[space.index_of("load.ret").unwrap()] = 1000.0;
        values[space.index_of("load.ret_stlb_miss").unwrap()] = 300.0;
        values[space.index_of("load.pde$_miss").unwrap()] = 250.0;
        values[space.index_of("load.causes_walk").unwrap()] = 150.0;
        values[space.index_of("load.walk_done").unwrap()] = 150.0;
        values[space.index_of("load.walk_done_4k").unwrap()] = 150.0;
        values[space.index_of("walk_ref.l2").unwrap()] = 200.0;
        let obs = Observation::exact("merged-and-early-psc", &values);

        assert!(!FeasibilityChecker::new(&m0).is_feasible(&obs));
        assert!(FeasibilityChecker::new(&m4).is_feasible(&obs));
    }

    #[test]
    fn walk_bypass_distinguishes_m3_from_m4() {
        let specs = feature_sets_table3();
        let m3 = build_feature_model("m3", &specs[3].1);
        let m4 = build_feature_model("m4", &specs[4].1);
        let space = full_counter_space();

        // Walks that complete with fewer references than walks (replays).
        let mut values = vec![0.0; space.len()];
        values[space.index_of("load.ret").unwrap()] = 1000.0;
        values[space.index_of("load.ret_stlb_miss").unwrap()] = 200.0;
        values[space.index_of("load.causes_walk").unwrap()] = 200.0;
        values[space.index_of("load.walk_done").unwrap()] = 200.0;
        values[space.index_of("load.walk_done_4k").unwrap()] = 200.0;
        values[space.index_of("load.pde$_miss").unwrap()] = 120.0;
        values[space.index_of("walk_ref.mem").unwrap()] = 60.0;
        let obs = Observation::exact("replayed-walks", &values);

        assert!(!FeasibilityChecker::new(&m3).is_feasible(&obs));
        assert!(FeasibilityChecker::new(&m4).is_feasible(&obs));
    }

    #[test]
    fn prefetching_distinguishes_m5_from_m4() {
        let specs = feature_sets_table3();
        let m4 = build_feature_model("m4", &specs[4].1);
        let m5 = build_feature_model("m5", &specs[5].1);
        let space = full_counter_space();

        // The linear-microbenchmark steady state: far more walks than retired STLB
        // misses because the prefetcher resolves translations ahead of demand.
        let mut values = vec![0.0; space.len()];
        values[space.index_of("load.ret").unwrap()] = 100_000.0;
        values[space.index_of("load.ret_stlb_miss").unwrap()] = 50.0;
        values[space.index_of("load.causes_walk").unwrap()] = 1500.0;
        values[space.index_of("load.walk_done").unwrap()] = 1500.0;
        values[space.index_of("load.walk_done_4k").unwrap()] = 1500.0;
        values[space.index_of("walk_ref.l1").unwrap()] = 1500.0;
        values[space.index_of("load.pde$_miss").unwrap()] = 10.0;
        let obs = Observation::exact("linear-prefetch-steady-state", &values);

        assert!(FeasibilityChecker::new(&m4).is_feasible(&obs));
        assert!(!FeasibilityChecker::new(&m5).is_feasible(&obs));
    }

    #[test]
    fn speculative_trigger_models_accept_prefetch_heavy_observations() {
        let t0 = build_trigger_model("t0", &TriggerSpec::t0());
        let t10 = build_trigger_model(
            "t10",
            &TriggerSpec {
                speculative: false,
                load: true,
                store: false,
                dtlb_miss: true,
                stlb_miss: false,
            },
        );
        let space = full_counter_space();
        // Prefetch-dominated linear microbenchmark: demand loads hit the L1 TLB.
        let mut values = vec![0.0; space.len()];
        values[space.index_of("load.ret").unwrap()] = 100_000.0;
        values[space.index_of("load.ret_stlb_miss").unwrap()] = 10.0;
        values[space.index_of("load.causes_walk").unwrap()] = 1500.0;
        values[space.index_of("load.walk_done").unwrap()] = 1500.0;
        values[space.index_of("load.walk_done_4k").unwrap()] = 1500.0;
        values[space.index_of("walk_ref.l2").unwrap()] = 1500.0;
        let obs = Observation::exact("linear-prefetch", &values);

        assert!(FeasibilityChecker::new(&t0).is_feasible(&obs));
        // Requiring a demand DTLB miss per prefetch cannot explain 1500 walks from
        // only 10 misses.
        assert!(!FeasibilityChecker::new(&t10).is_feasible(&obs));
    }

    #[test]
    fn abort_models_cannot_explain_reference_free_walks() {
        let specs = abort_specs_table7();
        let space = full_counter_space();
        let mut values = vec![0.0; space.len()];
        values[space.index_of("load.ret").unwrap()] = 10_000.0;
        values[space.index_of("load.ret_stlb_miss").unwrap()] = 500.0;
        values[space.index_of("load.causes_walk").unwrap()] = 500.0;
        values[space.index_of("load.walk_done").unwrap()] = 500.0;
        values[space.index_of("load.walk_done_4k").unwrap()] = 500.0;
        values[space.index_of("load.pde$_miss").unwrap()] = 300.0;
        values[space.index_of("walk_ref.l3").unwrap()] = 100.0;
        let obs = Observation::exact("reference-free-walks", &values);
        for (name, points) in &specs {
            let cone = build_abort_model(name, points);
            assert!(
                !FeasibilityChecker::new(&cone).is_feasible(&obs),
                "{name} should not explain walks that complete without references"
            );
        }
        // The bypass-capable t0 model explains the same observation.
        let t0 = build_trigger_model("t0", &TriggerSpec::t0());
        assert!(FeasibilityChecker::new(&t0).is_feasible(&obs));
    }
}
