//! The microarchitectural features of the initial model search (paper, Table 4).

use counterpoint_core::FeatureSet;
use serde::Serialize;
use std::fmt;

/// A microarchitectural feature a candidate Haswell MMU model may or may not
/// include (paper, Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum Feature {
    /// Prefetches form an additional kind of translation request.
    TlbPrefetch,
    /// Paging-structure caches are looked up before starting a walk (and therefore
    /// before merge/abort decisions).
    EarlyPsc,
    /// Page-table walks can be merged by an L2 TLB MSHR.
    Merging,
    /// A paging-structure cache exists for the root (PML4E) level of the page
    /// table.
    Pml4eCache,
    /// Walks can complete without making a visible memory access.
    WalkBypass,
}

impl Feature {
    /// All features, in the column order of the paper's Table 3.
    pub const ALL: [Feature; 5] = [
        Feature::TlbPrefetch,
        Feature::EarlyPsc,
        Feature::Merging,
        Feature::Pml4eCache,
        Feature::WalkBypass,
    ];

    /// The feature's canonical name (used as the key in [`FeatureSet`]s).
    pub fn name(&self) -> &'static str {
        match self {
            Feature::TlbPrefetch => "TlbPrefetch",
            Feature::EarlyPsc => "EarlyPsc",
            Feature::Merging => "Merging",
            Feature::Pml4eCache => "Pml4eCache",
            Feature::WalkBypass => "WalkBypass",
        }
    }

    /// The description used in the paper's Table 4.
    pub fn description(&self) -> &'static str {
        match self {
            Feature::TlbPrefetch => "Prefetches form an additional kind of translation request",
            Feature::EarlyPsc => "Paging structure caches are looked up before starting a walk",
            Feature::Merging => "Page table walks can be merged by an L2TLB MSHR",
            Feature::Pml4eCache => {
                "There exists a paging structure cache for the root (PML4E) level"
            }
            Feature::WalkBypass => "Walks can complete without making a visible memory access",
        }
    }

    /// Parses a feature from its canonical name.
    pub fn from_name(name: &str) -> Option<Feature> {
        Feature::ALL.iter().copied().find(|f| f.name() == name)
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a [`FeatureSet`] from a slice of features.
pub fn to_feature_set(features: &[Feature]) -> FeatureSet {
    features.iter().map(|f| f.name().to_string()).collect()
}

/// Returns `true` if the set contains the feature.
pub fn has(set: &FeatureSet, feature: Feature) -> bool {
    set.contains(feature.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for f in Feature::ALL {
            assert_eq!(Feature::from_name(f.name()), Some(f));
            assert_eq!(f.to_string(), f.name());
            assert!(!f.description().is_empty());
        }
        assert_eq!(Feature::from_name("NotAFeature"), None);
    }

    #[test]
    fn feature_set_membership() {
        let set = to_feature_set(&[Feature::Merging, Feature::WalkBypass]);
        assert!(has(&set, Feature::Merging));
        assert!(has(&set, Feature::WalkBypass));
        assert!(!has(&set, Feature::TlbPrefetch));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn there_are_five_features_as_in_table3() {
        assert_eq!(Feature::ALL.len(), 5);
    }
}
