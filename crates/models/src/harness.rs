//! Data-collection harness: runs the synthetic workload suite on the simulated
//! Haswell MMU and produces the observations the model families are tested
//! against.
//!
//! This is the reproduction's stand-in for the paper's measurement campaign
//! (GAPBS / SPEC2006 / PARSEC / YCSB plus the two microbenchmarks, swept over page
//! sizes and footprints, ~20 million HEC samples).  The scale is reduced so the
//! full table/figure suite regenerates in minutes on a laptop, but the behavioural
//! axes — locality, footprint, load/store mix, page size — are the same.

use counterpoint_core::Observation;
use counterpoint_haswell::full_counter_space;
use counterpoint_haswell::mem::PageSize;
use counterpoint_haswell::mmu::{HaswellMmu, MmuConfig};
use counterpoint_haswell::pmu::{MultiplexingPmu, PmuConfig};
use counterpoint_workloads::standard_suite;

/// Configuration of the data-collection harness.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Memory accesses simulated per workload/page-size combination.
    pub accesses_per_workload: usize,
    /// Number of measurement intervals per observation (the samples the confidence
    /// region is estimated from).
    pub intervals: usize,
    /// Confidence level of the constructed counter confidence regions.
    pub confidence: f64,
    /// PMU (multiplexing) model.
    pub pmu: PmuConfig,
    /// Ground-truth MMU configuration.
    pub mmu: MmuConfig,
    /// Page sizes the suite is swept over.
    pub page_sizes: Vec<PageSize>,
    /// Number of leading measurement intervals discarded as warm-up before the
    /// confidence region is estimated.  The paper's measurement runs are long
    /// enough that warm-up is negligible; at this reproduction's reduced scale the
    /// cold-start transient would otherwise dominate the sample variance.
    pub warmup_intervals: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            accesses_per_workload: 100_000,
            intervals: 20,
            confidence: 0.99,
            pmu: PmuConfig::default(),
            mmu: MmuConfig::haswell(),
            page_sizes: vec![PageSize::Size4K, PageSize::Size2M, PageSize::Size1G],
            warmup_intervals: 2,
        }
    }
}

impl HarnessConfig {
    /// A scaled-down configuration for unit/integration tests: fewer accesses, 4 KiB
    /// pages only, no multiplexing noise.
    pub fn quick() -> HarnessConfig {
        HarnessConfig {
            accesses_per_workload: 40_000,
            intervals: 10,
            confidence: 0.99,
            pmu: PmuConfig::noiseless(),
            mmu: MmuConfig::haswell(),
            page_sizes: vec![PageSize::Size4K],
            warmup_intervals: 2,
        }
    }
}

/// Runs the standard workload suite across the configured page sizes and returns
/// one observation per (workload, page size) pair.
pub fn collect_case_study_observations(config: &HarnessConfig) -> Vec<Observation> {
    let space = full_counter_space();
    let pmu = MultiplexingPmu::new(config.pmu.clone());
    let mut observations = Vec::new();
    for page_size in &config.page_sizes {
        for entry in standard_suite() {
            let accesses = entry
                .workload
                .generate(config.accesses_per_workload * entry.access_scale.max(1));
            let mut mmu = HaswellMmu::new(config.mmu.clone());
            let samples = pmu.collect(&mut mmu, &accesses, *page_size, &space, config.intervals);
            let steady = &samples[config.warmup_intervals.min(samples.len() - 1)..];
            let label = format!("{}@{}", entry.label, page_size);
            observations.push(Observation::from_samples(&label, steady, config.confidence));
        }
    }
    observations
}

/// Runs a single access trace and returns its observation (used by the figure
/// binaries that need specific microbenchmark instances rather than the whole
/// suite).
pub fn observe_trace(
    name: &str,
    accesses: &[counterpoint_haswell::mem::MemoryAccess],
    page_size: PageSize,
    config: &HarnessConfig,
) -> Observation {
    let space = full_counter_space();
    let pmu = MultiplexingPmu::new(config.pmu.clone());
    let mut mmu = HaswellMmu::new(config.mmu.clone());
    let samples = pmu.collect(&mut mmu, accesses, page_size, &space, config.intervals);
    let steady = &samples[config.warmup_intervals.min(samples.len() - 1)..];
    Observation::from_samples(name, steady, config.confidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{build_feature_model, feature_sets_table3};
    use counterpoint_core::FeasibilityChecker;
    use counterpoint_workloads::{LinearAccess, Workload};

    #[test]
    fn quick_harness_produces_labelled_observations() {
        let mut config = HarnessConfig::quick();
        config.accesses_per_workload = 5_000;
        let observations = collect_case_study_observations(&config);
        assert!(observations.len() >= 15);
        assert_eq!(observations[0].dimension(), 26);
        assert!(observations[0].name().contains("@4k"));
        // Counter means are non-trivial.
        assert!(observations
            .iter()
            .any(|o| o.mean().iter().sum::<f64>() > 1000.0));
    }

    #[test]
    fn observe_trace_runs_a_single_workload() {
        let config = HarnessConfig::quick();
        let workload = LinearAccess {
            footprint: 4 << 20,
            stride: 64,
            store_ratio: 0.0,
        };
        let obs = observe_trace(
            "linear",
            &workload.generate(20_000),
            PageSize::Size4K,
            &config,
        );
        assert_eq!(obs.name(), "linear");
        assert_eq!(obs.dimension(), 26);
    }

    #[test]
    fn feature_complete_model_explains_the_quick_suite() {
        // The end-to-end consistency check behind the whole case study: the
        // feature-complete model m4 must be feasible for every simulated
        // observation, while the featureless model m0 must be refuted by many.
        let mut config = HarnessConfig::quick();
        config.accesses_per_workload = 20_000;
        let observations = collect_case_study_observations(&config);

        let specs = feature_sets_table3();
        let m4 = build_feature_model("m4", &specs.iter().find(|(n, _)| n == "m4").unwrap().1);
        let m0 = build_feature_model("m0", &specs.iter().find(|(n, _)| n == "m0").unwrap().1);

        let m4_infeasible = FeasibilityChecker::new(&m4).count_infeasible(&observations);
        let m0_infeasible = FeasibilityChecker::new(&m0).count_infeasible(&observations);
        assert_eq!(
            m4_infeasible, 0,
            "the feature-complete model must explain every simulated observation"
        );
        assert!(
            m0_infeasible > 0,
            "the featureless model must be refuted by at least one observation"
        );
    }
}
