//! Data-collection harness: runs the synthetic workload suite on the simulated
//! Haswell MMU and produces the observations the model families are tested
//! against.
//!
//! This is the reproduction's stand-in for the paper's measurement campaign
//! (GAPBS / SPEC2006 / PARSEC / YCSB plus the two microbenchmarks, swept over page
//! sizes and footprints, ~20 million HEC samples).  The scale is reduced so the
//! full table/figure suite regenerates in minutes on a laptop, but the behavioural
//! axes — locality, footprint, load/store mix, page size — are the same.
//!
//! Acquisition goes through the `counterpoint-collect` subsystem: this module
//! just maps a [`HarnessConfig`] onto a [`Campaign`] over the simulator backend,
//! so the same suite can be fanned across threads, recorded to a trace and
//! replayed, or pointed at a different [`CounterBackend`] entirely.
//!
//! [`CounterBackend`]: counterpoint_collect::CounterBackend

use counterpoint_collect::{Campaign, CampaignCell, CounterBackend, SimBackend, WorkloadRun};
use counterpoint_core::Observation;
use counterpoint_haswell::mem::PageSize;
use counterpoint_haswell::mmu::MmuConfig;
use counterpoint_haswell::pmu::PmuConfig;
use counterpoint_workloads::standard_suite;
use std::sync::Arc;

/// Configuration of the data-collection harness.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Memory accesses simulated per workload/page-size combination.
    pub accesses_per_workload: usize,
    /// Number of measurement intervals per observation (the samples the confidence
    /// region is estimated from).
    pub intervals: usize,
    /// Confidence level of the constructed counter confidence regions.
    pub confidence: f64,
    /// PMU (multiplexing) model.
    pub pmu: PmuConfig,
    /// Ground-truth MMU configuration.
    pub mmu: MmuConfig,
    /// Page sizes the suite is swept over.
    pub page_sizes: Vec<PageSize>,
    /// Number of leading measurement intervals discarded as warm-up before the
    /// confidence region is estimated.  The paper's measurement runs are long
    /// enough that warm-up is negligible; at this reproduction's reduced scale the
    /// cold-start transient would otherwise dominate the sample variance.
    pub warmup_intervals: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            accesses_per_workload: 100_000,
            intervals: 20,
            confidence: 0.99,
            pmu: PmuConfig::default(),
            mmu: MmuConfig::haswell(),
            page_sizes: vec![PageSize::Size4K, PageSize::Size2M, PageSize::Size1G],
            warmup_intervals: 2,
        }
    }
}

impl HarnessConfig {
    /// A scaled-down configuration for unit/integration tests: fewer accesses, 4 KiB
    /// pages only, no multiplexing noise.
    pub fn quick() -> HarnessConfig {
        HarnessConfig {
            accesses_per_workload: 40_000,
            intervals: 10,
            confidence: 0.99,
            pmu: PmuConfig::noiseless(),
            mmu: MmuConfig::haswell(),
            page_sizes: vec![PageSize::Size4K],
            warmup_intervals: 2,
        }
    }
}

/// The simulator backend a [`HarnessConfig`] describes (full Haswell counter
/// space, the config's MMU and PMU models).
pub fn sim_backend(config: &HarnessConfig) -> SimBackend {
    SimBackend::new(config.mmu.clone(), config.pmu.clone())
}

/// Builds the standard case-study [`Campaign`] — the workload suite swept over
/// the configured page sizes, one cell per (workload, page size) pair, every
/// cell seeded with the config's PMU seed.
///
/// The campaign runs on one thread by default; callers can fan it out with
/// [`Campaign::with_threads`] or reseed it with [`Campaign::with_seed`] without
/// touching this module (per-cell results are independent, so neither changes
/// the default output).
pub fn case_study_campaign(config: &HarnessConfig) -> Campaign {
    let mut campaign = Campaign::new(config.intervals, config.warmup_intervals, config.confidence);
    for page_size in &config.page_sizes {
        for entry in standard_suite() {
            campaign.push(CampaignCell {
                label: format!("{}@{}", entry.label, page_size),
                workload: Arc::from(entry.workload),
                accesses: config.accesses_per_workload * entry.access_scale.max(1),
                page_size: *page_size,
                seed: config.pmu.seed,
            });
        }
    }
    campaign
}

/// Runs the standard workload suite across the configured page sizes and returns
/// one observation per (workload, page size) pair.
#[deprecated(
    since = "0.1.0",
    note = "use `counterpoint_session::Inquiry::harness` (one builder call wires collection, \
            feasibility and reporting together) or drive `case_study_campaign` directly"
)]
pub fn collect_case_study_observations(config: &HarnessConfig) -> Vec<Observation> {
    case_study_campaign(config).run_sim(&config.mmu, &config.pmu)
}

/// Runs a single access trace and returns its observation (used by the figure
/// binaries that need specific microbenchmark instances rather than the whole
/// suite).
pub fn observe_trace(
    name: &str,
    accesses: &[counterpoint_haswell::mem::MemoryAccess],
    page_size: PageSize,
    config: &HarnessConfig,
) -> Observation {
    let mut backend = sim_backend(config);
    let schedule = backend
        .schedule()
        .expect("the simulated backend always has a schedule");
    let run = WorkloadRun {
        label: name,
        accesses,
        page_size,
        intervals: config.intervals,
    };
    let samples = backend
        .run(&run, &schedule)
        .expect("the simulated backend is infallible");
    samples.observation(name, config.warmup_intervals, config.confidence)
}

#[cfg(test)]
#[allow(deprecated)] // the deprecated shim stays under test until it is removed
mod tests {
    use super::*;
    use crate::family::{build_feature_model, feature_sets_table3};
    use counterpoint_core::{BatchFeasibility, FeasibilityChecker};
    use counterpoint_haswell::full_counter_space;
    use counterpoint_haswell::mmu::HaswellMmu;
    use counterpoint_haswell::pmu::MultiplexingPmu;
    use counterpoint_workloads::{LinearAccess, Workload};

    #[test]
    fn rewired_harness_is_bit_identical_to_direct_pmu_collection() {
        // The pre-rewire harness called MultiplexingPmu::collect directly; the
        // campaign path must reproduce it bit-for-bit (same seeds, same order).
        let config = HarnessConfig {
            accesses_per_workload: 3_000,
            page_sizes: vec![PageSize::Size4K],
            intervals: 8,
            ..HarnessConfig::default()
        };
        let rewired = collect_case_study_observations(&config);

        let space = full_counter_space();
        let pmu = MultiplexingPmu::new(config.pmu.clone());
        let mut legacy = Vec::new();
        for page_size in &config.page_sizes {
            for entry in standard_suite() {
                let accesses = entry
                    .workload
                    .generate(config.accesses_per_workload * entry.access_scale.max(1));
                let mut mmu = HaswellMmu::new(config.mmu.clone());
                let samples =
                    pmu.collect(&mut mmu, &accesses, *page_size, &space, config.intervals);
                let steady = &samples[config.warmup_intervals.min(samples.len() - 1)..];
                let label = format!("{}@{}", entry.label, page_size);
                legacy.push(Observation::from_samples(&label, steady, config.confidence));
            }
        }

        assert_eq!(rewired.len(), legacy.len());
        for (new, old) in rewired.iter().zip(&legacy) {
            assert_eq!(new.name(), old.name());
            assert_eq!(new.mean(), old.mean());
            assert_eq!(new.region().axes(), old.region().axes());
            assert_eq!(new.region().half_widths(), old.region().half_widths());
        }

        // Fan-out across threads must not change anything either.
        let threaded = case_study_campaign(&config)
            .with_threads(4)
            .run_sim(&config.mmu, &config.pmu);
        for (a, b) in threaded.iter().zip(&rewired) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.mean(), b.mean());
            assert_eq!(a.region().half_widths(), b.region().half_widths());
        }
    }

    #[test]
    fn quick_harness_produces_labelled_observations() {
        let mut config = HarnessConfig::quick();
        config.accesses_per_workload = 5_000;
        let observations = collect_case_study_observations(&config);
        assert!(observations.len() >= 15);
        assert_eq!(observations[0].dimension(), 26);
        assert!(observations[0].name().contains("@4k"));
        // Counter means are non-trivial.
        assert!(observations
            .iter()
            .any(|o| o.mean().iter().sum::<f64>() > 1000.0));
    }

    #[test]
    fn observe_trace_runs_a_single_workload() {
        let config = HarnessConfig::quick();
        let workload = LinearAccess {
            footprint: 4 << 20,
            stride: 64,
            store_ratio: 0.0,
        };
        let obs = observe_trace(
            "linear",
            &workload.generate(20_000),
            PageSize::Size4K,
            &config,
        );
        assert_eq!(obs.name(), "linear");
        assert_eq!(obs.dimension(), 26);
    }

    #[test]
    fn feature_complete_model_explains_the_quick_suite() {
        // The end-to-end consistency check behind the whole case study: the
        // feature-complete model m4 must be feasible for every simulated
        // observation, while the featureless model m0 must be refuted by many.
        let mut config = HarnessConfig::quick();
        config.accesses_per_workload = 20_000;
        let observations = collect_case_study_observations(&config);

        let specs = feature_sets_table3();
        let m4 = build_feature_model("m4", &specs.iter().find(|(n, _)| n == "m4").unwrap().1);
        let m0 = build_feature_model("m0", &specs.iter().find(|(n, _)| n == "m0").unwrap().1);

        let m4_infeasible = BatchFeasibility::new(&m4).count_infeasible(&observations);
        let m0_infeasible = BatchFeasibility::new(&m0).count_infeasible(&observations);
        assert_eq!(
            m4_infeasible, 0,
            "the feature-complete model must explain every simulated observation"
        );
        assert!(
            m0_infeasible > 0,
            "the featureless model must be refuted by at least one observation"
        );
        // The warm-started batch verdicts must match per-observation checks on
        // the real (noisy, distinct-axes) campaign data.
        let per_obs_m0 = observations
            .iter()
            .filter(|o| !FeasibilityChecker::new(&m0).is_feasible(o))
            .count();
        assert_eq!(m0_infeasible, per_obs_m0);
    }
}
