//! The Haswell MMU case-study model family.
//!
//! The paper's Appendix C explores the Haswell MMU with three families of μDD
//! models, all expressed over the 26-counter space of Table 2:
//!
//! * **Initial search (`m0`–`m11`, Table 3)** — models identified by which of five
//!   microarchitectural features they include: TLB prefetching, early
//!   paging-structure-cache lookup, walk merging, a PML4E (root-level) MMU cache,
//!   and walk bypassing.
//! * **Prefetch trigger conditions (`t0`–`t17`, Table 5)** — refinements of the
//!   feature-complete model that replace the abstract prefetch request with
//!   concrete trigger conditions (speculative vs. retiring μops, load vs. store
//!   triggers, and whether a DTLB or STLB miss is required).
//! * **Abort points (`a0`–`a3`, Table 7)** — variants that replace walk bypassing
//!   with translation-request aborts at different MMU pipeline stages.
//!
//! [`family`] builds the model cones for all three families; [`demand`],
//! [`prefetch`] and [`aborts`] construct the underlying μDDs programmatically with
//! the `counterpoint-mudd` builder; and [`harness`] runs the synthetic workload
//! suite on the simulated Haswell MMU to produce the observations the models are
//! tested against.
//!
//! # Example
//!
//! ```
//! use counterpoint_core::FeasibilityChecker;
//! use counterpoint_models::family::{build_feature_model, feature_sets_table3};
//!
//! // The feature-complete model m4 and the featureless model m0.
//! let specs = feature_sets_table3();
//! let m4 = build_feature_model("m4", &specs.iter().find(|(n, _)| n == "m4").unwrap().1);
//! assert!(m4.num_paths() > 50);
//! let checker = FeasibilityChecker::new(&m4);
//! assert_eq!(checker.cone().dimension(), 26);
//! ```

pub mod aborts;
pub mod demand;
pub mod enumo;
pub mod family;
pub mod features;
pub mod harness;
pub mod prefetch;

pub use enumo::{enumerate, EnumOptions, ModelFamily, ModelGrammar, ModelSpec};
pub use family::{
    abort_specs_table7, build_abort_model, build_feature_model, build_trigger_model,
    feature_sets_table3, trigger_specs_table5,
};
pub use features::Feature;
#[allow(deprecated)] // re-exported so downstream migrations stay source-compatible
pub use harness::collect_case_study_observations;
pub use harness::HarnessConfig;
pub use prefetch::TriggerSpec;
