//! μDD construction for TLB-prefetch translation requests.
//!
//! The paper discovers a load–store-queue-side TLB prefetcher whose requests are
//! resolved by the page-table walker like demand walks (injecting "stuffed" loads),
//! and which abort when the target page's accessed bit is unset.  In the model
//! family the prefetcher appears in two forms:
//!
//! * a **stand-alone prefetch μop type** (the abstract "prefetch translation
//!   request" of the initial search, and of the `Spec ✓` trigger models), and
//! * an **inline trigger** attached to retiring load/store μop paths (the `Spec ✗`
//!   trigger models `t9`–`t17`), at a point determined by the model's trigger
//!   condition.
//!
//! Prefetch-induced activity always increments the `load.*` walk counters: the
//! walker resolves prefetches by injecting load μops regardless of which μop
//! triggered the prefetch.

use counterpoint_haswell::hec::{names, AccessType};
use counterpoint_mudd::{CounterSpace, MuDd, MuDdBuilder, NodeId};
use serde::Serialize;

/// The trigger-condition columns of the paper's Tables 5 and 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct TriggerSpec {
    /// Prefetches can be triggered by purely speculative μops (versus only retiring
    /// ones).  When set, the model includes a stand-alone prefetch μop type.
    pub speculative: bool,
    /// Load μops can trigger prefetches.
    pub load: bool,
    /// Store μops can trigger prefetches.
    pub store: bool,
    /// A demand L1 TLB miss is required for the prefetcher to inject a walk.
    pub dtlb_miss: bool,
    /// A demand STLB miss is required for the prefetcher to inject a walk.
    pub stlb_miss: bool,
}

impl TriggerSpec {
    /// The representative model `t0`: speculative load-triggered prefetching with
    /// no miss requirement.
    pub fn t0() -> TriggerSpec {
        TriggerSpec {
            speculative: true,
            load: true,
            store: false,
            dtlb_miss: false,
            stlb_miss: false,
        }
    }
}

fn connect(b: &mut MuDdBuilder, from: NodeId, label: Option<&str>, to: NodeId) {
    match label {
        Some(l) => b.causal_labeled(from, to, l),
        None => b.causal(from, to),
    }
}

/// Builds the stand-alone prefetch-request μDD (one path family per outcome:
/// dropped/aborted vs. resolved by a walk).
pub fn standalone_prefetch_mudd(space: &CounterSpace, early_psc: bool, pml4e: bool) -> MuDd {
    let mut b = MuDdBuilder::new("prefetch", space);
    let start = b.start();
    build_prefetch_request(&mut b, start, None, early_psc, pml4e);
    b.build()
        .expect("prefetch μDD construction is structurally valid")
}

/// Attaches a prefetch *trigger* (a decision whether this retiring μop issues a
/// prefetch, followed by the prefetch-request subgraph) at a path termination
/// point.  Used by the inline (Spec ✗) trigger models.
pub(crate) fn attach_prefetch_trigger(
    b: &mut MuDdBuilder,
    from: NodeId,
    label: Option<&str>,
    early_psc: bool,
    pml4e: bool,
) {
    let trigger = b.decision("PfTrigger");
    connect(b, from, label, trigger);
    let end = b.end();
    b.causal_labeled(trigger, end, "No");
    build_prefetch_request(b, trigger, Some("Yes"), early_psc, pml4e);
}

/// The prefetch-request pipeline: optional early PDE-cache lookup, a drop/abort
/// outcome (merged into an outstanding walk, or aborted on an unset accessed bit),
/// or a full prefetch-induced walk.
fn build_prefetch_request(
    b: &mut MuDdBuilder,
    from: NodeId,
    label: Option<&str>,
    early_psc: bool,
    pml4e: bool,
) {
    if early_psc {
        let pde = b.decision("PfPde");
        connect(b, from, label, pde);
        prefetch_outcome(b, pde, Some("Hit"), Some(true), pml4e);
        let miss = b.counter(&names::pde_miss(AccessType::Load));
        b.causal_labeled(pde, miss, "Miss");
        prefetch_outcome(b, miss, None, Some(false), pml4e);
    } else {
        prefetch_outcome(b, from, label, None, pml4e);
    }
}

fn prefetch_outcome(
    b: &mut MuDdBuilder,
    from: NodeId,
    label: Option<&str>,
    pde_hit: Option<bool>,
    pml4e: bool,
) {
    let outcome = b.decision("PfOutcome");
    connect(b, from, label, outcome);
    // Dropped: merged into an outstanding walk, or aborted because the target
    // page's accessed bit is unset.
    let end = b.end();
    b.causal_labeled(outcome, end, "Dropped");
    // Resolved by a walk.
    match pde_hit {
        Some(hit) => prefetch_walk(b, outcome, Some("Walk"), hit, pml4e),
        None => {
            // The PDE cache is consulted when the walk starts (non-early-PSC
            // models).
            let pde = b.decision("PfPde");
            b.causal_labeled(outcome, pde, "Walk");
            prefetch_walk(b, pde, Some("Hit"), true, pml4e);
            let miss = b.counter(&names::pde_miss(AccessType::Load));
            b.causal_labeled(pde, miss, "Miss");
            prefetch_walk(b, miss, None, false, pml4e);
        }
    }
}

fn prefetch_walk(
    b: &mut MuDdBuilder,
    from: NodeId,
    label: Option<&str>,
    pde_hit: bool,
    pml4e: bool,
) {
    let causes = b.counter(&names::causes_walk(AccessType::Load));
    connect(b, from, label, causes);
    if pde_hit {
        emit_prefetch_refs(b, causes, None, 1);
    } else {
        let pdpte = b.decision("PfPdpte");
        b.causal(causes, pdpte);
        emit_prefetch_refs(b, pdpte, Some("Hit"), 2);
        if pml4e {
            let pml4e_dec = b.decision("PfPml4e");
            b.causal_labeled(pdpte, pml4e_dec, "Miss");
            emit_prefetch_refs(b, pml4e_dec, Some("Hit"), 3);
            emit_prefetch_refs(b, pml4e_dec, Some("Miss"), 4);
        } else {
            emit_prefetch_refs(b, pdpte, Some("Miss"), 4);
        }
    }
}

fn emit_prefetch_refs(b: &mut MuDdBuilder, from: NodeId, label: Option<&str>, count: u32) {
    let level = b.decision(&format!("PfRefLevel{count}"));
    connect(b, from, label, level);
    for (arm, lvl) in [("L1", 1usize), ("L2", 2), ("L3", 3), ("Mem", 4)] {
        let mut prev: Option<NodeId> = None;
        for _ in 0..count {
            let c = b.counter(&names::walk_ref(lvl));
            match prev {
                None => b.causal_labeled(level, c, arm),
                Some(p) => b.causal(p, c),
            }
            prev = Some(c);
        }
        let done = b.counter(&names::walk_done(AccessType::Load));
        b.causal(prev.expect("count >= 1"), done);
        let done_4k = b.counter(&names::walk_done_4k(AccessType::Load));
        b.causal(done, done_4k);
        let end = b.end();
        b.causal(done_4k, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterpoint_haswell::full_counter_space;

    #[test]
    fn standalone_prefetch_paths_cover_drop_and_walk() {
        let space = full_counter_space();
        let mudd = standalone_prefetch_mudd(&space, true, true);
        let paths = mudd.enumerate_paths().unwrap();
        assert!(paths.len() >= 10);
        let causes = space.index_of("load.causes_walk").unwrap();
        let pde = space.index_of("load.pde$_miss").unwrap();
        let done = space.index_of("load.walk_done_4k").unwrap();
        // Dropped after a PDE miss: pde$_miss without causes_walk.
        assert!(paths
            .iter()
            .any(|p| p.signature().get(pde) == 1 && p.signature().get(causes) == 0));
        // Fully-dropped path: no counters at all.
        assert!(paths.iter().any(|p| p.signature().is_zero()));
        // Resolved prefetch: walk completes as a 4K walk.
        assert!(paths
            .iter()
            .any(|p| p.signature().get(causes) == 1 && p.signature().get(done) == 1));
        // Prefetches never touch retirement or store counters.
        let ret = space.index_of("load.ret").unwrap();
        let sret = space.index_of("store.ret").unwrap();
        for p in &paths {
            assert_eq!(p.signature().get(ret), 0);
            assert_eq!(p.signature().get(sret), 0);
        }
    }

    #[test]
    fn non_early_psc_prefetch_ties_pde_miss_to_walks() {
        let space = full_counter_space();
        let mudd = standalone_prefetch_mudd(&space, false, true);
        let pde = space.index_of("load.pde$_miss").unwrap();
        let causes = space.index_of("load.causes_walk").unwrap();
        for p in mudd.enumerate_paths().unwrap() {
            assert!(p.signature().get(pde) <= p.signature().get(causes));
        }
    }

    #[test]
    fn prefetch_without_pml4e_needs_at_least_two_refs_on_psc_miss() {
        let space = full_counter_space();
        let mudd = standalone_prefetch_mudd(&space, true, false);
        let refs: Vec<usize> = (1..=4)
            .map(|l| space.index_of(&names::walk_ref(l)).unwrap())
            .collect();
        let pde = space.index_of("load.pde$_miss").unwrap();
        let done = space.index_of("load.walk_done").unwrap();
        for p in mudd.enumerate_paths().unwrap() {
            if p.signature().get(pde) == 1 && p.signature().get(done) == 1 {
                let total: u32 = refs.iter().map(|&r| p.signature().get(r)).sum();
                assert!(total >= 2);
            }
        }
    }

    #[test]
    fn trigger_spec_t0_is_speculative_load_triggered() {
        let t0 = TriggerSpec::t0();
        assert!(t0.speculative && t0.load);
        assert!(!t0.store && !t0.dtlb_miss && !t0.stlb_miss);
    }
}
