//! Programmatic construction of μDDs.

use crate::counterspace::CounterSpace;
use crate::graph::{MuDd, MuDdError, NodeId, NodeKind};
use std::collections::BTreeSet;

/// Default cap on the number of μpaths a single μDD may enumerate.
pub const DEFAULT_MAX_PATHS: usize = 1 << 20;

enum PendingNode {
    Start,
    End,
    Event(String),
    Counter(String),
    Decision(String),
}

/// Builder for [`MuDd`] graphs.
///
/// The builder is the main way the Haswell model family is constructed; the DSL
/// compiler also lowers onto it.  Nodes are created first (returning [`NodeId`]s),
/// then connected with causality and happens-before edges, and finally validated by
/// [`MuDdBuilder::build`].
///
/// ```
/// use counterpoint_mudd::{CounterSpace, MuDdBuilder};
///
/// let space = CounterSpace::new(&["load.causes_walk"]);
/// let mut b = MuDdBuilder::new("tiny", &space);
/// let start = b.start();
/// let ctr = b.counter("load.causes_walk");
/// let end = b.end();
/// b.causal(start, ctr);
/// b.causal(ctr, end);
/// let mudd = b.build().unwrap();
/// assert_eq!(mudd.num_paths().unwrap(), 1);
/// ```
pub struct MuDdBuilder {
    name: String,
    counters: CounterSpace,
    nodes: Vec<PendingNode>,
    causal: Vec<(usize, usize, Option<String>)>,
    happens_before: Vec<(usize, usize)>,
    max_paths: usize,
}

impl MuDdBuilder {
    /// Creates a builder for a μDD named `name` over the given counter space.
    pub fn new(name: &str, counters: &CounterSpace) -> MuDdBuilder {
        MuDdBuilder {
            name: name.to_string(),
            counters: counters.clone(),
            nodes: Vec::new(),
            causal: Vec::new(),
            happens_before: Vec::new(),
            max_paths: DEFAULT_MAX_PATHS,
        }
    }

    /// Overrides the μpath enumeration limit (default [`DEFAULT_MAX_PATHS`]).
    pub fn set_max_paths(&mut self, limit: usize) {
        self.max_paths = limit;
    }

    fn push(&mut self, node: PendingNode) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Adds the start node.  A μDD must have exactly one.
    pub fn start(&mut self) -> NodeId {
        self.push(PendingNode::Start)
    }

    /// Adds an end node.  A μDD may have any number of them.
    pub fn end(&mut self) -> NodeId {
        self.push(PendingNode::End)
    }

    /// Adds a standard microarchitectural event node.
    pub fn event(&mut self, name: &str) -> NodeId {
        self.push(PendingNode::Event(name.to_string()))
    }

    /// Adds a counter node.  The name is resolved against the counter space at
    /// [`MuDdBuilder::build`] time.
    pub fn counter(&mut self, name: &str) -> NodeId {
        self.push(PendingNode::Counter(name.to_string()))
    }

    /// Adds a decision node over the named microarchitectural property.
    pub fn decision(&mut self, property: &str) -> NodeId {
        self.push(PendingNode::Decision(property.to_string()))
    }

    /// Adds an unlabelled causality edge (for edges out of non-decision nodes).
    pub fn causal(&mut self, from: NodeId, to: NodeId) {
        self.causal.push((from.index(), to.index(), None));
    }

    /// Adds a causality edge labelled with a property value (for edges out of
    /// decision nodes).
    pub fn causal_labeled(&mut self, from: NodeId, to: NodeId, label: &str) {
        self.causal
            .push((from.index(), to.index(), Some(label.to_string())));
    }

    /// Adds a happens-before edge.  Happens-before edges document additional
    /// ordering between events on a μpath; they do not influence path enumeration.
    pub fn happens_before(&mut self, from: NodeId, to: NodeId) {
        self.happens_before.push((from.index(), to.index()));
    }

    /// Validates the graph and produces an immutable [`MuDd`].
    ///
    /// # Errors
    ///
    /// Returns a [`MuDdError`] describing the first structural problem found: a
    /// missing or duplicated start node, unknown counter names, labelling problems,
    /// bad fan-out, dead ends, cycles, unreachable nodes, or edges referring to
    /// non-existent nodes.
    pub fn build(self) -> Result<MuDd, MuDdError> {
        let n = self.nodes.len();

        // Resolve node kinds (counter names -> indices).
        let mut kinds = Vec::with_capacity(n);
        for node in &self.nodes {
            kinds.push(match node {
                PendingNode::Start => NodeKind::Start,
                PendingNode::End => NodeKind::End,
                PendingNode::Event(name) => NodeKind::Event(name.clone()),
                PendingNode::Decision(prop) => NodeKind::Decision(prop.clone()),
                PendingNode::Counter(name) => {
                    let idx = self
                        .counters
                        .index_of(name)
                        .ok_or_else(|| self.counters.unknown_counter(name))?;
                    NodeKind::Counter(idx)
                }
            });
        }

        // Exactly one start node.
        let starts: Vec<usize> = kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| matches!(k, NodeKind::Start))
            .map(|(i, _)| i)
            .collect();
        let start = match starts.len() {
            0 => return Err(MuDdError::NoStartNode),
            1 => starts[0],
            _ => return Err(MuDdError::MultipleStartNodes),
        };

        // Build adjacency, validating node indices.
        let mut causal_out: Vec<Vec<(usize, Option<String>)>> = vec![Vec::new(); n];
        for (from, to, label) in &self.causal {
            if *from >= n {
                return Err(MuDdError::InvalidNode { node: *from });
            }
            if *to >= n {
                return Err(MuDdError::InvalidNode { node: *to });
            }
            causal_out[*from].push((*to, label.clone()));
        }
        for (from, to) in &self.happens_before {
            if *from >= n || *to >= n {
                return Err(MuDdError::InvalidNode {
                    node: (*from).max(*to),
                });
            }
        }

        // Per-node structural validation.
        for (i, kind) in kinds.iter().enumerate() {
            let out = &causal_out[i];
            match kind {
                NodeKind::End => {
                    if !out.is_empty() {
                        return Err(MuDdError::BadFanout {
                            node: i,
                            found: out.len(),
                        });
                    }
                }
                NodeKind::Decision(_) => {
                    if out.is_empty() {
                        return Err(MuDdError::DeadEnd { node: i });
                    }
                    let mut seen = BTreeSet::new();
                    for (_, label) in out {
                        let Some(label) = label else {
                            return Err(MuDdError::BadEdgeLabel { node: i });
                        };
                        if !seen.insert(label.clone()) {
                            return Err(MuDdError::DuplicateDecisionLabel {
                                node: i,
                                label: label.clone(),
                            });
                        }
                    }
                }
                _ => {
                    if out.len() != 1 {
                        return Err(if out.is_empty() {
                            MuDdError::DeadEnd { node: i }
                        } else {
                            MuDdError::BadFanout {
                                node: i,
                                found: out.len(),
                            }
                        });
                    }
                    if out[0].1.is_some() {
                        return Err(MuDdError::BadEdgeLabel { node: i });
                    }
                }
            }
        }

        // Acyclicity (DFS with colours) and reachability from start.
        let mut colour = vec![0u8; n]; // 0 = white, 1 = grey, 2 = black
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        colour[start] = 1;
        while let Some((node, next_child)) = stack.pop() {
            if next_child < causal_out[node].len() {
                stack.push((node, next_child + 1));
                let (child, _) = causal_out[node][next_child];
                match colour[child] {
                    0 => {
                        colour[child] = 1;
                        stack.push((child, 0));
                    }
                    1 => return Err(MuDdError::Cycle),
                    _ => {}
                }
            } else {
                colour[node] = 2;
            }
        }
        if let Some(unreachable) = (0..n).find(|&i| colour[i] == 0) {
            return Err(MuDdError::Unreachable { node: unreachable });
        }

        Ok(MuDd {
            name: self.name,
            counters: self.counters,
            nodes: kinds,
            causal_out,
            happens_before: self.happens_before,
            start,
            max_paths: self.max_paths,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> CounterSpace {
        CounterSpace::new(&["c.a", "c.b"])
    }

    #[test]
    fn minimal_valid_mudd() {
        let mut b = MuDdBuilder::new("minimal", &space());
        let s = b.start();
        let e = b.end();
        b.causal(s, e);
        let mudd = b.build().unwrap();
        assert_eq!(mudd.num_paths().unwrap(), 1);
        assert!(mudd.enumerate_paths().unwrap()[0].signature().is_zero());
    }

    #[test]
    fn missing_start_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let _ = b.end();
        assert_eq!(b.build().unwrap_err(), MuDdError::NoStartNode);
    }

    #[test]
    fn duplicate_start_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let s1 = b.start();
        let _s2 = b.start();
        let e = b.end();
        b.causal(s1, e);
        assert_eq!(b.build().unwrap_err(), MuDdError::MultipleStartNodes);
    }

    #[test]
    fn unknown_counter_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let s = b.start();
        let c = b.counter("c.missing");
        let e = b.end();
        b.causal(s, c);
        b.causal(c, e);
        match b.build().unwrap_err() {
            MuDdError::UnknownCounter { name, available } => {
                assert_eq!(name, "c.missing");
                assert_eq!(available, space().names());
            }
            other => panic!("expected UnknownCounter, got {other:?}"),
        }
    }

    #[test]
    fn unlabeled_decision_edge_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let s = b.start();
        let d = b.decision("P");
        let e = b.end();
        b.causal(s, d);
        b.causal(d, e);
        assert_eq!(b.build().unwrap_err(), MuDdError::BadEdgeLabel { node: 1 });
    }

    #[test]
    fn labeled_event_edge_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let s = b.start();
        let e = b.end();
        b.causal_labeled(s, e, "Yes");
        assert_eq!(b.build().unwrap_err(), MuDdError::BadEdgeLabel { node: 0 });
    }

    #[test]
    fn duplicate_decision_label_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let s = b.start();
        let d = b.decision("P");
        let e1 = b.end();
        let e2 = b.end();
        b.causal(s, d);
        b.causal_labeled(d, e1, "Yes");
        b.causal_labeled(d, e2, "Yes");
        assert_eq!(
            b.build().unwrap_err(),
            MuDdError::DuplicateDecisionLabel {
                node: 1,
                label: "Yes".to_string()
            }
        );
    }

    #[test]
    fn fanout_from_event_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let s = b.start();
        let e1 = b.end();
        let e2 = b.end();
        b.causal(s, e1);
        b.causal(s, e2);
        assert_eq!(
            b.build().unwrap_err(),
            MuDdError::BadFanout { node: 0, found: 2 }
        );
    }

    #[test]
    fn dead_end_event_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let s = b.start();
        let ev = b.event("Stuck");
        b.causal(s, ev);
        assert_eq!(b.build().unwrap_err(), MuDdError::DeadEnd { node: 1 });
    }

    #[test]
    fn end_with_successor_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let s = b.start();
        let e = b.end();
        let e2 = b.end();
        b.causal(s, e);
        b.causal(e, e2);
        assert!(matches!(
            b.build().unwrap_err(),
            MuDdError::BadFanout { node: 1, .. }
        ));
    }

    #[test]
    fn cycle_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let s = b.start();
        let a = b.event("A");
        let c = b.event("B");
        b.causal(s, a);
        b.causal(a, c);
        b.causal(c, a);
        assert_eq!(b.build().unwrap_err(), MuDdError::Cycle);
    }

    #[test]
    fn unreachable_node_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let s = b.start();
        let e = b.end();
        let orphan = b.event("Orphan");
        let e2 = b.end();
        b.causal(s, e);
        b.causal(orphan, e2);
        assert!(matches!(
            b.build().unwrap_err(),
            MuDdError::Unreachable { .. }
        ));
    }

    #[test]
    fn invalid_node_reference_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let s = b.start();
        let e = b.end();
        b.causal(s, e);
        b.causal(s, NodeId(99));
        assert!(matches!(
            b.build().unwrap_err(),
            MuDdError::InvalidNode { .. }
        ));
    }

    #[test]
    fn happens_before_with_invalid_node_is_error() {
        let mut b = MuDdBuilder::new("bad", &space());
        let s = b.start();
        let e = b.end();
        b.causal(s, e);
        b.happens_before(s, NodeId(42));
        assert!(matches!(
            b.build().unwrap_err(),
            MuDdError::InvalidNode { .. }
        ));
    }

    #[test]
    fn happens_before_edges_are_kept() {
        let mut b = MuDdBuilder::new("hb", &space());
        let s = b.start();
        let a = b.counter("c.a");
        let e = b.end();
        b.causal(s, a);
        b.causal(a, e);
        b.happens_before(s, e);
        let mudd = b.build().unwrap();
        assert_eq!(mudd.happens_before_edges(), &[(0, 2)]);
    }
}
