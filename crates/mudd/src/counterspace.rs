//! The ordered set of hardware event counters a model ranges over.

use std::collections::BTreeMap;
use std::fmt;

use crate::graph::MuDdError;

/// An ordered, indexable set of hardware event counter names.
///
/// Every μDD, counter signature, model cone and confidence region in a CounterPoint
/// analysis is expressed over one shared `CounterSpace`, so that component `i` of
/// any vector always refers to the same HEC.  Counter names follow the paper's
/// convention, e.g. `load.causes_walk`, `store.walk_done_2m`, `walk_ref.l2`.
///
/// ```
/// use counterpoint_mudd::CounterSpace;
/// let space = CounterSpace::new(&["load.causes_walk", "load.pde$_miss"]);
/// assert_eq!(space.len(), 2);
/// assert_eq!(space.index_of("load.pde$_miss"), Some(1));
/// assert_eq!(space.name(0), "load.causes_walk");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSpace {
    names: Vec<String>,
    index: BTreeMap<String, usize>,
}

impl CounterSpace {
    /// Creates a counter space from an ordered list of names.
    ///
    /// # Panics
    ///
    /// Panics if a name appears twice.
    pub fn new<S: AsRef<str>>(names: &[S]) -> CounterSpace {
        let mut index = BTreeMap::new();
        let mut owned = Vec::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            let name = n.as_ref().to_string();
            let previous = index.insert(name.clone(), i);
            assert!(previous.is_none(), "duplicate counter name: {name}");
            owned.push(name);
        }
        CounterSpace {
            names: owned,
            index,
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if the space has no counters.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Index of a counter by name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Returns `true` if the space contains the named counter.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Name of the counter at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// All counter names, in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// All names as `&str` slices (convenient for constraint rendering).
    pub fn name_refs(&self) -> Vec<&str> {
        self.names.iter().map(String::as_str).collect()
    }

    /// Builds a new space containing only the named subset (in the given order),
    /// e.g. to project an analysis onto one of the paper's counter groups.
    ///
    /// # Panics
    ///
    /// Panics if a requested name is not present in this space.
    pub fn subset<S: AsRef<str>>(&self, names: &[S]) -> CounterSpace {
        for n in names {
            assert!(
                self.contains(n.as_ref()),
                "counter {} is not in this space",
                n.as_ref()
            );
        }
        CounterSpace::new(names)
    }

    /// Returns the indices (in this space) of the given counter names.
    ///
    /// # Panics
    ///
    /// Panics if a name is unknown.  Mechanically generated name lists should
    /// use [`CounterSpace::try_indices_of`] instead.
    pub fn indices_of<S: AsRef<str>>(&self, names: &[S]) -> Vec<usize> {
        self.try_indices_of(names).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`CounterSpace::indices_of`], but an unknown name is reported as
    /// [`MuDdError::UnknownCounter`] (carrying every available name) instead
    /// of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`MuDdError::UnknownCounter`] for the first name missing from
    /// this space.
    pub fn try_indices_of<S: AsRef<str>>(&self, names: &[S]) -> Result<Vec<usize>, MuDdError> {
        names
            .iter()
            .map(|n| {
                self.index_of(n.as_ref())
                    .ok_or_else(|| self.unknown_counter(n.as_ref()))
            })
            .collect()
    }

    /// The canonical typed error for a name this space does not contain.
    pub(crate) fn unknown_counter(&self, name: &str) -> MuDdError {
        MuDdError::UnknownCounter {
            name: name.to_string(),
            available: self.names.clone(),
        }
    }
}

impl fmt::Display for CounterSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CounterSpace[{}]", self.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let s = CounterSpace::new(&["a", "b", "c"]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert!(s.contains("c"));
        assert!(!s.contains("d"));
        assert_eq!(s.name(2), "c");
        assert_eq!(
            s.names(),
            &["a".to_string(), "b".to_string(), "c".to_string()]
        );
        assert_eq!(s.name_refs(), vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_space() {
        let s = CounterSpace::new::<&str>(&[]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate counter name")]
    fn duplicate_names_panic() {
        let _ = CounterSpace::new(&["a", "b", "a"]);
    }

    #[test]
    fn subset_preserves_requested_order() {
        let s = CounterSpace::new(&["a", "b", "c", "d"]);
        let sub = s.subset(&["c", "a"]);
        assert_eq!(sub.name(0), "c");
        assert_eq!(sub.name(1), "a");
        assert_eq!(sub.len(), 2);
    }

    #[test]
    #[should_panic(expected = "is not in this space")]
    fn subset_with_unknown_name_panics() {
        let s = CounterSpace::new(&["a"]);
        let _ = s.subset(&["b"]);
    }

    #[test]
    fn indices_of_maps_names() {
        let s = CounterSpace::new(&["a", "b", "c"]);
        assert_eq!(s.indices_of(&["c", "a"]), vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "unknown counter")]
    fn indices_of_unknown_name_panics() {
        let s = CounterSpace::new(&["a", "b"]);
        let _ = s.indices_of(&["a", "bogus.counter"]);
    }

    #[test]
    fn try_indices_of_reports_typed_error() {
        let s = CounterSpace::new(&["a", "b", "c"]);
        assert_eq!(s.try_indices_of(&["b", "c"]), Ok(vec![1, 2]));
        let err = s.try_indices_of(&["b", "bogus.counter"]).unwrap_err();
        match err {
            MuDdError::UnknownCounter { name, available } => {
                assert_eq!(name, "bogus.counter");
                assert_eq!(available, vec!["a", "b", "c"]);
            }
            other => panic!("expected UnknownCounter, got {other:?}"),
        }
    }

    #[test]
    fn display_lists_names() {
        let s = CounterSpace::new(&["x", "y"]);
        assert_eq!(s.to_string(), "CounterSpace[x, y]");
    }
}
