//! The CounterPoint model-specification DSL.
//!
//! The paper introduces a deliberately small language for describing how a μop
//! interacts with the microarchitecture (Figure 2 and Section 6): `incr` statements
//! increment HECs, `do` statements name standard microarchitectural events,
//! `switch` statements branch on microarchitectural properties, `pass` is a no-op
//! arm body, and `done` terminates the μop's path.  The language intentionally has
//! no functions, loops, or variables beyond μpath properties.
//!
//! ```text
//! incr load.causes_walk;
//! do LookupPde$;
//! switch Pde$Status {
//!     Hit => pass;
//!     Miss => incr load.pde$_miss
//! };
//! done;
//! ```
//!
//! [`compile_uop`] compiles a program into a validated [`MuDd`]; [`compile_auto`]
//! additionally derives the counter space from the `incr` statements encountered.

use crate::builder::MuDdBuilder;
use crate::counterspace::CounterSpace;
use crate::graph::{MuDd, MuDdError, NodeId};
use std::fmt;

/// Errors raised while lexing, parsing or compiling a DSL program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DslError {
    /// A character that is not part of the language was encountered.
    Lex {
        /// Byte offset of the offending character.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// The token stream does not form a valid program.
    Parse {
        /// Description of the problem.
        message: String,
    },
    /// Statements appear after every control path has terminated with `done`.
    UnreachableCode,
    /// The program is empty (a μop must do *something*, even if it is just `done`).
    EmptyProgram,
    /// A structural error surfaced while building the μDD (e.g. an `incr` of a
    /// counter missing from the supplied counter space).
    Graph(MuDdError),
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            DslError::Parse { message } => write!(f, "parse error: {message}"),
            DslError::UnreachableCode => {
                write!(f, "unreachable statements after all paths ended with done")
            }
            DslError::EmptyProgram => write!(f, "empty model program"),
            DslError::Graph(e) => write!(f, "model graph error: {e}"),
        }
    }
}

impl std::error::Error for DslError {}

impl From<MuDdError> for DslError {
    fn from(e: MuDdError) -> Self {
        DslError::Graph(e)
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Ident(String),
    LBrace,
    RBrace,
    Semi,
    Comma,
    Arrow,
    Eof,
}

fn lex(src: &str) -> Result<Vec<Token>, DslError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '>' {
                    tokens.push(Token::Arrow);
                    i += 2;
                } else {
                    return Err(DslError::Lex {
                        position: i,
                        message: "expected '=>' after '='".to_string(),
                    });
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] as char == '/' => {
                while i < bytes.len() && bytes[i] as char != '\n' {
                    i += 1;
                }
            }
            '#' => {
                while i < bytes.len() && bytes[i] as char != '\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(DslError::Lex {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// AST + parser
// ---------------------------------------------------------------------------

/// A statement of the DSL (exposed for tooling and tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `incr <counter>;`
    Incr(String),
    /// `do <event>;`
    Do(String),
    /// `pass;`
    Pass,
    /// `done;`
    Done,
    /// `switch <property> { <value> => <body>; ... };`
    Switch {
        /// The microarchitectural property being branched on.
        property: String,
        /// `(value, body)` pairs, one per arm.
        arms: Vec<(String, Vec<Stmt>)>,
    },
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_ident(&mut self, context: &str) -> Result<String, DslError> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(DslError::Parse {
                message: format!("expected identifier {context}, found {other:?}"),
            }),
        }
    }

    fn expect(&mut self, token: Token, context: &str) -> Result<(), DslError> {
        let found = self.bump();
        if found == token {
            Ok(())
        } else {
            Err(DslError::Parse {
                message: format!("expected {token:?} {context}, found {found:?}"),
            })
        }
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == token {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Parses statements until EOF or a closing brace (which is not consumed).
    fn parse_stmts(&mut self) -> Result<Vec<Stmt>, DslError> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                Token::Eof | Token::RBrace => break,
                Token::Semi => {
                    self.bump();
                }
                _ => stmts.push(self.parse_stmt()?),
            }
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, DslError> {
        let keyword = self.expect_ident("at start of statement")?;
        let stmt = match keyword.as_str() {
            "incr" => Stmt::Incr(self.expect_ident("after incr")?),
            "do" => Stmt::Do(self.expect_ident("after do")?),
            "pass" => Stmt::Pass,
            "done" => Stmt::Done,
            "switch" => {
                let property = self.expect_ident("after switch")?;
                self.expect(Token::LBrace, "after switch property")?;
                let mut arms = Vec::new();
                loop {
                    // Allow stray separators between arms.
                    while self.eat(&Token::Semi) || self.eat(&Token::Comma) {}
                    if self.eat(&Token::RBrace) {
                        break;
                    }
                    let value = self.expect_ident("as switch arm value")?;
                    self.expect(Token::Arrow, "after switch arm value")?;
                    let body = if self.peek() == &Token::LBrace {
                        self.bump();
                        let body = self.parse_stmts()?;
                        self.expect(Token::RBrace, "to close switch arm block")?;
                        body
                    } else {
                        vec![self.parse_stmt()?]
                    };
                    arms.push((value, body));
                }
                if arms.is_empty() {
                    return Err(DslError::Parse {
                        message: format!("switch on {property} has no arms"),
                    });
                }
                Stmt::Switch { property, arms }
            }
            other => {
                return Err(DslError::Parse {
                    message: format!("unknown statement keyword {other:?}"),
                })
            }
        };
        // Optional trailing separator after any statement.
        while self.eat(&Token::Semi) {}
        Ok(stmt)
    }
}

/// Parses a DSL program into its statement list.
///
/// # Errors
///
/// Returns a [`DslError`] on lexical or syntactic problems.
pub fn parse(src: &str) -> Result<Vec<Stmt>, DslError> {
    let tokens = lex(src)?;
    let mut parser = Parser::new(tokens);
    let stmts = parser.parse_stmts()?;
    match parser.peek() {
        Token::Eof => Ok(stmts),
        other => Err(DslError::Parse {
            message: format!("unexpected token {other:?} after program"),
        }),
    }
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

/// An edge waiting for its target node.
enum Tail {
    Plain(NodeId),
    Labeled(NodeId, String),
}

fn connect(builder: &mut MuDdBuilder, tail: Tail, target: NodeId) {
    match tail {
        Tail::Plain(from) => builder.causal(from, target),
        Tail::Labeled(from, label) => builder.causal_labeled(from, target, &label),
    }
}

/// Compiles a statement list: connects `incoming` tails through the statements and
/// returns the tails left dangling afterwards (empty if every path hit `done`).
fn compile_stmts(
    builder: &mut MuDdBuilder,
    stmts: &[Stmt],
    mut incoming: Vec<Tail>,
) -> Result<Vec<Tail>, DslError> {
    for stmt in stmts {
        if incoming.is_empty() {
            return Err(DslError::UnreachableCode);
        }
        match stmt {
            Stmt::Pass => {}
            Stmt::Incr(counter) => {
                let node = builder.counter(counter);
                for tail in incoming.drain(..) {
                    connect(builder, tail, node);
                }
                incoming = vec![Tail::Plain(node)];
            }
            Stmt::Do(event) => {
                let node = builder.event(event);
                for tail in incoming.drain(..) {
                    connect(builder, tail, node);
                }
                incoming = vec![Tail::Plain(node)];
            }
            Stmt::Done => {
                let node = builder.end();
                for tail in incoming.drain(..) {
                    connect(builder, tail, node);
                }
                incoming = Vec::new();
            }
            Stmt::Switch { property, arms } => {
                let decision = builder.decision(property);
                for tail in incoming.drain(..) {
                    connect(builder, tail, decision);
                }
                let mut outgoing = Vec::new();
                for (value, body) in arms {
                    let arm_tails =
                        compile_stmts(builder, body, vec![Tail::Labeled(decision, value.clone())])?;
                    outgoing.extend(arm_tails);
                }
                incoming = outgoing;
            }
        }
    }
    Ok(incoming)
}

/// Compiles a DSL program describing one μop type into a μDD over the given counter
/// space.
///
/// Dangling control flow at the end of the program is terminated with an implicit
/// `done`.
///
/// # Errors
///
/// Returns a [`DslError`] on lexical, syntactic or structural problems (including
/// `incr` of a counter missing from `counters`).
pub fn compile_uop(name: &str, src: &str, counters: &CounterSpace) -> Result<MuDd, DslError> {
    let stmts = parse(src)?;
    if stmts.is_empty() {
        return Err(DslError::EmptyProgram);
    }
    let mut builder = MuDdBuilder::new(name, counters);
    let start = builder.start();
    let tails = compile_stmts(&mut builder, &stmts, vec![Tail::Plain(start)])?;
    if !tails.is_empty() {
        let end = builder.end();
        for tail in tails {
            connect(&mut builder, tail, end);
        }
    }
    Ok(builder.build()?)
}

/// Compiles a DSL program, deriving the counter space from the `incr` statements in
/// order of first appearance.
///
/// # Errors
///
/// Returns a [`DslError`] on lexical, syntactic or structural problems.
pub fn compile_auto(name: &str, src: &str) -> Result<MuDd, DslError> {
    let stmts = parse(src)?;
    if stmts.is_empty() {
        return Err(DslError::EmptyProgram);
    }
    let mut names: Vec<String> = Vec::new();
    collect_counters(&stmts, &mut names);
    let counters = CounterSpace::new(&names);
    compile_uop(name, src, &counters)
}

fn collect_counters(stmts: &[Stmt], names: &mut Vec<String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Incr(counter) if !names.contains(counter) => {
                names.push(counter.clone());
            }
            Stmt::Switch { arms, .. } => {
                for (_, body) in arms {
                    collect_counters(body, names);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE2: &str = r#"
        incr load.causes_walk;
        do LookupPde$;
        switch Pde$Status {
            Hit => pass;
            Miss => incr load.pde$_miss
        };
        done;
    "#;

    fn pde_space() -> CounterSpace {
        CounterSpace::new(&["load.causes_walk", "load.pde$_miss"])
    }

    #[test]
    fn lexer_tokenises_paper_example() {
        let tokens = lex(FIGURE2).unwrap();
        assert!(tokens.contains(&Token::Ident("load.causes_walk".to_string())));
        assert!(tokens.contains(&Token::Ident("Pde$Status".to_string())));
        assert!(tokens.contains(&Token::Arrow));
        assert_eq!(*tokens.last().unwrap(), Token::Eof);
    }

    #[test]
    fn lexer_handles_comments() {
        let tokens = lex("incr a; // trailing\n# whole line\n done;").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("incr".into()),
                Token::Ident("a".into()),
                Token::Semi,
                Token::Ident("done".into()),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexer_rejects_unknown_characters() {
        assert!(matches!(lex("incr a @ b;"), Err(DslError::Lex { .. })));
        assert!(matches!(lex("a = b"), Err(DslError::Lex { .. })));
    }

    #[test]
    fn parser_builds_expected_ast() {
        let stmts = parse(FIGURE2).unwrap();
        assert_eq!(stmts.len(), 4);
        assert_eq!(stmts[0], Stmt::Incr("load.causes_walk".to_string()));
        assert_eq!(stmts[1], Stmt::Do("LookupPde$".to_string()));
        match &stmts[2] {
            Stmt::Switch { property, arms } => {
                assert_eq!(property, "Pde$Status");
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].0, "Hit");
                assert_eq!(arms[0].1, vec![Stmt::Pass]);
                assert_eq!(arms[1].1, vec![Stmt::Incr("load.pde$_miss".to_string())]);
            }
            other => panic!("expected switch, got {other:?}"),
        }
        assert_eq!(stmts[3], Stmt::Done);
    }

    #[test]
    fn parser_supports_block_arms_and_nested_switch() {
        let src = r#"
            switch STLBStatus {
                Hit => done;
                Miss => {
                    incr load.causes_walk;
                    switch Pde$Status {
                        Hit => pass;
                        Miss => incr load.pde$_miss
                    };
                }
            };
            done;
        "#;
        let stmts = parse(src).unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn parser_errors_are_reported() {
        assert!(matches!(parse("bogus x;"), Err(DslError::Parse { .. })));
        assert!(matches!(
            parse("switch P { };"),
            Err(DslError::Parse { .. })
        ));
        assert!(matches!(parse("incr;"), Err(DslError::Parse { .. })));
        assert!(matches!(
            parse("switch P Hit => pass;"),
            Err(DslError::Parse { .. })
        ));
    }

    #[test]
    fn compile_paper_example() {
        let mudd = compile_uop("fig2", FIGURE2, &pde_space()).unwrap();
        let paths = mudd.enumerate_paths().unwrap();
        assert_eq!(paths.len(), 2);
        let mut sigs: Vec<Vec<u32>> = paths
            .iter()
            .map(|p| p.signature().counts().to_vec())
            .collect();
        sigs.sort();
        assert_eq!(sigs, vec![vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn compile_auto_derives_counter_space() {
        let mudd = compile_auto("fig2", FIGURE2).unwrap();
        assert_eq!(mudd.counters().name(0), "load.causes_walk");
        assert_eq!(mudd.counters().name(1), "load.pde$_miss");
        assert_eq!(mudd.num_paths().unwrap(), 2);
    }

    #[test]
    fn compile_refined_model_from_figure6() {
        // Figure 6c: the PDE cache is looked up before the walk starts and the
        // request may abort, so pde$_miss can exceed causes_walk.
        let src = r#"
            do LookupPde$;
            switch Pde$Status {
                Hit => pass;
                Miss => incr load.pde$_miss
            };
            switch Abort {
                Yes => done;
                No => incr load.causes_walk
            };
            done;
        "#;
        let mudd = compile_uop("fig6c", src, &pde_space()).unwrap();
        let paths = mudd.enumerate_paths().unwrap();
        // Pde$Status in {Hit, Miss} x Abort in {Yes, No} = 4 paths.
        assert_eq!(paths.len(), 4);
        // The path with Miss + Yes has pde$_miss = 1, causes_walk = 0 — the
        // signature that violates constraint C of Figure 6b.
        assert!(paths.iter().any(|p| {
            p.signature().get(0) == 0
                && p.signature().get(1) == 1
                && p.property("Abort") == Some("Yes")
        }));
    }

    #[test]
    fn implicit_done_terminates_program() {
        let mudd = compile_uop("implicit", "incr load.causes_walk;", &pde_space()).unwrap();
        assert_eq!(mudd.num_paths().unwrap(), 1);
    }

    #[test]
    fn unreachable_code_is_rejected() {
        let err = compile_uop("bad", "done; incr load.causes_walk;", &pde_space()).unwrap_err();
        assert_eq!(err, DslError::UnreachableCode);
    }

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(
            compile_uop("bad", "   ", &pde_space()).unwrap_err(),
            DslError::EmptyProgram
        );
        assert_eq!(
            compile_auto("bad", "// nothing").unwrap_err(),
            DslError::EmptyProgram
        );
    }

    #[test]
    fn unknown_counter_is_reported() {
        let err = compile_uop("bad", "incr not.a.counter;", &pde_space()).unwrap_err();
        assert!(matches!(
            err,
            DslError::Graph(MuDdError::UnknownCounter { .. })
        ));
    }

    #[test]
    fn pass_only_arms_fall_through() {
        let src = r#"
            switch P { A => pass; B => pass };
            incr load.causes_walk;
        "#;
        let mudd = compile_uop("fallthrough", src, &pde_space()).unwrap();
        let paths = mudd.enumerate_paths().unwrap();
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.signature().get(0), 1);
        }
    }

    #[test]
    fn error_display() {
        let e = DslError::Parse {
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
        assert!(DslError::UnreachableCode
            .to_string()
            .contains("unreachable"));
        assert!(DslError::EmptyProgram.to_string().contains("empty"));
        assert!(DslError::Lex {
            position: 3,
            message: "x".into()
        }
        .to_string()
        .contains("byte 3"));
    }
}
