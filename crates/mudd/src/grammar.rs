//! A tiny term grammar for enumerating μDD structural choices.
//!
//! Model enumeration (the ruler/`enumo` idiom) needs three ingredients: a
//! *term* language over named atoms and holes, a `plug`-style substitution
//! step that expands every hole into each of a workload's candidate terms,
//! and metric-bounded iteration so the candidate space stays finite.  This
//! module provides exactly that, with deterministic ordering everywhere — a
//! [`Workload`] is an ordered list of terms, `plug` expands them in
//! left-to-right, choices-in-order fashion, and deduplication keeps the first
//! occurrence — so a grammar enumeration is a pure function of its inputs.
//!
//! The atoms carry no μDD semantics here; the model layer interprets them
//! (feature names, trigger ids, abort points) and builds diagrams from the
//! surviving terms.  Keeping the grammar purely syntactic makes the expansion
//! step reusable and trivially testable.
//!
//! ```
//! use counterpoint_mudd::grammar::{Term, Workload};
//! // lists of up to 2 features drawn from {a, b}
//! let seed = Workload::new(vec![Term::hole("fs")]);
//! let step = Workload::new(vec![
//!     Term::list(vec![Term::atom("a")]),
//!     Term::list(vec![Term::atom("b")]),
//!     Term::list(vec![Term::atom("a"), Term::hole("fs")]),
//!     Term::list(vec![Term::atom("b"), Term::hole("fs")]),
//! ]);
//! let terms = seed.plug_iterate("fs", &step, 2).closed();
//! assert_eq!(terms.len(), 6); // [a] [b] [a a] [a b] [b a] [b b]
//! ```

use std::fmt;

/// A term of the enumeration grammar: an atom (terminal symbol), a named
/// hole (substitution point), or a list of sub-terms.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// A terminal symbol, interpreted by the model layer.
    Atom(String),
    /// A substitution point, filled in by [`Workload::plug`].
    Hole(String),
    /// An ordered sequence of sub-terms.
    List(Vec<Term>),
}

impl Term {
    /// Shorthand for [`Term::Atom`].
    pub fn atom(name: impl Into<String>) -> Term {
        Term::Atom(name.into())
    }

    /// Shorthand for [`Term::Hole`].
    pub fn hole(name: impl Into<String>) -> Term {
        Term::Hole(name.into())
    }

    /// Shorthand for [`Term::List`].
    pub fn list(items: Vec<Term>) -> Term {
        Term::List(items)
    }

    /// Structural depth: atoms and holes are depth 1, a list is one more than
    /// its deepest element (an empty list is depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Term::Atom(_) | Term::Hole(_) => 1,
            Term::List(items) => 1 + items.iter().map(Term::depth).max().unwrap_or(0),
        }
    }

    /// Number of atoms in the term.
    pub fn num_atoms(&self) -> usize {
        match self {
            Term::Atom(_) => 1,
            Term::Hole(_) => 0,
            Term::List(items) => items.iter().map(Term::num_atoms).sum(),
        }
    }

    /// `true` if the term still contains a hole (of any name).
    pub fn has_holes(&self) -> bool {
        match self {
            Term::Atom(_) => false,
            Term::Hole(_) => true,
            Term::List(items) => items.iter().any(Term::has_holes),
        }
    }

    /// The atom names of the term, left to right.
    pub fn atoms(&self) -> Vec<&str> {
        fn walk<'t>(term: &'t Term, out: &mut Vec<&'t str>) {
            match term {
                Term::Atom(name) => out.push(name),
                Term::Hole(_) => {}
                Term::List(items) => items.iter().for_each(|t| walk(t, out)),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Every expansion of this term with each occurrence of hole `name`
    /// replaced by one of `choices`, in deterministic order: the choices are
    /// crossed per occurrence, with the leftmost occurrence varying slowest.
    pub fn plug(&self, name: &str, choices: &[Term]) -> Vec<Term> {
        match self {
            Term::Atom(_) => vec![self.clone()],
            Term::Hole(h) if h == name => choices.to_vec(),
            Term::Hole(_) => vec![self.clone()],
            Term::List(items) => {
                // Cross product of the per-item expansions, leftmost slowest.
                let expanded: Vec<Vec<Term>> =
                    items.iter().map(|t| t.plug(name, choices)).collect();
                let mut results: Vec<Vec<Term>> = vec![Vec::new()];
                for options in &expanded {
                    let mut next = Vec::with_capacity(results.len() * options.len());
                    for prefix in &results {
                        for option in options {
                            let mut seq = prefix.clone();
                            seq.push(option.clone());
                            next.push(seq);
                        }
                    }
                    results = next;
                }
                results.into_iter().map(Term::List).collect()
            }
        }
    }
}

impl fmt::Display for Term {
    /// A canonical, parse-stable rendering: atoms print bare, holes print as
    /// `?name`, lists as parenthesised space-separated sequences.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Atom(name) => write!(f, "{name}"),
            Term::Hole(name) => write!(f, "?{name}"),
            Term::List(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An ordered collection of terms — the unit the grammar layer iterates on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Workload {
    terms: Vec<Term>,
}

impl Workload {
    /// A workload over the given terms, in order.
    pub fn new(terms: Vec<Term>) -> Workload {
        Workload { terms }
    }

    /// A workload of bare atoms.
    pub fn from_atoms<S: AsRef<str>>(names: &[S]) -> Workload {
        Workload {
            terms: names.iter().map(|n| Term::atom(n.as_ref())).collect(),
        }
    }

    /// The terms, in workload order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Expands every term by plugging `choices` into hole `name` once.
    pub fn plug(&self, name: &str, choices: &Workload) -> Workload {
        Workload {
            terms: self
                .terms
                .iter()
                .flat_map(|t| t.plug(name, &choices.terms))
                .collect(),
        }
    }

    /// Metric-bounded iteration: plugs `choices` into hole `name` up to
    /// `rounds` times, keeping (in first-seen order) every hole-free term
    /// produced along the way.  Terms still carrying holes after the final
    /// round are dropped — the result is the closed language up to the depth
    /// the round budget reaches.
    pub fn plug_iterate(&self, name: &str, choices: &Workload, rounds: usize) -> Workload {
        let mut closed: Vec<Term> = self
            .terms
            .iter()
            .filter(|t| !t.has_holes())
            .cloned()
            .collect();
        let mut open: Vec<Term> = self
            .terms
            .iter()
            .filter(|t| t.has_holes())
            .cloned()
            .collect();
        for _ in 0..rounds {
            if open.is_empty() {
                break;
            }
            let expanded: Vec<Term> = open
                .iter()
                .flat_map(|t| t.plug(name, &choices.terms))
                .collect();
            open = Vec::new();
            for term in expanded {
                if term.has_holes() {
                    open.push(term);
                } else {
                    closed.push(term);
                }
            }
        }
        Workload { terms: closed }.dedup()
    }

    /// Keeps the terms satisfying `predicate`, preserving order.
    pub fn filter(&self, predicate: impl Fn(&Term) -> bool) -> Workload {
        Workload {
            terms: self
                .terms
                .iter()
                .filter(|t| predicate(t))
                .cloned()
                .collect(),
        }
    }

    /// Drops exact-duplicate terms, keeping the first occurrence of each.
    pub fn dedup(&self) -> Workload {
        let mut seen = std::collections::BTreeSet::new();
        Workload {
            terms: self
                .terms
                .iter()
                .filter(|t| seen.insert(t.to_string()))
                .cloned()
                .collect(),
        }
    }

    /// The hole-free terms, in order (holes have no model interpretation).
    pub fn closed(&self) -> Vec<Term> {
        self.terms
            .iter()
            .filter(|t| !t.has_holes())
            .cloned()
            .collect()
    }

    /// The cross product of two workloads as two-element lists, left operand
    /// varying slowest.
    pub fn cross(&self, other: &Workload) -> Workload {
        let mut terms = Vec::with_capacity(self.terms.len() * other.terms.len());
        for a in &self.terms {
            for b in &other.terms {
                terms.push(Term::List(vec![a.clone(), b.clone()]));
            }
        }
        Workload { terms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plug_is_a_per_occurrence_cross_product() {
        let t = Term::list(vec![Term::hole("x"), Term::atom("k"), Term::hole("x")]);
        let out = t.plug("x", &[Term::atom("a"), Term::atom("b")]);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].to_string(), "(a k a)");
        assert_eq!(out[1].to_string(), "(a k b)");
        assert_eq!(out[2].to_string(), "(b k a)");
        assert_eq!(out[3].to_string(), "(b k b)");
    }

    #[test]
    fn plug_ignores_other_holes() {
        let t = Term::hole("y");
        assert_eq!(t.plug("x", &[Term::atom("a")]), vec![Term::hole("y")]);
    }

    #[test]
    fn metrics_measure_structure() {
        let t = Term::list(vec![
            Term::atom("a"),
            Term::list(vec![Term::atom("b"), Term::hole("h")]),
        ]);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.num_atoms(), 2);
        assert!(t.has_holes());
        assert_eq!(t.atoms(), vec!["a", "b"]);
    }

    #[test]
    fn plug_iterate_closes_recursive_productions() {
        // fs ::= (f) | (f fs)  over  f ∈ {a, b}
        let seed = Workload::new(vec![Term::hole("fs")]);
        let step = Workload::new(vec![
            Term::list(vec![Term::atom("a")]),
            Term::list(vec![Term::atom("b")]),
            Term::list(vec![Term::atom("a"), Term::hole("fs")]),
            Term::list(vec![Term::atom("b"), Term::hole("fs")]),
        ]);
        let depth2 = seed.plug_iterate("fs", &step, 2);
        // 2 singletons + 4 pairs; deeper terms still hold holes and are dropped.
        assert_eq!(depth2.len(), 6);
        assert!(depth2.terms().iter().all(|t| !t.has_holes()));
        let depth3 = seed.plug_iterate("fs", &step, 3);
        assert_eq!(depth3.len(), 6 + 8);
    }

    #[test]
    fn iteration_is_deterministic_and_deduplicated() {
        let seed = Workload::new(vec![Term::hole("x"), Term::hole("x")]);
        let step = Workload::from_atoms(&["a", "b"]);
        let once = seed.plug_iterate("x", &step, 1);
        // The duplicate seed's expansions collapse; first-seen order holds.
        assert_eq!(once.len(), 2);
        assert_eq!(once.terms()[0].to_string(), "a");
        assert_eq!(once.terms()[1].to_string(), "b");
        assert_eq!(once, seed.plug_iterate("x", &step, 1));
    }

    #[test]
    fn filter_and_cross_preserve_order() {
        let a = Workload::from_atoms(&["x", "y"]);
        let b = Workload::from_atoms(&["1", "2"]);
        let crossed = a.cross(&b);
        let rendered: Vec<String> = crossed.terms().iter().map(Term::to_string).collect();
        assert_eq!(rendered, vec!["(x 1)", "(x 2)", "(y 1)", "(y 2)"]);
        let only_y = crossed.filter(|t| t.atoms().contains(&"y"));
        assert_eq!(only_y.len(), 2);
    }

    #[test]
    fn display_renders_canonically() {
        let t = Term::list(vec![Term::atom("a"), Term::hole("h"), Term::list(vec![])]);
        assert_eq!(t.to_string(), "(a ?h ())");
    }
}
