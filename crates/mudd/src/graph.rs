//! The μDD graph: nodes, edges, validation and μpath enumeration.

use crate::counterspace::CounterSpace;
use crate::path::MuPath;
use crate::signature::CounterSignature;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node within one μDD.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index of the node.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The kind of a μDD node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// The unique entry node a μop starts from.
    Start,
    /// A terminal node; reaching it completes a μpath.
    End,
    /// A standard microarchitectural event (green box in the paper's figures),
    /// e.g. `LookupPde$` or `InitializePTW`.
    Event(String),
    /// An HEC increment (blue pill), holding the counter's index in the model's
    /// [`CounterSpace`].
    Counter(usize),
    /// A decision over a microarchitectural property (e.g. `Pde$Status`); outgoing
    /// causality edges are labelled with the property's possible values.
    Decision(String),
}

impl NodeKind {
    /// Returns `true` for [`NodeKind::End`].
    pub fn is_end(&self) -> bool {
        matches!(self, NodeKind::End)
    }

    /// Returns `true` for [`NodeKind::Decision`].
    pub fn is_decision(&self) -> bool {
        matches!(self, NodeKind::Decision(_))
    }
}

/// Errors raised while building or analysing a μDD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MuDdError {
    /// The μDD has no `Start` node.
    NoStartNode,
    /// The μDD has more than one `Start` node.
    MultipleStartNodes,
    /// A counter node refers to a counter name missing from the model's space.
    UnknownCounter {
        /// The name that failed to resolve.
        name: String,
        /// Every name the counter space does know, in space order.
        available: Vec<String>,
    },
    /// A decision node has no value appearing on an outgoing edge, or a
    /// non-decision node has a labelled outgoing edge.
    BadEdgeLabel {
        /// The offending node.
        node: usize,
    },
    /// Two outgoing edges of a decision node carry the same property value.
    DuplicateDecisionLabel {
        /// The decision node.
        node: usize,
        /// The repeated label.
        label: String,
    },
    /// A non-decision, non-end node has a number of outgoing causality edges other
    /// than one.
    BadFanout {
        /// The offending node.
        node: usize,
        /// The number of outgoing causality edges found.
        found: usize,
    },
    /// A node with no outgoing causality edges is not an `End` node.
    DeadEnd {
        /// The offending node.
        node: usize,
    },
    /// The causality edges contain a cycle (μDDs must be DAGs).
    Cycle,
    /// A node cannot be reached from the start node along causality edges.
    Unreachable {
        /// The unreachable node.
        node: usize,
    },
    /// An edge refers to a node id that does not exist.
    InvalidNode {
        /// The offending node index.
        node: usize,
    },
    /// μpath enumeration exceeded the configured limit.
    PathExplosion {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for MuDdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MuDdError::NoStartNode => write!(f, "μDD has no start node"),
            MuDdError::MultipleStartNodes => write!(f, "μDD has more than one start node"),
            MuDdError::UnknownCounter { name, available } => {
                write!(f, "unknown counter {name} (space has {})", available.len())
            }
            MuDdError::BadEdgeLabel { node } => {
                write!(f, "node {node} has an invalid edge labelling")
            }
            MuDdError::DuplicateDecisionLabel { node, label } => {
                write!(f, "decision node {node} has duplicate label {label}")
            }
            MuDdError::BadFanout { node, found } => {
                write!(
                    f,
                    "node {node} has {found} outgoing causality edges, expected exactly 1"
                )
            }
            MuDdError::DeadEnd { node } => {
                write!(
                    f,
                    "node {node} has no outgoing causality edges but is not an end node"
                )
            }
            MuDdError::Cycle => write!(f, "causality edges contain a cycle"),
            MuDdError::Unreachable { node } => write!(f, "node {node} is unreachable from start"),
            MuDdError::InvalidNode { node } => write!(f, "edge refers to non-existent node {node}"),
            MuDdError::PathExplosion { limit } => {
                write!(f, "μpath enumeration exceeded the limit of {limit} paths")
            }
        }
    }
}

impl std::error::Error for MuDdError {}

/// A validated μpath Decision Diagram.
///
/// Construct with [`crate::MuDdBuilder`] or compile from the DSL with
/// [`crate::dsl::compile_uop`].  Once built, a μDD is immutable; analysis revolves
/// around [`MuDd::enumerate_paths`].
#[derive(Clone, Debug)]
pub struct MuDd {
    pub(crate) name: String,
    pub(crate) counters: CounterSpace,
    pub(crate) nodes: Vec<NodeKind>,
    /// Outgoing causality adjacency: `(target, optional property-value label)`.
    pub(crate) causal_out: Vec<Vec<(usize, Option<String>)>>,
    /// Happens-before edges (kept for documentation/rendering; not used by path
    /// enumeration, which already follows causality order).
    pub(crate) happens_before: Vec<(usize, usize)>,
    pub(crate) start: usize,
    pub(crate) max_paths: usize,
}

/// Where a μpath traversal deposits completed paths: full [`MuPath`]s for
/// [`MuDd::enumerate_paths`], or bare counter signatures for
/// [`MuDd::path_signatures`] (which skips the per-path trail/assignment
/// clones).
enum PathSink<'a> {
    Paths(&'a mut Vec<MuPath>),
    Signatures(&'a mut Vec<CounterSignature>),
}

impl PathSink<'_> {
    fn len(&self) -> usize {
        match self {
            PathSink::Paths(v) => v.len(),
            PathSink::Signatures(v) => v.len(),
        }
    }

    fn record(
        &mut self,
        trail: &[NodeId],
        assignment: &BTreeMap<String, String>,
        signature: &CounterSignature,
    ) {
        match self {
            PathSink::Paths(v) => v.push(MuPath::new(
                trail.to_vec(),
                assignment.clone(),
                signature.clone(),
            )),
            PathSink::Signatures(v) => v.push(signature.clone()),
        }
    }
}

impl MuDd {
    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The counter space the μDD is expressed over.
    pub fn counters(&self) -> &CounterSpace {
        &self.counters
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The kind of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node_kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.0]
    }

    /// The start node.
    pub fn start(&self) -> NodeId {
        NodeId(self.start)
    }

    /// The happens-before edges.
    pub fn happens_before_edges(&self) -> &[(usize, usize)] {
        &self.happens_before
    }

    /// Total number of causality edges.
    pub fn num_causal_edges(&self) -> usize {
        self.causal_out.iter().map(Vec::len).sum()
    }

    /// Returns a copy of this μDD whose path-enumeration limit is `limit`.
    ///
    /// The structure is unchanged; only the budget consulted by
    /// [`MuDd::enumerate_paths`] and friends moves.  Enumeration-driven
    /// callers use this to impose a per-candidate path metric far below the
    /// builder default.
    pub fn with_max_paths(&self, limit: usize) -> MuDd {
        let mut bounded = self.clone();
        bounded.max_paths = limit;
        bounded
    }

    /// Enumerates every μpath of the diagram.
    ///
    /// A μpath is produced for every consistent assignment of property values along
    /// a start-to-end traversal; its counter signature records the HEC increments
    /// encountered.  Traversals that reach a decision whose property was already
    /// assigned a value with no matching outgoing edge are contradictory and produce
    /// no μpath.
    ///
    /// # Errors
    ///
    /// Returns [`MuDdError::PathExplosion`] if more than the configured maximum
    /// number of paths (default 1 048 576) would be produced.
    pub fn enumerate_paths(&self) -> Result<Vec<MuPath>, MuDdError> {
        let mut paths = Vec::new();
        let mut signature = CounterSignature::zero(self.counters.len());
        let mut node_trail = Vec::new();
        let mut assignment = BTreeMap::new();
        self.visit(
            self.start,
            &mut assignment,
            &mut signature,
            &mut node_trail,
            &mut PathSink::Paths(&mut paths),
        )?;
        Ok(paths)
    }

    fn visit(
        &self,
        node: usize,
        assignment: &mut BTreeMap<String, String>,
        signature: &mut CounterSignature,
        trail: &mut Vec<NodeId>,
        sink: &mut PathSink<'_>,
    ) -> Result<(), MuDdError> {
        trail.push(NodeId(node));
        let mut incremented = None;
        match &self.nodes[node] {
            NodeKind::Counter(idx) => {
                signature.increment(*idx);
                incremented = Some(*idx);
            }
            NodeKind::End => {
                if sink.len() >= self.max_paths {
                    return Err(MuDdError::PathExplosion {
                        limit: self.max_paths,
                    });
                }
                sink.record(trail, assignment, signature);
                trail.pop();
                return Ok(());
            }
            _ => {}
        }

        let result = match &self.nodes[node] {
            NodeKind::Decision(property) => {
                if assignment.contains_key(property) {
                    // Property already fixed earlier in the traversal: follow the
                    // matching edge if it exists, otherwise the path is
                    // contradictory and contributes nothing.
                    let value = assignment.get(property).map(String::as_str);
                    match self.causal_out[node]
                        .iter()
                        .find(|(_, label)| label.as_deref() == value)
                        .map(|&(target, _)| target)
                    {
                        Some(target) => self.visit(target, assignment, signature, trail, sink),
                        None => Ok(()),
                    }
                } else {
                    // The assignment is extended in place and unwound after
                    // each branch — the enumeration shares one map instead of
                    // cloning it per decision edge.
                    let mut result = Ok(());
                    for i in 0..self.causal_out[node].len() {
                        let (target, label) = &self.causal_out[node][i];
                        let target = *target;
                        let value = label
                            .clone()
                            .expect("validated: decision edges are labelled");
                        assignment.insert(property.clone(), value);
                        result = self.visit(target, assignment, signature, trail, sink);
                        assignment.remove(property);
                        if result.is_err() {
                            break;
                        }
                    }
                    result
                }
            }
            _ => {
                let (target, _) = self.causal_out[node][0];
                self.visit(target, assignment, signature, trail, sink)
            }
        };

        if let Some(idx) = incremented {
            // Undo the increment on backtrack.
            signature.decrement(idx);
        }
        trail.pop();
        result
    }

    /// Convenience: the counter signatures of all μpaths (not deduplicated).
    ///
    /// Runs the same traversal as [`MuDd::enumerate_paths`] but records only
    /// each path's counter signature, skipping the per-path trail and
    /// assignment clones — the fast path for model-cone construction.
    ///
    /// # Errors
    ///
    /// Propagates [`MuDdError::PathExplosion`] from path enumeration.
    pub fn path_signatures(&self) -> Result<Vec<CounterSignature>, MuDdError> {
        let mut signatures = Vec::new();
        let mut signature = CounterSignature::zero(self.counters.len());
        let mut node_trail = Vec::new();
        let mut assignment = BTreeMap::new();
        self.visit(
            self.start,
            &mut assignment,
            &mut signature,
            &mut node_trail,
            &mut PathSink::Signatures(&mut signatures),
        )?;
        Ok(signatures)
    }

    /// Number of μpaths (equal to `enumerate_paths()?.len()`).
    ///
    /// # Errors
    ///
    /// Propagates [`MuDdError::PathExplosion`] from path enumeration.
    pub fn num_paths(&self) -> Result<usize, MuDdError> {
        Ok(self.enumerate_paths()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MuDdBuilder;

    fn pde_space() -> CounterSpace {
        CounterSpace::new(&["load.causes_walk", "load.pde$_miss"])
    }

    /// Figure 6a of the paper: walker is initialised before the PDE cache lookup.
    fn figure6a() -> MuDd {
        let space = pde_space();
        let mut b = MuDdBuilder::new("fig6a", &space);
        let start = b.start();
        let causes = b.counter("load.causes_walk");
        let lookup = b.event("LookupPde$");
        let status = b.decision("Pde$Status");
        let miss = b.counter("load.pde$_miss");
        let walk = b.event("StartWalk");
        let end = b.end();
        b.causal(start, causes);
        b.causal(causes, lookup);
        b.causal(lookup, status);
        b.causal_labeled(status, miss, "Miss");
        b.causal_labeled(status, walk, "Hit");
        b.causal(miss, walk);
        b.causal(walk, end);
        b.build().unwrap()
    }

    #[test]
    fn figure6a_has_two_paths() {
        let mudd = figure6a();
        assert_eq!(mudd.name(), "fig6a");
        let paths = mudd.enumerate_paths().unwrap();
        assert_eq!(paths.len(), 2);
        let sigs: Vec<Vec<u32>> = paths
            .iter()
            .map(|p| p.signature().counts().to_vec())
            .collect();
        assert!(sigs.contains(&vec![1, 0])); // Hit path
        assert!(sigs.contains(&vec![1, 1])); // Miss path
    }

    #[test]
    fn path_assignments_record_decisions() {
        let mudd = figure6a();
        let paths = mudd.enumerate_paths().unwrap();
        let miss_path = paths
            .iter()
            .find(|p| p.signature().get(1) == 1)
            .expect("miss path exists");
        assert_eq!(
            miss_path.assignment().get("Pde$Status"),
            Some(&"Miss".to_string())
        );
    }

    #[test]
    fn repeated_decisions_stay_consistent() {
        // Two decisions over the same property: only consistent combinations are
        // enumerated (2 paths, not 4).
        let space = CounterSpace::new(&["c.first", "c.second"]);
        let mut b = MuDdBuilder::new("consistency", &space);
        let start = b.start();
        let d1 = b.decision("P");
        let c1 = b.counter("c.first");
        let join = b.event("Join");
        let d2 = b.decision("P");
        let c2 = b.counter("c.second");
        let end1 = b.end();
        let end2 = b.end();
        b.causal(start, d1);
        b.causal_labeled(d1, c1, "Yes");
        b.causal_labeled(d1, join, "No");
        b.causal(c1, join);
        b.causal(join, d2);
        b.causal_labeled(d2, c2, "Yes");
        b.causal_labeled(d2, end1, "No");
        b.causal(c2, end2);
        let mudd = b.build().unwrap();
        let paths = mudd.enumerate_paths().unwrap();
        assert_eq!(paths.len(), 2);
        let sigs: Vec<Vec<u32>> = paths
            .iter()
            .map(|p| p.signature().counts().to_vec())
            .collect();
        assert!(sigs.contains(&vec![1, 1])); // P = Yes on both decisions
        assert!(sigs.contains(&vec![0, 0])); // P = No on both decisions
    }

    #[test]
    fn contradictory_assignment_prunes_path() {
        // Second decision only has a "Yes" edge; the P = No traversal is pruned.
        let space = CounterSpace::new(&["c.a"]);
        let mut b = MuDdBuilder::new("prune", &space);
        let start = b.start();
        let d1 = b.decision("P");
        let mid = b.event("Mid");
        let d2 = b.decision("P");
        let c = b.counter("c.a");
        let end = b.end();
        b.causal(start, d1);
        b.causal_labeled(d1, mid, "Yes");
        b.causal_labeled(d1, d2, "No");
        b.causal(mid, d2);
        b.causal_labeled(d2, c, "Yes");
        b.causal(c, end);
        let mudd = b.build().unwrap();
        let paths = mudd.enumerate_paths().unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].assignment().get("P"), Some(&"Yes".to_string()));
    }

    #[test]
    fn counter_increments_do_not_leak_across_branches() {
        // A diamond where only one branch increments; the other branch's signature
        // must stay clean even though DFS visits the incrementing branch first.
        let space = CounterSpace::new(&["c.x"]);
        let mut b = MuDdBuilder::new("diamond", &space);
        let start = b.start();
        let d = b.decision("Branch");
        let c = b.counter("c.x");
        let end1 = b.end();
        let end2 = b.end();
        b.causal(start, d);
        b.causal_labeled(d, c, "Taken");
        b.causal_labeled(d, end2, "Skipped");
        b.causal(c, end1);
        let mudd = b.build().unwrap();
        let paths = mudd.enumerate_paths().unwrap();
        assert_eq!(paths.len(), 2);
        let mut totals: Vec<u64> = paths.iter().map(|p| p.signature().total()).collect();
        totals.sort();
        assert_eq!(totals, vec![0, 1]);
    }

    #[test]
    fn exponential_path_count_from_compact_dag() {
        // n consecutive binary decisions, each incrementing a distinct counter on
        // one arm: the DAG has O(n) nodes but 2^n μpaths (the paper's motivation for
        // the DAG representation).
        let n = 10usize;
        let names: Vec<String> = (0..n).map(|i| format!("c.{i}")).collect();
        let space = CounterSpace::new(&names);
        let mut b = MuDdBuilder::new("expo", &space);
        let start = b.start();
        let mut prev = start;
        for i in 0..n {
            let d = b.decision(&format!("P{i}"));
            let c = b.counter(&format!("c.{i}"));
            let join = b.event(&format!("Join{i}"));
            b.causal(prev, d);
            b.causal_labeled(d, c, "Yes");
            b.causal_labeled(d, join, "No");
            b.causal(c, join);
            prev = join;
        }
        let end = b.end();
        b.causal(prev, end);
        let mudd = b.build().unwrap();
        assert_eq!(mudd.num_paths().unwrap(), 1 << n);
        assert!(mudd.num_nodes() < 4 * n + 3);
    }

    #[test]
    fn path_explosion_is_reported() {
        let n = 12usize;
        let names: Vec<String> = (0..n).map(|i| format!("c.{i}")).collect();
        let space = CounterSpace::new(&names);
        let mut b = MuDdBuilder::new("explode", &space);
        b.set_max_paths(100);
        let start = b.start();
        let mut prev = start;
        for i in 0..n {
            let d = b.decision(&format!("P{i}"));
            let c = b.counter(&format!("c.{i}"));
            let join = b.event(&format!("Join{i}"));
            b.causal(prev, d);
            b.causal_labeled(d, c, "Yes");
            b.causal_labeled(d, join, "No");
            b.causal(c, join);
            prev = join;
        }
        let end = b.end();
        b.causal(prev, end);
        let mudd = b.build().unwrap();
        assert_eq!(
            mudd.enumerate_paths().unwrap_err(),
            MuDdError::PathExplosion { limit: 100 }
        );
    }

    #[test]
    fn accessors_expose_structure() {
        let mudd = figure6a();
        assert_eq!(mudd.counters().len(), 2);
        assert_eq!(mudd.num_nodes(), 7);
        assert_eq!(mudd.num_causal_edges(), 7);
        assert!(matches!(mudd.node_kind(mudd.start()), NodeKind::Start));
        assert!(mudd.happens_before_edges().is_empty());
    }

    #[test]
    fn error_display_messages() {
        assert!(MuDdError::NoStartNode.to_string().contains("no start"));
        assert!(MuDdError::Cycle.to_string().contains("cycle"));
        let unknown = MuDdError::UnknownCounter {
            name: "x".into(),
            available: vec!["a".into(), "b".into()],
        };
        assert!(unknown.to_string().contains("unknown counter x"));
        assert!(unknown.to_string().contains('2'));
        assert!(MuDdError::PathExplosion { limit: 5 }
            .to_string()
            .contains('5'));
    }
}
