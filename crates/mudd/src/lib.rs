//! μpath Decision Diagrams (μDDs).
//!
//! A μDD is CounterPoint's representation of an expert's mental model of a piece of
//! the microarchitecture (paper, Section 3).  It is a directed acyclic graph whose
//! nodes are microarchitectural *events*, hardware-event-counter *increments*, and
//! *decisions* over microarchitectural properties (e.g. `Pde$Status ∈ {Hit, Miss}`);
//! whose *causality* edges describe how a μop flows through the structure; and whose
//! *happens-before* edges record additional ordering.  Every root-to-end traversal
//! that assigns each property a single consistent value is a *μpath*, and each μpath
//! carries a *counter signature* — the vector of HEC increments a μop following it
//! produces.  The set of signatures generates the model cone.
//!
//! This crate provides:
//!
//! * [`CounterSpace`] — the ordered set of HEC names a model ranges over,
//! * [`CounterSignature`] — per-μpath HEC increment vectors,
//! * [`MuDd`] / [`MuDdBuilder`] — the graph itself, with validation and μpath
//!   enumeration,
//! * [`MuPath`] — an enumerated path with its property assignment and signature,
//! * [`dsl`] — the small domain-specific language from Figure 2 of the paper
//!   (`incr` / `do` / `switch` / `pass` / `done`) and its compiler to μDDs,
//! * [`grammar`] — a term grammar with `plug`-style substitution and
//!   metric-bounded iteration, the substrate for enumerating model families.
//!
//! # Example
//!
//! The running example from the paper's Figure 2/6: a load μop initialises the page
//! table walker (incrementing `load.causes_walk`), then looks up the PDE cache and
//! increments `load.pde$_miss` on a miss.
//!
//! ```
//! use counterpoint_mudd::dsl::compile_uop;
//! use counterpoint_mudd::CounterSpace;
//!
//! let counters = CounterSpace::new(&["load.causes_walk", "load.pde$_miss"]);
//! let src = r#"
//!     incr load.causes_walk;
//!     do LookupPde$;
//!     switch Pde$Status {
//!         Hit => pass;
//!         Miss => incr load.pde$_miss
//!     };
//!     done;
//! "#;
//! let mudd = compile_uop("pde_example", src, &counters).unwrap();
//! let paths = mudd.enumerate_paths().unwrap();
//! assert_eq!(paths.len(), 2); // Hit and Miss
//! ```

pub mod builder;
pub mod counterspace;
pub mod dsl;
pub mod grammar;
pub mod graph;
pub mod path;
pub mod signature;

pub use builder::MuDdBuilder;
pub use counterspace::CounterSpace;
pub use graph::{MuDd, MuDdError, NodeId, NodeKind};
pub use path::MuPath;
pub use signature::CounterSignature;
