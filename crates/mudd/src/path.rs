//! Enumerated μpaths.

use crate::counterspace::CounterSpace;
use crate::graph::NodeId;
use crate::signature::CounterSignature;
use std::collections::BTreeMap;

/// A single microarchitectural execution path (μpath) through a μDD.
///
/// A μpath records the nodes visited, the property assignment that selected it at
/// each decision node, and its counter signature — the HEC increments one μop
/// following the path produces (paper, Section 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MuPath {
    nodes: Vec<NodeId>,
    assignment: BTreeMap<String, String>,
    signature: CounterSignature,
}

impl MuPath {
    pub(crate) fn new(
        nodes: Vec<NodeId>,
        assignment: BTreeMap<String, String>,
        signature: CounterSignature,
    ) -> MuPath {
        MuPath {
            nodes,
            assignment,
            signature,
        }
    }

    /// The nodes visited, in traversal order (start first, end last).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The property values chosen at decision nodes along the path.
    pub fn assignment(&self) -> &BTreeMap<String, String> {
        &self.assignment
    }

    /// The value assigned to a property on this path, if the path passed through a
    /// decision on it.
    pub fn property(&self, name: &str) -> Option<&str> {
        self.assignment.get(name).map(String::as_str)
    }

    /// The path's counter signature.
    pub fn signature(&self) -> &CounterSignature {
        &self.signature
    }

    /// Consumes the path, returning its signature.
    pub fn into_signature(self) -> CounterSignature {
        self.signature
    }

    /// Number of nodes on the path.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the path has no nodes (never produced by enumeration, but
    /// required for a well-behaved `len`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Renders the path's decisions and signature, e.g. for violation reports
    /// (cf. Figure 6d of the paper).
    pub fn render(&self, space: &CounterSpace) -> String {
        let decisions: Vec<String> = self
            .assignment
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let decisions = if decisions.is_empty() {
            "(no decisions)".to_string()
        } else {
            decisions.join(", ")
        };
        format!("[{}] -> {}", decisions, self.signature.render(space))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_path() -> MuPath {
        let mut assignment = BTreeMap::new();
        assignment.insert("Pde$Status".to_string(), "Miss".to_string());
        MuPath::new(
            vec![NodeId(0), NodeId(2), NodeId(5)],
            assignment,
            CounterSignature::from_counts(vec![1, 1]),
        )
    }

    #[test]
    fn accessors() {
        let p = sample_path();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.nodes()[1], NodeId(2));
        assert_eq!(p.property("Pde$Status"), Some("Miss"));
        assert_eq!(p.property("Other"), None);
        assert_eq!(p.signature().total(), 2);
        assert_eq!(p.clone().into_signature().counts(), &[1, 1]);
    }

    #[test]
    fn render_shows_decisions_and_counters() {
        let p = sample_path();
        let space = CounterSpace::new(&["load.causes_walk", "load.pde$_miss"]);
        let rendered = p.render(&space);
        assert!(rendered.contains("Pde$Status=Miss"));
        assert!(rendered.contains("load.causes_walk"));
        assert!(rendered.contains("load.pde$_miss"));
    }

    #[test]
    fn render_without_decisions() {
        let p = MuPath::new(vec![NodeId(0)], BTreeMap::new(), CounterSignature::zero(1));
        let space = CounterSpace::new(&["c"]);
        assert_eq!(p.render(&space), "[(no decisions)] -> ∅");
    }
}
