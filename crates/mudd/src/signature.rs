//! μpath counter signatures.

use crate::counterspace::CounterSpace;
use crate::graph::MuDdError;
use counterpoint_numeric::RatVector;
use std::fmt;
use std::ops::Add;

/// The counter signature of a μpath: how many times each HEC is incremented by one
/// μop traversing that path (paper, Section 3, "μpath counter signatures").
///
/// Signatures are indexed by a [`CounterSpace`]; component `i` is the increment
/// count of counter `i`.
///
/// ```
/// use counterpoint_mudd::{CounterSignature, CounterSpace};
/// let space = CounterSpace::new(&["load.causes_walk", "load.pde$_miss"]);
/// let mut sig = CounterSignature::zero(space.len());
/// sig.increment(0);
/// sig.increment(1);
/// sig.increment(1);
/// assert_eq!(sig.get(1), 2);
/// assert_eq!(sig.total(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CounterSignature {
    counts: Vec<u32>,
}

impl CounterSignature {
    /// The all-zero signature over `dim` counters.
    pub fn zero(dim: usize) -> CounterSignature {
        CounterSignature {
            counts: vec![0; dim],
        }
    }

    /// Builds a signature from explicit per-counter counts.
    pub fn from_counts(counts: Vec<u32>) -> CounterSignature {
        CounterSignature { counts }
    }

    /// Builds a signature from `(name, count)` pairs resolved against a counter
    /// space.
    ///
    /// # Panics
    ///
    /// Panics if a name is not in the space.  Mechanically generated entries
    /// should use [`CounterSignature::try_from_named`] instead.
    pub fn from_named(space: &CounterSpace, entries: &[(&str, u32)]) -> CounterSignature {
        CounterSignature::try_from_named(space, entries).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`CounterSignature::from_named`], but an unresolvable name is
    /// reported as [`MuDdError::UnknownCounter`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`MuDdError::UnknownCounter`] for the first name missing from
    /// the space.
    pub fn try_from_named(
        space: &CounterSpace,
        entries: &[(&str, u32)],
    ) -> Result<CounterSignature, MuDdError> {
        let mut sig = CounterSignature::zero(space.len());
        for (name, count) in entries {
            let idx = space
                .index_of(name)
                .ok_or_else(|| space.unknown_counter(name))?;
            sig.counts[idx] += count;
        }
        Ok(sig)
    }

    /// Number of counters.
    pub fn dimension(&self) -> usize {
        self.counts.len()
    }

    /// Increment counter `idx` by one.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn increment(&mut self, idx: usize) {
        self.counts[idx] += 1;
    }

    /// Add `by` to counter `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn increment_by(&mut self, idx: usize, by: u32) {
        self.counts[idx] += by;
    }

    /// Decrement counter `idx` by one — the backtracking inverse of
    /// [`increment`](CounterSignature::increment) used during μpath
    /// enumeration.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the count is already zero.
    pub fn decrement(&mut self, idx: usize) {
        assert!(
            self.counts[idx] > 0,
            "cannot decrement counter {idx} below zero"
        );
        self.counts[idx] -= 1;
    }

    /// The increment count of counter `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: usize) -> u32 {
        self.counts[idx]
    }

    /// The raw count vector.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total number of HEC increments along the path.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Returns `true` if no counter is incremented.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Converts to an exact rational vector (the form the model-cone machinery
    /// consumes).
    pub fn to_rat_vector(&self) -> RatVector {
        self.counts
            .iter()
            .map(|&c| counterpoint_numeric::Rational::from(c))
            .collect()
    }

    /// Converts to an `f64` vector (the form the LP feasibility test consumes).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// Projects the signature onto a subset of counters given by their indices in
    /// this signature's space (in the order of `indices`).
    pub fn project(&self, indices: &[usize]) -> CounterSignature {
        CounterSignature {
            counts: indices.iter().map(|&i| self.counts[i]).collect(),
        }
    }

    /// Renders the signature as `name×count` terms against a counter space, for
    /// reports and debugging.
    ///
    /// # Panics
    ///
    /// Panics if the space dimension differs.
    pub fn render(&self, space: &CounterSpace) -> String {
        assert_eq!(
            space.len(),
            self.dimension(),
            "counter space dimension mismatch"
        );
        let terms: Vec<String> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                if c == 1 {
                    space.name(i).to_string()
                } else {
                    format!("{c}×{}", space.name(i))
                }
            })
            .collect();
        if terms.is_empty() {
            "∅".to_string()
        } else {
            terms.join(" + ")
        }
    }
}

impl Add for &CounterSignature {
    type Output = CounterSignature;
    fn add(self, other: &CounterSignature) -> CounterSignature {
        assert_eq!(
            self.dimension(),
            other.dimension(),
            "signature dimension mismatch"
        );
        CounterSignature {
            counts: self
                .counts
                .iter()
                .zip(other.counts.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl fmt::Debug for CounterSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CounterSignature{:?}", self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_increment() {
        let mut s = CounterSignature::zero(3);
        assert!(s.is_zero());
        assert_eq!(s.dimension(), 3);
        s.increment(1);
        s.increment_by(2, 4);
        assert_eq!(s.get(0), 0);
        assert_eq!(s.get(1), 1);
        assert_eq!(s.get(2), 4);
        assert_eq!(s.total(), 5);
        assert!(!s.is_zero());
        assert_eq!(s.counts(), &[0, 1, 4]);
    }

    #[test]
    fn from_named_resolves_indices() {
        let space = CounterSpace::new(&["a", "b", "c"]);
        let s = CounterSignature::from_named(&space, &[("c", 2), ("a", 1)]);
        assert_eq!(s.counts(), &[1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "unknown counter")]
    fn from_named_unknown_counter_panics() {
        let space = CounterSpace::new(&["a"]);
        let _ = CounterSignature::from_named(&space, &[("b", 1)]);
    }

    #[test]
    fn try_from_named_reports_typed_error() {
        let space = CounterSpace::new(&["a", "b"]);
        let ok = CounterSignature::try_from_named(&space, &[("b", 3)]).unwrap();
        assert_eq!(ok.counts(), &[0, 3]);
        let err = CounterSignature::try_from_named(&space, &[("bogus.counter", 1)]).unwrap_err();
        match err {
            MuDdError::UnknownCounter { name, available } => {
                assert_eq!(name, "bogus.counter");
                assert_eq!(available, vec!["a", "b"]);
            }
            other => panic!("expected UnknownCounter, got {other:?}"),
        }
    }

    #[test]
    fn conversion_to_vectors() {
        let s = CounterSignature::from_counts(vec![1, 0, 3]);
        assert_eq!(s.to_f64_vec(), vec![1.0, 0.0, 3.0]);
        let rv = s.to_rat_vector();
        assert_eq!(rv.len(), 3);
        assert_eq!(rv[2], counterpoint_numeric::Rational::from(3));
    }

    #[test]
    fn addition_is_componentwise() {
        let a = CounterSignature::from_counts(vec![1, 2]);
        let b = CounterSignature::from_counts(vec![3, 0]);
        assert_eq!((&a + &b).counts(), &[4, 2]);
    }

    #[test]
    fn projection_selects_and_orders() {
        let s = CounterSignature::from_counts(vec![5, 6, 7]);
        let p = s.project(&[2, 0]);
        assert_eq!(p.counts(), &[7, 5]);
    }

    #[test]
    fn render_lists_nonzero_counters() {
        let space = CounterSpace::new(&["a", "b", "c"]);
        let s = CounterSignature::from_counts(vec![1, 0, 2]);
        assert_eq!(s.render(&space), "a + 2×c");
        assert_eq!(CounterSignature::zero(3).render(&space), "∅");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_addition_panics() {
        let a = CounterSignature::zero(2);
        let b = CounterSignature::zero(3);
        let _ = &a + &b;
    }
}
