//! Cyclic Jacobi eigensolver for symmetric matrices.
//!
//! CounterPoint orients every counter confidence region along the principal axes of
//! the sample-mean covariance matrix (paper, Appendix A).  The covariance matrix is
//! symmetric positive semi-definite and small (one row per counter), which is the
//! textbook use case for the Jacobi rotation method: it is simple, numerically
//! robust, and produces orthonormal eigenvectors directly.

use crate::fmat::{FMatrix, FVector};

/// Result of a symmetric eigendecomposition: `matrix = V * diag(values) * V^T`.
///
/// Eigenpairs are sorted by descending eigenvalue; `vectors[k]` is the unit
/// eigenvector associated with `values[k]`.
#[derive(Clone, Debug)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, `vectors[k]` corresponding to `values[k]`.
    pub vectors: Vec<FVector>,
}

impl EigenDecomposition {
    /// Reconstructs the original matrix (useful for testing).
    pub fn reconstruct(&self) -> FMatrix {
        let n = self.values.len();
        let mut m = FMatrix::zeros(n, n);
        for k in 0..n {
            let v = &self.vectors[k];
            for i in 0..n {
                for j in 0..n {
                    m.set(i, j, m.get(i, j) + self.values[k] * v[i] * v[j]);
                }
            }
        }
        m
    }
}

/// Computes the eigendecomposition of a symmetric matrix with the cyclic Jacobi
/// method.
///
/// # Panics
///
/// Panics if the matrix is not square or not symmetric (within `1e-6` relative to
/// its Frobenius norm).
///
/// # Example
///
/// ```
/// use counterpoint_numeric::{jacobi_eigen, FMatrix};
/// let m = FMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = jacobi_eigen(&m);
/// assert!((eig.values[0] - 3.0).abs() < 1e-9);
/// assert!((eig.values[1] - 1.0).abs() < 1e-9);
/// ```
pub fn jacobi_eigen(matrix: &FMatrix) -> EigenDecomposition {
    let n = matrix.nrows();
    assert_eq!(
        n,
        matrix.ncols(),
        "eigendecomposition requires a square matrix"
    );
    let scale = matrix.frobenius_norm().max(1.0);
    assert!(
        matrix.is_symmetric(1e-6 * scale),
        "eigendecomposition requires a symmetric matrix"
    );

    if n == 0 {
        return EigenDecomposition {
            values: Vec::new(),
            vectors: Vec::new(),
        };
    }

    let mut a = matrix.clone();
    let mut v = FMatrix::identity(n);
    let tol = 1e-14 * scale;
    let max_sweeps = 100;

    for _sweep in 0..max_sweeps {
        if a.max_off_diagonal() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() <= tol {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation to A: A <- J^T A J.
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                // Accumulate the eigenvector rotation.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let mut pairs: Vec<(f64, FVector)> = (0..n).map(|k| (a.get(k, k), v.col(k))).collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));

    EigenDecomposition {
        values: pairs.iter().map(|(val, _)| *val).collect(),
        vectors: pairs.into_iter().map(|(_, vec)| vec).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn diagonal_matrix() {
        let m = FMatrix::from_rows(&[
            vec![5.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0],
            vec![0.0, 0.0, 7.0],
        ]);
        let eig = jacobi_eigen(&m);
        assert!(approx(eig.values[0], 7.0, 1e-12));
        assert!(approx(eig.values[1], 5.0, 1e-12));
        assert!(approx(eig.values[2], 2.0, 1e-12));
    }

    #[test]
    fn two_by_two_known_values() {
        let m = FMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let eig = jacobi_eigen(&m);
        assert!(approx(eig.values[0], 3.0, 1e-10));
        assert!(approx(eig.values[1], 1.0, 1e-10));
        // Eigenvector for 3 is (1, 1)/sqrt(2) up to sign.
        let v = &eig.vectors[0];
        assert!(approx(v[0].abs(), (0.5f64).sqrt(), 1e-8));
        assert!(approx(v[1].abs(), (0.5f64).sqrt(), 1e-8));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = FMatrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ]);
        let eig = jacobi_eigen(&m);
        for i in 0..3 {
            assert!(approx(eig.vectors[i].norm(), 1.0, 1e-9));
            for j in (i + 1)..3 {
                assert!(approx(eig.vectors[i].dot(&eig.vectors[j]), 0.0, 1e-9));
            }
        }
    }

    #[test]
    fn reconstruction_matches_original() {
        let m = FMatrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ]);
        let eig = jacobi_eigen(&m);
        let r = eig.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx(r.get(i, j), m.get(i, j), 1e-8));
            }
        }
    }

    #[test]
    fn satisfies_eigen_equation() {
        let m = FMatrix::from_rows(&[
            vec![10.0, 2.0, 3.0, 0.0],
            vec![2.0, 8.0, 1.0, 0.5],
            vec![3.0, 1.0, 6.0, 0.1],
            vec![0.0, 0.5, 0.1, 4.0],
        ]);
        let eig = jacobi_eigen(&m);
        for k in 0..4 {
            let mv = m.mul_vec(&eig.vectors[k]);
            let lv = eig.vectors[k].scale(eig.values[k]);
            for i in 0..4 {
                assert!(
                    approx(mv[i], lv[i], 1e-7),
                    "eigen equation failed at ({k},{i})"
                );
            }
        }
    }

    #[test]
    fn positive_semidefinite_covariance_has_nonnegative_eigenvalues() {
        // Covariance-like matrix built as B^T B.
        let b = FMatrix::from_rows(&[vec![1.0, 2.0, 0.0], vec![0.5, 1.0, 1.0]]);
        let cov = b.transpose().mul_mat(&b);
        let eig = jacobi_eigen(&cov);
        for val in &eig.values {
            assert!(*val > -1e-9);
        }
    }

    #[test]
    fn empty_matrix() {
        let eig = jacobi_eigen(&FMatrix::zeros(0, 0));
        assert!(eig.values.is_empty());
        assert!(eig.vectors.is_empty());
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_panics() {
        let m = FMatrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        let _ = jacobi_eigen(&m);
    }
}
