//! Small dense `f64` vectors and matrices.
//!
//! The statistics side of CounterPoint (sample means, covariance matrices,
//! confidence-region geometry) works in floating point: HEC samples are large
//! integers scaled by multiplexing ratios, and the χ² machinery is inherently
//! approximate.  These types are deliberately simple dense containers sized for the
//! 4–30 counter dimensionalities of the case study.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `f64` vector.
///
/// ```
/// use counterpoint_numeric::FVector;
/// let v = FVector::from_slice(&[3.0, 4.0]);
/// assert!((v.norm() - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq)]
pub struct FVector {
    data: Vec<f64>,
}

impl FVector {
    /// Creates a zero vector of length `len`.
    pub fn zeros(len: usize) -> FVector {
        FVector {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector from a slice.
    pub fn from_slice(values: &[f64]) -> FVector {
        FVector {
            data: values.to_vec(),
        }
    }

    /// Creates a vector from an owned `Vec<f64>`.
    pub fn from_vec(values: Vec<f64>) -> FVector {
        FVector { data: values }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the components as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns an iterator over components.
    pub fn iter(&self) -> impl Iterator<Item = &f64> {
        self.data.iter()
    }

    /// Dot product.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &FVector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot product dimension mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Component-wise addition.
    pub fn add(&self, other: &FVector) -> FVector {
        assert_eq!(
            self.len(),
            other.len(),
            "vector addition dimension mismatch"
        );
        FVector {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Component-wise subtraction.
    pub fn sub(&self, other: &FVector) -> FVector {
        assert_eq!(
            self.len(),
            other.len(),
            "vector subtraction dimension mismatch"
        );
        FVector {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Scales every component by `s`.
    pub fn scale(&self, s: f64) -> FVector {
        FVector {
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Returns a normalised (unit-length) copy.  Returns a zero vector unchanged.
    pub fn normalized(&self) -> FVector {
        let n = self.norm();
        if n == 0.0 {
            self.clone()
        } else {
            self.scale(1.0 / n)
        }
    }

    /// Consumes the vector and returns the underlying `Vec<f64>`.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl Index<usize> for FVector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for FVector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl fmt::Debug for FVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FVector({:?})", self.data)
    }
}

impl FromIterator<f64> for FVector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        FVector {
            data: iter.into_iter().collect(),
        }
    }
}

/// A dense row-major `f64` matrix.
///
/// ```
/// use counterpoint_numeric::FMatrix;
/// let m = FMatrix::identity(2);
/// assert_eq!(m.get(0, 0), 1.0);
/// assert_eq!(m.get(0, 1), 0.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct FMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl FMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> FMatrix {
        FMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of dimension `n`.
    pub fn identity(n: usize) -> FMatrix {
        let mut m = FMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> FMatrix {
        if rows.is_empty() {
            return FMatrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
        }
        FMatrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        self.data[i * self.cols + j]
    }

    /// Sets the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        self.data[i * self.cols + j] = v;
    }

    /// Returns row `i` as a vector.
    pub fn row(&self, i: usize) -> FVector {
        assert!(i < self.rows, "row index out of range");
        FVector::from_slice(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Returns column `j` as a vector.
    pub fn col(&self, j: usize) -> FVector {
        assert!(j < self.cols, "column index out of range");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> FMatrix {
        let mut t = FMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.ncols()`.
    pub fn mul_vec(&self, v: &FVector) -> FVector {
        assert_eq!(v.len(), self.cols, "matrix-vector dimension mismatch");
        (0..self.rows).map(|i| self.row(i).dot(v)).collect()
    }

    /// Matrix–matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    pub fn mul_mat(&self, other: &FMatrix) -> FMatrix {
        assert_eq!(self.cols, other.rows, "matrix-matrix dimension mismatch");
        let mut out = FMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.set(i, j, out.get(i, j) + a * other.get(k, j));
                }
            }
        }
        out
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute off-diagonal entry (used by the Jacobi eigensolver's
    /// convergence test).
    pub fn max_off_diagonal(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self.get(i, j).abs());
                }
            }
        }
        m
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl fmt::Debug for FMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i).as_slice())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn vector_basics() {
        let v = FVector::from_slice(&[1.0, 2.0, 2.0]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert!(approx(v.norm(), 3.0));
        assert_eq!(v[2], 2.0);
        let mut w = v.clone();
        w[0] = 5.0;
        assert_eq!(w.as_slice(), &[5.0, 2.0, 2.0]);
        assert_eq!(v.clone().into_vec(), vec![1.0, 2.0, 2.0]);
    }

    #[test]
    fn vector_arithmetic() {
        let v = FVector::from_slice(&[1.0, 2.0]);
        let w = FVector::from_slice(&[3.0, 4.0]);
        assert_eq!(v.add(&w).as_slice(), &[4.0, 6.0]);
        assert_eq!(w.sub(&v).as_slice(), &[2.0, 2.0]);
        assert_eq!(v.scale(2.0).as_slice(), &[2.0, 4.0]);
        assert!(approx(v.dot(&w), 11.0));
    }

    #[test]
    fn normalized_vector() {
        let v = FVector::from_slice(&[3.0, 4.0]);
        let n = v.normalized();
        assert!(approx(n.norm(), 1.0));
        assert!(approx(n[0], 0.6));
        let z = FVector::zeros(2);
        assert_eq!(z.normalized().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn matrix_basics() {
        let m = FMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0).as_slice(), &[1.0, 2.0]);
        assert_eq!(m.col(1).as_slice(), &[2.0, 4.0]);
        assert_eq!(m.transpose().get(0, 1), 3.0);
    }

    #[test]
    fn matrix_products() {
        let m = FMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = FVector::from_slice(&[1.0, 1.0]);
        assert_eq!(m.mul_vec(&v).as_slice(), &[3.0, 7.0]);
        let id = FMatrix::identity(2);
        assert_eq!(m.mul_mat(&id), m);
        let p = m.mul_mat(&m);
        assert_eq!(p.get(0, 0), 7.0);
        assert_eq!(p.get(1, 1), 22.0);
    }

    #[test]
    fn symmetry_and_norms() {
        let s = FMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        assert!(s.is_symmetric(1e-12));
        let a = FMatrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 3.0]]);
        assert!(!a.is_symmetric(1e-12));
        assert!(!FMatrix::zeros(2, 3).is_symmetric(1e-12));
        assert!(approx(FMatrix::identity(3).frobenius_norm(), 3.0f64.sqrt()));
        assert!(approx(a.max_off_diagonal(), 1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let m = FMatrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }
}
