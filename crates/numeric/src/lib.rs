//! Exact rational and floating-point linear algebra for CounterPoint.
//!
//! CounterPoint's constraint-deduction pipeline (Gaussian elimination over counter
//! signatures, the double-description method on the polar cone) requires *exact*
//! arithmetic: the paper notes that floating-point methods such as QR factorisation
//! are ill-conditioned for this purpose and that symbolic operations preserve exact
//! integer values.  This crate provides:
//!
//! * [`Rational`] — an exact rational number over `i128` with gcd normalisation,
//! * [`RatVector`] / [`RatMatrix`] — dense exact vectors and matrices with
//!   reduced-row-echelon form, rank, nullspace, inverse and linear solves,
//! * [`FVector`] / [`FMatrix`] — small dense `f64` vectors/matrices used by the
//!   statistics layer,
//! * [`jacobi_eigen`] — a cyclic-Jacobi eigensolver for symmetric matrices, used to
//!   orient counter confidence regions along their principal axes.
//!
//! # Example
//!
//! ```
//! use counterpoint_numeric::{Rational, RatMatrix};
//!
//! let m = RatMatrix::from_i64_rows(&[&[1, 2], &[2, 4]]);
//! assert_eq!(m.rank(), 1);
//! let half = Rational::new(1, 2);
//! assert_eq!(half + half, Rational::from(1));
//! ```

pub mod eigen;
pub mod fmat;
pub mod rational;
pub mod ratmat;

pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use fmat::{FMatrix, FVector};
pub use rational::{gcd_i128, lcm_i128, NumericError, Rational};
pub use ratmat::{RatMatrix, RatVector};
