//! Exact rational arithmetic over `i128`.
//!
//! Counter signatures are small non-negative integers (0–4 per component) and the
//! cone dimensionality in the Haswell case study is at most a few dozen, so an
//! `i128` numerator/denominator pair with gcd normalisation after every operation
//! comfortably covers the intermediate magnitudes that appear during Gaussian
//! elimination and the double-description method.  Arithmetic is checked: an
//! overflow panics with a clear message instead of silently wrapping (this would
//! indicate the inputs are far outside CounterPoint's intended regime).

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Error type for fallible numeric conversions and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NumericError {
    /// A denominator of zero was supplied.
    ZeroDenominator,
    /// An intermediate value exceeded the `i128` range.
    Overflow,
    /// A matrix operation was attempted with incompatible dimensions.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension that was supplied.
        found: usize,
    },
    /// An inverse of a singular matrix was requested.
    Singular,
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::ZeroDenominator => write!(f, "denominator must be non-zero"),
            NumericError::Overflow => {
                write!(f, "arithmetic overflow in exact rational computation")
            }
            NumericError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            NumericError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for NumericError {}

/// Greatest common divisor of two `i128` values (always non-negative).
///
/// ```
/// use counterpoint_numeric::gcd_i128;
/// assert_eq!(gcd_i128(12, -18), 6);
/// assert_eq!(gcd_i128(0, 5), 5);
/// assert_eq!(gcd_i128(0, 0), 0);
/// ```
pub fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple of two `i128` values (always non-negative).
///
/// # Panics
///
/// Panics on overflow.
///
/// ```
/// use counterpoint_numeric::lcm_i128;
/// assert_eq!(lcm_i128(4, 6), 12);
/// assert_eq!(lcm_i128(0, 3), 0);
/// ```
pub fn lcm_i128(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd_i128(a, b);
    (a / g)
        .checked_mul(b)
        .expect("overflow computing lcm")
        .abs()
}

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) == 1`.
///
/// `Rational` implements the full set of arithmetic operators plus total ordering,
/// so it can be used directly inside generic pivoting code.
///
/// ```
/// use counterpoint_numeric::Rational;
/// let a = Rational::new(3, 4);
/// let b = Rational::new(1, 4);
/// assert_eq!(a + b, Rational::from(1));
/// assert!(a > b);
/// assert_eq!((a - b).to_f64(), 0.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a new rational from a numerator and denominator, reducing to lowest
    /// terms and normalising the sign of the denominator.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    ///
    /// ```
    /// use counterpoint_numeric::Rational;
    /// assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
    /// ```
    pub fn new(num: i128, den: i128) -> Rational {
        Rational::try_new(num, den).expect("denominator must be non-zero")
    }

    /// Fallible constructor; returns [`NumericError::ZeroDenominator`] when `den == 0`.
    ///
    /// # Errors
    ///
    /// Returns an error when the denominator is zero.
    pub fn try_new(num: i128, den: i128) -> Result<Rational, NumericError> {
        if den == 0 {
            return Err(NumericError::ZeroDenominator);
        }
        let mut r = Rational { num, den };
        r.reduce();
        Ok(r)
    }

    /// Creates a rational representing the integer `n`.
    pub fn from_integer(n: i128) -> Rational {
        Rational { num: n, den: 1 }
    }

    fn reduce(&mut self) {
        if self.den < 0 {
            self.num = self.num.checked_neg().expect("overflow negating rational");
            self.den = self.den.checked_neg().expect("overflow negating rational");
        }
        let g = gcd_i128(self.num, self.den);
        if g > 1 {
            self.num /= g;
            self.den /= g;
        }
        if self.num == 0 {
            self.den = 1;
        }
    }

    /// Returns the numerator (in lowest terms, with non-negative denominator).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Returns the denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if this rational is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` if this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` if this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns the sign of the rational as `-1`, `0` or `1`.
    pub fn signum(&self) -> i128 {
        self.num.signum()
    }

    /// Returns the absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.checked_abs().expect("overflow in abs"),
            den: self.den,
        }
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "cannot invert zero");
        let mut r = Rational {
            num: self.den,
            den: self.num,
        };
        r.reduce();
        r
    }

    /// Converts to an `f64` approximation.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Converts to an integer if the value is integral.
    pub fn to_integer(&self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Overflow-safe addition: `None` when an intermediate exceeds `i128`
    /// instead of panicking like the `+` operator.  The two-tier feasibility
    /// engine recertifies near-degenerate float verdicts through these checked
    /// entry points and degrades gracefully (drops the evidence, keeps the
    /// verdict) when a value falls outside the exact regime.
    pub fn checked_add(self, other: Rational) -> Option<Rational> {
        // a/b + c/d = (a*d + c*b) / (b*d); use lcm to keep magnitudes small.
        let g = gcd_i128(self.den, other.den);
        let lhs = self.num.checked_mul(other.den / g)?;
        let rhs = other.num.checked_mul(self.den / g)?;
        let num = lhs.checked_add(rhs)?;
        let den = (self.den / g).checked_mul(other.den)?;
        Rational::try_new(num, den).ok()
    }

    /// Overflow-safe multiplication: the checked counterpart of the `*`
    /// operator (see [`checked_add`](Rational::checked_add)).
    pub fn checked_mul(self, other: Rational) -> Option<Rational> {
        self.checked_mul_impl(other)
    }

    /// Overflow-safe subtraction (see [`checked_add`](Rational::checked_add)).
    pub fn checked_sub(self, other: Rational) -> Option<Rational> {
        let negated = Rational {
            num: other.num.checked_neg()?,
            den: other.den,
        };
        self.checked_add(negated)
    }

    /// The *exact* rational value of a finite `f64` — every finite double is
    /// a dyadic rational `±m · 2^e`, so no rounding is involved.  `None` for
    /// NaN, infinities, and values whose exact numerator or denominator
    /// exceeds `i128` (|e| too large): such values are far outside the
    /// counter-space regime and callers fall back to float arithmetic.
    ///
    /// ```
    /// use counterpoint_numeric::Rational;
    /// assert_eq!(Rational::try_from_f64(0.25), Some(Rational::new(1, 4)));
    /// assert_eq!(Rational::try_from_f64(-3.0), Some(Rational::from_integer(-3)));
    /// assert_eq!(Rational::try_from_f64(f64::NAN), None);
    /// ```
    pub fn try_from_f64(value: f64) -> Option<Rational> {
        if !value.is_finite() {
            return None;
        }
        if value == 0.0 {
            return Some(Rational::ZERO);
        }
        let bits = value.to_bits();
        let sign = if bits >> 63 == 1 { -1i128 } else { 1i128 };
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let fraction = (bits & ((1u64 << 52) - 1)) as i128;
        // Subnormals have no implicit leading bit and a fixed exponent.
        let (mantissa, exponent) = if biased == 0 {
            (fraction, -1074i64)
        } else {
            (fraction + (1i128 << 52), biased - 1075)
        };
        if exponent >= 0 {
            let shift = u32::try_from(exponent).ok()?;
            let scale = 1i128.checked_shl(shift).filter(|_| shift < 127)?;
            let num = mantissa.checked_mul(scale)?;
            Some(Rational::from_integer(sign * num))
        } else {
            let shift = u32::try_from(-exponent).ok()?;
            if shift >= 127 {
                return None;
            }
            Rational::try_new(sign * mantissa, 1i128 << shift).ok()
        }
    }

    fn checked_mul_impl(self, other: Rational) -> Option<Rational> {
        // Cross-reduce before multiplying to limit magnitude growth.
        let g1 = gcd_i128(self.num, other.den);
        let g2 = gcd_i128(other.num, self.den);
        let num = (self.num / g1).checked_mul(other.num / g2)?;
        let den = (self.den / g2).checked_mul(other.den / g1)?;
        Rational::try_new(num, den).ok()
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::from_integer(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_integer(n as i128)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_integer(n as i128)
    }
}

impl From<u32> for Rational {
    fn from(n: u32) -> Self {
        Rational::from_integer(n as i128)
    }
}

impl From<u64> for Rational {
    fn from(n: u64) -> Self {
        Rational::from_integer(n as i128)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("overflow in comparison");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("overflow in comparison");
        lhs.cmp(&rhs)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, other: Rational) -> Rational {
        self.checked_add(other)
            .expect("overflow in rational addition")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, other: Rational) -> Rational {
        self.checked_add(-other)
            .expect("overflow in rational subtraction")
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, other: Rational) -> Rational {
        self.checked_mul_impl(other)
            .expect("overflow in rational multiplication")
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, other: Rational) -> Rational {
        assert!(!other.is_zero(), "division by zero rational");
        self.checked_mul_impl(other.recip())
            .expect("overflow in rational division")
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: self.num.checked_neg().expect("overflow negating rational"),
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, other: Rational) {
        *self = *self + other;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, other: Rational) {
        *self = *self - other;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, other: Rational) {
        *self = *self * other;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, other: Rational) {
        *self = *self / other;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd_i128(12, 18), 6);
        assert_eq!(gcd_i128(-12, 18), 6);
        assert_eq!(gcd_i128(12, -18), 6);
        assert_eq!(gcd_i128(0, 0), 0);
        assert_eq!(gcd_i128(7, 0), 7);
        assert_eq!(gcd_i128(1, 1), 1);
        assert_eq!(gcd_i128(17, 13), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm_i128(4, 6), 12);
        assert_eq!(lcm_i128(3, 7), 21);
        assert_eq!(lcm_i128(0, 9), 0);
        assert_eq!(lcm_i128(-4, 6), 12);
    }

    #[test]
    fn construction_reduces() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
        assert_eq!(Rational::new(0, 5).denom(), 1);
    }

    #[test]
    fn zero_denominator_is_error() {
        assert_eq!(Rational::try_new(1, 0), Err(NumericError::ZeroDenominator));
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn new_panics_on_zero_denominator() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::from(2));
        assert_eq!(-a, Rational::new(-1, 3));
    }

    #[test]
    fn assign_ops() {
        let mut x = Rational::new(1, 2);
        x += Rational::new(1, 2);
        assert_eq!(x, Rational::ONE);
        x -= Rational::new(1, 4);
        assert_eq!(x, Rational::new(3, 4));
        x *= Rational::from(4);
        assert_eq!(x, Rational::from(3));
        x /= Rational::from(6);
        assert_eq!(x, Rational::new(1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 3) > Rational::from(2));
        let mut v = vec![Rational::new(3, 2), Rational::new(-1, 4), Rational::ONE];
        v.sort();
        assert_eq!(
            v,
            vec![Rational::new(-1, 4), Rational::ONE, Rational::new(3, 2)]
        );
    }

    #[test]
    fn predicates_and_accessors() {
        let r = Rational::new(-3, 9);
        assert_eq!(r.numer(), -1);
        assert_eq!(r.denom(), 3);
        assert!(r.is_negative());
        assert!(!r.is_positive());
        assert!(!r.is_zero());
        assert!(!r.is_integer());
        assert_eq!(r.signum(), -1);
        assert_eq!(r.abs(), Rational::new(1, 3));
        assert_eq!(Rational::from(5).to_integer(), Some(5));
        assert_eq!(Rational::new(5, 2).to_integer(), None);
    }

    #[test]
    fn recip() {
        assert_eq!(Rational::new(3, 4).recip(), Rational::new(4, 3));
        assert_eq!(Rational::new(-2, 5).recip(), Rational::new(-5, 2));
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn recip_of_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        let _ = Rational::ONE / Rational::ZERO;
    }

    #[test]
    fn to_f64() {
        assert_eq!(Rational::new(1, 2).to_f64(), 0.5);
        assert_eq!(Rational::new(-3, 4).to_f64(), -0.75);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 4).to_string(), "3/4");
        assert_eq!(Rational::from(7).to_string(), "7");
        assert_eq!(Rational::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn sum_iterator() {
        let total: Rational = (1..=4).map(|i| Rational::new(1, i)).sum();
        // 1 + 1/2 + 1/3 + 1/4 = 25/12
        assert_eq!(total, Rational::new(25, 12));
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Rational::from(3i32), Rational::from_integer(3));
        assert_eq!(Rational::from(3i64), Rational::from_integer(3));
        assert_eq!(Rational::from(3u32), Rational::from_integer(3));
        assert_eq!(Rational::from(3u64), Rational::from_integer(3));
        assert_eq!(Rational::from(3i128), Rational::from_integer(3));
    }
}
