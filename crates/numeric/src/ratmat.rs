//! Dense exact-rational vectors and matrices.
//!
//! These types back the symbolic parts of CounterPoint: Gaussian elimination over
//! counter signatures (to find equality constraints and the lineality space of the
//! model cone), change-of-basis when reducing the cone to its span, and the matrix
//! inversions used to seed the double-description method.

use crate::rational::{gcd_i128, NumericError, Rational};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense vector of exact rationals.
///
/// ```
/// use counterpoint_numeric::{RatVector, Rational};
/// let v = RatVector::from_i64(&[1, 2, 3]);
/// let w = RatVector::from_i64(&[4, 5, 6]);
/// assert_eq!(v.dot(&w), Rational::from(32));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RatVector {
    data: Vec<Rational>,
}

impl RatVector {
    /// Creates a zero vector of the given length.
    pub fn zeros(len: usize) -> RatVector {
        RatVector {
            data: vec![Rational::ZERO; len],
        }
    }

    /// Creates a vector from a slice of rationals.
    pub fn from_slice(values: &[Rational]) -> RatVector {
        RatVector {
            data: values.to_vec(),
        }
    }

    /// Creates a vector from integer components.
    pub fn from_i64(values: &[i64]) -> RatVector {
        RatVector {
            data: values.iter().map(|&v| Rational::from(v)).collect(),
        }
    }

    /// Creates the `i`-th standard basis vector of dimension `len`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn basis(len: usize, i: usize) -> RatVector {
        assert!(i < len, "basis index {i} out of range for dimension {len}");
        let mut v = RatVector::zeros(len);
        v[i] = Rational::ONE;
        v
    }

    /// Returns the number of components.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns `true` if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(Rational::is_zero)
    }

    /// Returns an iterator over the components.
    pub fn iter(&self) -> impl Iterator<Item = &Rational> {
        self.data.iter()
    }

    /// Returns the underlying components as a slice.
    pub fn as_slice(&self) -> &[Rational] {
        &self.data
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &RatVector) -> Rational {
        assert_eq!(self.len(), other.len(), "dot product dimension mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| *a * *b)
            .sum()
    }

    /// Multiplies every component by a scalar.
    pub fn scale(&self, s: Rational) -> RatVector {
        RatVector {
            data: self.data.iter().map(|x| *x * s).collect(),
        }
    }

    /// Normalises an integer-valued direction vector: clears denominators and divides
    /// by the gcd of the components, yielding the canonical primitive integer vector
    /// in the same direction.  Zero vectors are returned unchanged.
    ///
    /// This is exactly the normalisation the paper applies to μpath counter
    /// signatures before deduplication.
    ///
    /// ```
    /// use counterpoint_numeric::RatVector;
    /// let v = RatVector::from_i64(&[2, 4, 6]);
    /// assert_eq!(v.normalize_primitive(), RatVector::from_i64(&[1, 2, 3]));
    /// ```
    pub fn normalize_primitive(&self) -> RatVector {
        if self.is_zero() {
            return self.clone();
        }
        // Clear denominators.
        let mut lcm: i128 = 1;
        for x in &self.data {
            let d = x.denom();
            let g = gcd_i128(lcm, d);
            lcm = (lcm / g)
                .checked_mul(d)
                .expect("overflow clearing denominators");
        }
        let ints: Vec<i128> = self
            .data
            .iter()
            .map(|x| x.numer().checked_mul(lcm / x.denom()).expect("overflow"))
            .collect();
        let mut g: i128 = 0;
        for &v in &ints {
            g = gcd_i128(g, v);
        }
        RatVector {
            data: ints.iter().map(|&v| Rational::from(v / g)).collect(),
        }
    }

    /// Converts to a vector of `f64` approximations.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.data.iter().map(Rational::to_f64).collect()
    }
}

impl Index<usize> for RatVector {
    type Output = Rational;
    fn index(&self, i: usize) -> &Rational {
        &self.data[i]
    }
}

impl IndexMut<usize> for RatVector {
    fn index_mut(&mut self, i: usize) -> &mut Rational {
        &mut self.data[i]
    }
}

impl fmt::Debug for RatVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "]")
    }
}

impl Add for &RatVector {
    type Output = RatVector;
    fn add(self, other: &RatVector) -> RatVector {
        assert_eq!(
            self.len(),
            other.len(),
            "vector addition dimension mismatch"
        );
        RatVector {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &RatVector {
    type Output = RatVector;
    fn sub(self, other: &RatVector) -> RatVector {
        assert_eq!(
            self.len(),
            other.len(),
            "vector subtraction dimension mismatch"
        );
        RatVector {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &RatVector {
    type Output = RatVector;
    fn neg(self) -> RatVector {
        RatVector {
            data: self.data.iter().map(|x| -*x).collect(),
        }
    }
}

impl FromIterator<Rational> for RatVector {
    fn from_iter<I: IntoIterator<Item = Rational>>(iter: I) -> Self {
        RatVector {
            data: iter.into_iter().collect(),
        }
    }
}

/// A dense row-major matrix of exact rationals.
///
/// ```
/// use counterpoint_numeric::RatMatrix;
/// let m = RatMatrix::from_i64_rows(&[&[1, 0], &[0, 1]]);
/// assert_eq!(m.rank(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct RatMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl RatMatrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> RatMatrix {
        RatMatrix {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Creates the identity matrix of dimension `n`.
    pub fn identity(n: usize) -> RatMatrix {
        let mut m = RatMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rational::ONE;
        }
        m
    }

    /// Creates a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[RatVector]) -> RatMatrix {
        if rows.is_empty() {
            return RatMatrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
        }
        RatMatrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flat_map(|r| r.iter().copied()).collect(),
        }
    }

    /// Creates a matrix from integer row slices.
    pub fn from_i64_rows(rows: &[&[i64]]) -> RatMatrix {
        let vecs: Vec<RatVector> = rows.iter().map(|r| RatVector::from_i64(r)).collect();
        RatMatrix::from_rows(&vecs)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Returns row `i` as a vector.
    pub fn row(&self, i: usize) -> RatVector {
        assert!(i < self.rows, "row index out of range");
        RatVector::from_slice(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Returns column `j` as a vector.
    pub fn col(&self, j: usize) -> RatVector {
        assert!(j < self.cols, "column index out of range");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> RatMatrix {
        let mut t = RatMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.ncols()`.
    pub fn mul_vec(&self, v: &RatVector) -> RatVector {
        assert_eq!(v.len(), self.cols, "matrix-vector dimension mismatch");
        (0..self.rows).map(|i| self.row(i).dot(v)).collect()
    }

    /// Matrix–matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    pub fn mul_mat(&self, other: &RatMatrix) -> RatMatrix {
        assert_eq!(self.cols, other.rows, "matrix-matrix dimension mismatch");
        let mut out = RatMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..other.cols {
                    let prod = a * other[(k, j)];
                    out[(i, j)] += prod;
                }
            }
        }
        out
    }

    /// Reduced row-echelon form, returning `(rref, pivot_columns)`.
    ///
    /// The pivot columns identify a maximal linearly independent subset of columns;
    /// their count is the matrix rank.
    pub fn rref(&self) -> (RatMatrix, Vec<usize>) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut pivot_row = 0usize;
        for col in 0..m.cols {
            if pivot_row >= m.rows {
                break;
            }
            // Find a non-zero entry in this column at or below pivot_row.
            let mut sel = None;
            for r in pivot_row..m.rows {
                if !m[(r, col)].is_zero() {
                    sel = Some(r);
                    break;
                }
            }
            let Some(sel) = sel else { continue };
            m.swap_rows(sel, pivot_row);
            // Scale pivot row so the pivot is 1.
            let inv = m[(pivot_row, col)].recip();
            for j in col..m.cols {
                m[(pivot_row, j)] *= inv;
            }
            // Eliminate the column everywhere else.
            for r in 0..m.rows {
                if r != pivot_row && !m[(r, col)].is_zero() {
                    let factor = m[(r, col)];
                    for j in col..m.cols {
                        let delta = factor * m[(pivot_row, j)];
                        m[(r, j)] -= delta;
                    }
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        (m, pivots)
    }

    /// Rank of the matrix.
    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    /// A basis for the (right) nullspace: vectors `x` with `self * x = 0`.
    pub fn nullspace(&self) -> Vec<RatVector> {
        let (r, pivots) = self.rref();
        let free: Vec<usize> = (0..self.cols).filter(|c| !pivots.contains(c)).collect();
        let mut basis = Vec::with_capacity(free.len());
        for &fc in &free {
            let mut v = RatVector::zeros(self.cols);
            v[fc] = Rational::ONE;
            for (prow, &pcol) in pivots.iter().enumerate() {
                v[pcol] = -r[(prow, fc)];
            }
            basis.push(v);
        }
        basis
    }

    /// A basis for the row space (as a list of independent row vectors in rref form).
    pub fn row_space_basis(&self) -> Vec<RatVector> {
        let (r, pivots) = self.rref();
        (0..pivots.len()).map(|i| r.row(i)).collect()
    }

    /// Inverse of a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Singular`] if the matrix is singular, or
    /// [`NumericError::DimensionMismatch`] if it is not square.
    pub fn inverse(&self) -> Result<RatMatrix, NumericError> {
        if self.rows != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: self.rows,
                found: self.cols,
            });
        }
        let n = self.rows;
        // Augment with the identity and row-reduce.
        let mut aug = RatMatrix::zeros(n, 2 * n);
        for i in 0..n {
            for j in 0..n {
                aug[(i, j)] = self[(i, j)];
            }
            aug[(i, n + i)] = Rational::ONE;
        }
        let (r, pivots) = aug.rref();
        if pivots.len() < n || pivots.iter().enumerate().any(|(i, &p)| p != i) {
            return Err(NumericError::Singular);
        }
        let mut inv = RatMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                inv[(i, j)] = r[(i, n + j)];
            }
        }
        Ok(inv)
    }

    /// Solves `self * x = b` for a square, non-singular system.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Singular`] if no unique solution exists.
    pub fn solve(&self, b: &RatVector) -> Result<RatVector, NumericError> {
        let inv = self.inverse()?;
        Ok(inv.mul_vec(b))
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let (ia, ib) = (a * self.cols + j, b * self.cols + j);
            self.data.swap(ia, ib);
        }
    }
}

impl Index<(usize, usize)> for RatMatrix {
    type Output = Rational;
    fn index(&self, (i, j): (usize, usize)) -> &Rational {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RatMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rational {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for RatMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RatMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

impl Mul<&RatVector> for &RatMatrix {
    type Output = RatVector;
    fn mul(self, v: &RatVector) -> RatVector {
        self.mul_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_basics() {
        let v = RatVector::from_i64(&[1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert!(!v.is_zero());
        assert!(RatVector::zeros(4).is_zero());
        assert_eq!(v[1], Rational::from(2));
        assert_eq!(v.as_slice().len(), 3);
        assert_eq!(v.to_f64_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn vector_ops() {
        let v = RatVector::from_i64(&[1, 2, 3]);
        let w = RatVector::from_i64(&[4, 5, 6]);
        assert_eq!(&v + &w, RatVector::from_i64(&[5, 7, 9]));
        assert_eq!(&w - &v, RatVector::from_i64(&[3, 3, 3]));
        assert_eq!(-&v, RatVector::from_i64(&[-1, -2, -3]));
        assert_eq!(v.dot(&w), Rational::from(32));
        assert_eq!(v.scale(Rational::from(2)), RatVector::from_i64(&[2, 4, 6]));
    }

    #[test]
    fn basis_vector() {
        let e1 = RatVector::basis(3, 1);
        assert_eq!(e1, RatVector::from_i64(&[0, 1, 0]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = RatVector::basis(2, 2);
    }

    #[test]
    fn normalize_primitive() {
        let v = RatVector::from_slice(&[Rational::new(1, 2), Rational::new(3, 2), Rational::ONE]);
        assert_eq!(v.normalize_primitive(), RatVector::from_i64(&[1, 3, 2]));
        let w = RatVector::from_i64(&[4, 8, 12]);
        assert_eq!(w.normalize_primitive(), RatVector::from_i64(&[1, 2, 3]));
        let z = RatVector::zeros(3);
        assert_eq!(z.normalize_primitive(), z);
        let neg = RatVector::from_i64(&[-2, -4]);
        assert_eq!(neg.normalize_primitive(), RatVector::from_i64(&[-1, -2]));
    }

    #[test]
    fn matrix_construction_and_indexing() {
        let m = RatMatrix::from_i64_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m[(1, 2)], Rational::from(6));
        assert_eq!(m.row(0), RatVector::from_i64(&[1, 2, 3]));
        assert_eq!(m.col(1), RatVector::from_i64(&[2, 5]));
    }

    #[test]
    fn transpose_and_products() {
        let m = RatMatrix::from_i64_rows(&[&[1, 2], &[3, 4]]);
        let t = m.transpose();
        assert_eq!(t, RatMatrix::from_i64_rows(&[&[1, 3], &[2, 4]]));
        let v = RatVector::from_i64(&[1, 1]);
        assert_eq!(m.mul_vec(&v), RatVector::from_i64(&[3, 7]));
        let prod = m.mul_mat(&t);
        assert_eq!(prod, RatMatrix::from_i64_rows(&[&[5, 11], &[11, 25]]));
    }

    #[test]
    fn identity_behaves() {
        let id = RatMatrix::identity(3);
        let m = RatMatrix::from_i64_rows(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 10]]);
        assert_eq!(id.mul_mat(&m), m);
        assert_eq!(m.mul_mat(&id), m);
    }

    #[test]
    fn rref_and_rank() {
        let m = RatMatrix::from_i64_rows(&[&[1, 2, 3], &[2, 4, 6], &[1, 0, 1]]);
        assert_eq!(m.rank(), 2);
        let full = RatMatrix::from_i64_rows(&[&[2, 0], &[0, 3]]);
        let (r, pivots) = full.rref();
        assert_eq!(r, RatMatrix::identity(2));
        assert_eq!(pivots, vec![0, 1]);
        assert_eq!(RatMatrix::zeros(3, 3).rank(), 0);
    }

    #[test]
    fn nullspace_spans_kernel() {
        // x + y + z = 0 has a 2-dimensional nullspace.
        let m = RatMatrix::from_i64_rows(&[&[1, 1, 1]]);
        let ns = m.nullspace();
        assert_eq!(ns.len(), 2);
        for v in &ns {
            assert!(m.mul_vec(v).is_zero());
        }
        // Full-rank square matrix has a trivial nullspace.
        let full = RatMatrix::from_i64_rows(&[&[1, 2], &[3, 5]]);
        assert!(full.nullspace().is_empty());
    }

    #[test]
    fn row_space_basis_has_rank_elements() {
        let m = RatMatrix::from_i64_rows(&[&[1, 2, 3], &[2, 4, 6], &[0, 1, 1]]);
        let basis = m.row_space_basis();
        assert_eq!(basis.len(), 2);
    }

    #[test]
    fn inverse_and_solve() {
        let m = RatMatrix::from_i64_rows(&[&[2, 1], &[1, 1]]);
        let inv = m.inverse().unwrap();
        assert_eq!(m.mul_mat(&inv), RatMatrix::identity(2));
        let b = RatVector::from_i64(&[3, 2]);
        let x = m.solve(&b).unwrap();
        assert_eq!(m.mul_vec(&x), b);
    }

    #[test]
    fn singular_matrix_errors() {
        let m = RatMatrix::from_i64_rows(&[&[1, 2], &[2, 4]]);
        assert_eq!(m.inverse(), Err(NumericError::Singular));
        let not_square = RatMatrix::from_i64_rows(&[&[1, 2, 3]]);
        assert!(matches!(
            not_square.inverse(),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn inverse_with_fractions() {
        let m = RatMatrix::from_i64_rows(&[&[1, 2, 3], &[0, 1, 4], &[5, 6, 0]]);
        let inv = m.inverse().unwrap();
        assert_eq!(m.mul_mat(&inv), RatMatrix::identity(3));
        assert_eq!(inv.mul_mat(&m), RatMatrix::identity(3));
    }
}
