//! Property-based tests for the exact-rational substrate.

use counterpoint_numeric::{gcd_i128, jacobi_eigen, FMatrix, RatMatrix, RatVector, Rational};
use proptest::prelude::*;

fn small_rational() -> impl Strategy<Value = Rational> {
    (-50i128..=50, 1i128..=12).prop_map(|(n, d)| Rational::new(n, d))
}

fn small_rat_vec(len: usize) -> impl Strategy<Value = RatVector> {
    proptest::collection::vec(small_rational(), len).prop_map(|v| RatVector::from_slice(&v))
}

proptest! {
    #[test]
    fn gcd_divides_both(a in -10_000i128..10_000, b in -10_000i128..10_000) {
        let g = gcd_i128(a, b);
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }

    #[test]
    fn rational_addition_is_commutative(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rational_addition_is_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn rational_multiplication_distributes(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_sub_then_add_roundtrips(a in small_rational(), b in small_rational()) {
        prop_assert_eq!((a - b) + b, a);
    }

    #[test]
    fn rational_is_always_reduced(n in -1000i128..1000, d in 1i128..1000) {
        let r = Rational::new(n, d);
        prop_assert!(r.denom() > 0);
        prop_assert_eq!(gcd_i128(r.numer(), r.denom()), if r.is_zero() { 1 } else { gcd_i128(r.numer(), r.denom()) });
        // Numerator and denominator share no factor > 1.
        if !r.is_zero() {
            prop_assert_eq!(gcd_i128(r.numer(), r.denom()), 1);
        }
    }

    #[test]
    fn rational_ordering_consistent_with_f64(a in small_rational(), b in small_rational()) {
        if (a.to_f64() - b.to_f64()).abs() > 1e-9 {
            prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
        }
    }

    #[test]
    fn dot_product_is_symmetric(v in small_rat_vec(5), w in small_rat_vec(5)) {
        prop_assert_eq!(v.dot(&w), w.dot(&v));
    }

    #[test]
    fn normalize_primitive_preserves_direction(v in small_rat_vec(4)) {
        let n = v.normalize_primitive();
        // n must be an integer vector.
        for x in n.iter() {
            prop_assert!(x.is_integer());
        }
        // n and v must be parallel: cross-ratios equal componentwise.
        if !v.is_zero() {
            // Find a non-zero component of v to compute the scale factor.
            let idx = (0..v.len()).find(|&i| !v[i].is_zero()).unwrap();
            let scale = v[idx] / n[idx];
            for i in 0..v.len() {
                prop_assert_eq!(n[i] * scale, v[i]);
            }
        }
    }

    #[test]
    fn matrix_inverse_roundtrips(
        a in -5i64..=5, b in -5i64..=5, c in -5i64..=5, d in -5i64..=5,
    ) {
        let det = a * d - b * c;
        prop_assume!(det != 0);
        let m = RatMatrix::from_i64_rows(&[&[a, b], &[c, d]]);
        let inv = m.inverse().unwrap();
        prop_assert_eq!(m.mul_mat(&inv), RatMatrix::identity(2));
        prop_assert_eq!(inv.mul_mat(&m), RatMatrix::identity(2));
    }

    #[test]
    fn rank_is_at_most_min_dimension(rows in proptest::collection::vec(proptest::collection::vec(-4i64..=4, 4), 1..6)) {
        let row_refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = RatMatrix::from_i64_rows(&row_refs);
        prop_assert!(m.rank() <= m.nrows().min(m.ncols()));
    }

    #[test]
    fn nullspace_vectors_are_in_kernel(rows in proptest::collection::vec(proptest::collection::vec(-4i64..=4, 4), 1..5)) {
        let row_refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = RatMatrix::from_i64_rows(&row_refs);
        let ns = m.nullspace();
        prop_assert_eq!(ns.len() + m.rank(), m.ncols());
        for v in &ns {
            prop_assert!(m.mul_vec(v).is_zero());
        }
    }

    #[test]
    fn jacobi_eigenvalue_sum_equals_trace(diag in proptest::collection::vec(0.1f64..10.0, 3), off in 0.0f64..0.5) {
        let n = diag.len();
        let mut m = FMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m.set(i, j, off);
                }
            }
        }
        let eig = jacobi_eigen(&m);
        let trace: f64 = diag.iter().sum();
        let sum: f64 = eig.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-6);
    }

    // --- rational round-trip identities ---

    #[test]
    fn rational_reciprocal_roundtrips(a in small_rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.recip().recip(), a);
        prop_assert_eq!(a * a.recip(), Rational::from_integer(1));
    }

    #[test]
    fn rational_double_negation_roundtrips(a in small_rational()) {
        prop_assert_eq!(-(-a), a);
        prop_assert_eq!(a + (-a), Rational::from_integer(0));
    }

    #[test]
    fn rational_integer_roundtrips(n in -10_000i128..10_000) {
        let r = Rational::from_integer(n);
        prop_assert!(r.is_integer());
        prop_assert_eq!(r.to_integer(), Some(n));
        prop_assert_eq!(Rational::new(n, 1), r);
    }

    #[test]
    fn rational_division_inverts_multiplication(a in small_rational(), b in small_rational()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!((a * b) / b, a);
        prop_assert_eq!((a / b) * b, a);
    }

    #[test]
    fn rational_f64_conversion_is_exact_for_dyadic_denominators(n in -500i128..500, k in 0u32..8) {
        // Denominators 2^k are exactly representable in binary floating point.
        let r = Rational::new(n, 1i128 << k);
        prop_assert_eq!(r.to_f64(), n as f64 / (1i128 << k) as f64);
    }

    // --- rational matrix round-trips ---

    /// Random nonsingular matrices via strict diagonal dominance: every row's
    /// diagonal entry exceeds the sum of the row's off-diagonal magnitudes.
    #[test]
    fn inverse_roundtrips_on_random_nonsingular_matrices(
        rows in proptest::collection::vec(proptest::collection::vec(-3i64..=3, 4), 4..=4),
        sign in 0u32..2,
    ) {
        let n = rows.len();
        let dominant: Vec<Vec<i64>> = rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let bound: i64 = row.iter().map(|x| x.abs()).sum::<i64>() + 1;
                let mut row = row.clone();
                row[i] = if sign == 0 { bound } else { -bound };
                row
            })
            .collect();
        let row_refs: Vec<&[i64]> = dominant.iter().map(|r| r.as_slice()).collect();
        let m = RatMatrix::from_i64_rows(&row_refs);
        let inv = m.inverse().unwrap();
        prop_assert_eq!(m.mul_mat(&inv), RatMatrix::identity(n));
        prop_assert_eq!(inv.mul_mat(&m), RatMatrix::identity(n));
        // Inverting twice returns the original matrix exactly.
        prop_assert_eq!(inv.inverse().unwrap(), m);
    }

    #[test]
    fn solve_roundtrips_against_mul_vec(
        rows in proptest::collection::vec(proptest::collection::vec(-3i64..=3, 3), 3..=3),
        x in proptest::collection::vec(-6i64..=6, 3),
    ) {
        let dominant: Vec<Vec<i64>> = rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let bound: i64 = row.iter().map(|v| v.abs()).sum::<i64>() + 1;
                let mut row = row.clone();
                row[i] = bound;
                row
            })
            .collect();
        let row_refs: Vec<&[i64]> = dominant.iter().map(|r| r.as_slice()).collect();
        let m = RatMatrix::from_i64_rows(&row_refs);
        let x = RatVector::from_i64(&x);
        // Solving A·y = A·x must recover exactly y = x (A is nonsingular).
        let b = m.mul_vec(&x);
        let y = m.solve(&b).unwrap();
        prop_assert_eq!(y, x);
    }

    #[test]
    fn transpose_is_an_involution(rows in proptest::collection::vec(proptest::collection::vec(-9i64..=9, 4), 1..6)) {
        let row_refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = RatMatrix::from_i64_rows(&row_refs);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn from_rows_roundtrips_through_row_accessor(rows in proptest::collection::vec(proptest::collection::vec(-9i64..=9, 3), 1..5)) {
        let row_refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = RatMatrix::from_i64_rows(&row_refs);
        let rebuilt = RatMatrix::from_rows(&(0..m.nrows()).map(|i| m.row(i)).collect::<Vec<_>>());
        prop_assert_eq!(rebuilt, m);
    }
}
