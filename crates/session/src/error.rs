//! Errors of the session layer.
//!
//! The wiring layers historically passed `Option`s around or panicked on
//! mis-assembled pipelines (mismatched counter spaces, empty campaigns);
//! [`SessionError`] replaces those paths with structured variants and threads
//! the collect subsystem's [`CollectError`] through unchanged.

use counterpoint_collect::CollectError;
use std::fmt;

/// Why an [`Inquiry`](crate::Inquiry) could not produce a
/// [`Report`](crate::Report), or a report could not be (de)serialized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The underlying counter acquisition failed (backend refusal, replay
    /// mismatch, trace I/O, ...).
    Collect(CollectError),
    /// The inquiry has no observation source, or the source produced no
    /// observations.
    NoObservations,
    /// The inquiry has neither models under test nor a refinement search.
    NoModels,
    /// Two observations share a name, which would make the report's by-name
    /// verdict lookups ambiguous.
    DuplicateObservation {
        /// The name that appears more than once.
        name: String,
    },
    /// A model's counter space does not match the observations'.
    DimensionMismatch {
        /// Name of the offending model.
        model: String,
        /// The model cone's counter dimension.
        model_dimension: usize,
        /// The observations' counter dimension.
        observation_dimension: usize,
    },
    /// Reading or writing a report file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error, rendered.
        reason: String,
    },
    /// A report could not be parsed, or its format version is unknown.
    Format(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Collect(e) => write!(f, "counter collection failed: {e}"),
            SessionError::NoObservations => {
                write!(f, "inquiry has no observations to test models against")
            }
            SessionError::NoModels => {
                write!(
                    f,
                    "inquiry has no models under test and no refinement search"
                )
            }
            SessionError::DuplicateObservation { name } => {
                write!(
                    f,
                    "two observations are named `{name}`; names must be unique so report \
                     lookups are unambiguous"
                )
            }
            SessionError::DimensionMismatch {
                model,
                model_dimension,
                observation_dimension,
            } => write!(
                f,
                "model `{model}` spans {model_dimension} counters but the observations span \
                 {observation_dimension}: they must share a counter space"
            ),
            SessionError::Io { path, reason } => {
                write!(f, "report I/O on `{path}` failed: {reason}")
            }
            SessionError::Format(msg) => write!(f, "report format error: {msg}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Collect(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CollectError> for SessionError {
    fn from(e: CollectError) -> SessionError {
        SessionError::Collect(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = SessionError::DimensionMismatch {
            model: "m4".to_string(),
            model_dimension: 26,
            observation_dimension: 2,
        };
        assert!(e.to_string().contains("m4"));
        assert!(e.to_string().contains("26"));
        assert!(SessionError::NoObservations
            .to_string()
            .contains("observations"));
        assert!(SessionError::NoModels.to_string().contains("models"));
        assert!(SessionError::DuplicateObservation {
            name: "kv@4k".to_string()
        }
        .to_string()
        .contains("kv@4k"));
        let wrapped: SessionError = CollectError::EmptyTrace.into();
        assert!(wrapped.to_string().contains("no records"));
        assert!(std::error::Error::source(&wrapped).is_some());
        assert!(SessionError::Io {
            path: "/tmp/r.json".to_string(),
            reason: "denied".to_string()
        }
        .to_string()
        .contains("/tmp/r.json"));
        assert!(SessionError::Format("bad version".to_string())
            .to_string()
            .contains("bad version"));
    }
}
